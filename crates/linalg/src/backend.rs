//! Solver-backend selection: dense Cholesky vs. sparse CG on one interface.
//!
//! Every steady-state evaluation in the paper is a solve of
//! `(G − i·D)·θ = p(i)` where `G − i·D` is symmetric positive definite below
//! the runaway limit. The compact models are *sparse* (a 32×32-tile package
//! yields n ≈ 2300 nodes at ~0.3 % density), so a dense `O(n³)` Cholesky
//! factorization per probe leaves two orders of magnitude on the table once
//! the grid grows. This module routes each solve to the cheaper backend:
//!
//! - [`SolverBackend::DenseCholesky`] — exact factorization; best for small
//!   or dense systems, and the authoritative positive-definiteness oracle.
//! - [`SolverBackend::SparseCg`] — Jacobi-preconditioned conjugate gradients
//!   on a CSR copy; `O(nnz · iters)` per solve, no factorization at all.
//! - [`SolverBackend::Auto`] — the density/size crossover heuristic of
//!   DESIGN.md §10: sparse iff `n ≥ 512` **and** density `≤ 2 %`.
//!
//! The crossover is deliberately conservative: at n = 512 a dense
//! factorization costs ~`n³/3 ≈ 4.5e7` multiplies while a CG solve on a
//! 2 %-dense matrix costs ~`2·nnz ≈ 1e4` multiplies per iteration — even a
//! thousand iterations win, and the gap only widens with n.

use crate::SolveMethod;
use crate::{
    conjugate_gradient_cancellable, CancelToken, CgSettings, Cholesky, CsrMatrix, DenseMatrix,
    LinalgError,
};

/// Dense-vs-sparse crossover: minimum dimension for the sparse backend.
pub const SPARSE_MIN_DIM: usize = 512;
/// Dense-vs-sparse crossover: maximum density (nnz/n²) for the sparse
/// backend.
pub const SPARSE_MAX_DENSITY: f64 = 0.02;

/// Which linear-solver backend a [`CoolingSystem`](../../tecopt) probe uses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverBackend {
    /// Pick per matrix via the size/density heuristic (see module docs).
    #[default]
    Auto,
    /// Always factor densely (`L·Lᵀ`).
    DenseCholesky,
    /// Always solve with Jacobi-preconditioned CG on a CSR copy.
    SparseCg(CgSettings),
}

/// The concrete backend [`SolverBackend::resolve`] chose for one matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolvedBackend {
    /// Dense Cholesky factorization.
    DenseCholesky,
    /// Sparse CG with these settings.
    SparseCg(CgSettings),
}

impl SolverBackend {
    /// Resolves `Auto` against the matrix shape: sparse iff
    /// `n ≥ SPARSE_MIN_DIM` and `nnz/n² ≤ SPARSE_MAX_DENSITY`.
    pub fn resolve(self, n: usize, nnz: usize) -> ResolvedBackend {
        match self {
            SolverBackend::DenseCholesky => ResolvedBackend::DenseCholesky,
            SolverBackend::SparseCg(s) => ResolvedBackend::SparseCg(s),
            SolverBackend::Auto => {
                let density = if n == 0 {
                    1.0
                } else {
                    nnz as f64 / (n as f64 * n as f64)
                };
                if n >= SPARSE_MIN_DIM && density <= SPARSE_MAX_DENSITY {
                    ResolvedBackend::SparseCg(CgSettings::default())
                } else {
                    ResolvedBackend::DenseCholesky
                }
            }
        }
    }
}

/// A system "factored" for repeated right-hand sides under one backend.
///
/// For the dense backend this holds a genuine `L·Lᵀ` factor; for the sparse
/// backend it holds the CSR copy (CG needs no factorization, so "factoring"
/// is just the format conversion plus a diagonal-positivity screen).
#[derive(Debug, Clone)]
pub enum FactoredSystem {
    /// Dense Cholesky factor.
    Dense(Cholesky),
    /// CSR copy plus the CG settings to solve with.
    Sparse {
        /// The system matrix in CSR form.
        matrix: CsrMatrix,
        /// CG iteration controls.
        settings: CgSettings,
    },
}

/// One backend solve with its diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSolve {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Condition estimate: the Cholesky pivot ratio (dense) or the
    /// CG-iteration-count heuristic `κ ≈ (2·iters / ln(2/tol))²` (sparse).
    pub condition_estimate: f64,
    /// CG iterations spent (0 for the direct backend).
    pub iterations: usize,
}

impl FactoredSystem {
    /// Prepares `a` for solves under the resolved backend.
    ///
    /// The sparse path screens the diagonal: a symmetric matrix with a
    /// nonpositive diagonal entry `a_kk = e_kᵀ·A·e_k ≤ 0` cannot be positive
    /// definite, so it is rejected with the same
    /// [`LinalgError::NotPositiveDefinite`] signal dense Cholesky gives —
    /// keeping runaway detection uniform across backends.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for a non-square input.
    /// - [`LinalgError::NotPositiveDefinite`] from the dense factorization
    ///   or the sparse diagonal screen.
    pub fn factor(
        a: &DenseMatrix,
        backend: ResolvedBackend,
    ) -> Result<FactoredSystem, LinalgError> {
        match backend {
            ResolvedBackend::DenseCholesky => Ok(FactoredSystem::Dense(Cholesky::factor(a)?)),
            ResolvedBackend::SparseCg(settings) => {
                if !a.is_square() {
                    return Err(LinalgError::NotSquare {
                        rows: a.rows(),
                        cols: a.cols(),
                    });
                }
                for k in 0..a.rows() {
                    let d = a[(k, k)];
                    if d <= 0.0 || !d.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: k });
                    }
                }
                Ok(FactoredSystem::Sparse {
                    matrix: CsrMatrix::from_dense(a),
                    settings,
                })
            }
        }
    }

    /// Resolves `Auto` against `a`'s shape and nonzero count, then factors.
    ///
    /// # Errors
    ///
    /// Same contract as [`FactoredSystem::factor`].
    pub fn factor_auto(
        a: &DenseMatrix,
        backend: SolverBackend,
    ) -> Result<FactoredSystem, LinalgError> {
        let nnz = a.as_slice().iter().filter(|&&v| v != 0.0).count();
        FactoredSystem::factor(a, backend.resolve(a.rows(), nnz))
    }

    /// Which [`SolveMethod`] solves through this factored system report.
    pub fn method(&self) -> SolveMethod {
        match self {
            FactoredSystem::Dense(_) => SolveMethod::Cholesky,
            FactoredSystem::Sparse { .. } => SolveMethod::SparseCg,
        }
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        match self {
            FactoredSystem::Dense(chol) => chol.dim(),
            FactoredSystem::Sparse { matrix, .. } => matrix.rows(),
        }
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] for a wrong-length `b`.
    /// - [`LinalgError::NotPositiveDefinite`] if CG encounters nonpositive
    ///   curvature (the matrix is indefinite — past runaway).
    /// - [`LinalgError::NoConvergence`] if CG stalls within its iteration
    ///   budget (callers may fall back to the dense backend).
    pub fn solve(&self, b: &[f64]) -> Result<BackendSolve, LinalgError> {
        self.solve_with_cancel(b, None)
    }

    /// [`FactoredSystem::solve`] with a cooperative cancellation token.
    ///
    /// The dense backend checks the token once before its (short,
    /// non-iterative) triangular solves; the sparse backend polls at every
    /// CG iteration boundary. With `cancel: None` the result is
    /// bit-identical to [`FactoredSystem::solve`].
    ///
    /// # Errors
    ///
    /// Same contract as [`FactoredSystem::solve`], plus
    /// [`LinalgError::Cancelled`] once the token is raised.
    pub fn solve_with_cancel(
        &self,
        b: &[f64],
        cancel: Option<&CancelToken>,
    ) -> Result<BackendSolve, LinalgError> {
        match self {
            FactoredSystem::Dense(chol) => {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return Err(LinalgError::Cancelled { iterations: 0 });
                }
                Ok(BackendSolve {
                    x: chol.solve(b)?,
                    condition_estimate: chol.condition_estimate(),
                    iterations: 0,
                })
            }
            FactoredSystem::Sparse { matrix, settings } => {
                let out = conjugate_gradient_cancellable(matrix, b, *settings, cancel)?;
                Ok(BackendSolve {
                    condition_estimate: cg_condition_estimate(out.iterations, settings.tolerance),
                    iterations: out.iterations,
                    x: out.x,
                })
            }
        }
    }
}

/// Inverts the classical CG iteration bound `iters ≈ ½·√κ·ln(2/ε)` into a
/// cheap condition-number *proxy*. It is a heuristic — preconditioning and
/// eigenvalue clustering make CG converge faster than the bound — but it
/// grows with the true `κ` and therefore preserves the "distance to
/// runaway" reading of the dense pivot-ratio estimate.
fn cg_condition_estimate(iterations: usize, tolerance: f64) -> f64 {
    let log_term = (2.0 / tolerance.max(f64::MIN_POSITIVE)).ln().max(1.0);
    let sqrt_kappa = 2.0 * iterations as f64 / log_term;
    (sqrt_kappa * sqrt_kappa).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stieltjes::{random_stieltjes, seeded_rng, StieltjesSampler};

    fn spd(dim: usize, density: f64, seed: u64) -> DenseMatrix {
        random_stieltjes(
            StieltjesSampler {
                dim,
                density,
                ..StieltjesSampler::default()
            },
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn auto_resolves_by_size_and_density() {
        // Small: dense regardless of density.
        assert_eq!(
            SolverBackend::Auto.resolve(100, 100),
            ResolvedBackend::DenseCholesky
        );
        // Large and sparse: CG.
        assert!(matches!(
            SolverBackend::Auto.resolve(1000, 10_000),
            ResolvedBackend::SparseCg(_)
        ));
        // Large but dense: stay with Cholesky.
        assert_eq!(
            SolverBackend::Auto.resolve(1000, 500_000),
            ResolvedBackend::DenseCholesky
        );
        // Forced backends ignore the shape.
        assert_eq!(
            SolverBackend::DenseCholesky.resolve(10_000, 10),
            ResolvedBackend::DenseCholesky
        );
        assert!(matches!(
            SolverBackend::SparseCg(CgSettings::default()).resolve(2, 4),
            ResolvedBackend::SparseCg(_)
        ));
    }

    #[test]
    fn backends_agree_on_random_stieltjes() {
        for (seed, dim) in [(7_u64, 40_usize), (8, 80), (9, 120)] {
            let a = spd(dim, 0.08, seed);
            let b: Vec<f64> = (0..dim).map(|k| (k as f64 * 0.37).sin() + 1.5).collect();
            let dense = FactoredSystem::factor(&a, ResolvedBackend::DenseCholesky)
                .expect("SPD")
                .solve(&b)
                .expect("solves");
            let sparse =
                FactoredSystem::factor(&a, ResolvedBackend::SparseCg(CgSettings::default()))
                    .expect("positive diagonal")
                    .solve(&b)
                    .expect("CG converges");
            let num: f64 = dense
                .x
                .iter()
                .zip(&sparse.x)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            let den: f64 = dense.x.iter().map(|u| u * u).sum::<f64>().sqrt();
            assert!(num <= 1e-8 * den, "dim {dim}: rel err {}", num / den);
            assert!(sparse.iterations > 0);
            assert_eq!(dense.iterations, 0);
        }
    }

    #[test]
    fn sparse_screen_rejects_nonpositive_diagonal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]).expect("square");
        let err = FactoredSystem::factor(&a, ResolvedBackend::SparseCg(CgSettings::default()))
            .expect_err("indefinite");
        assert_eq!(err, LinalgError::NotPositiveDefinite { pivot: 1 });
    }

    #[test]
    fn sparse_detects_indefiniteness_during_solve() {
        // Positive diagonal but indefinite: the screen passes, CG reports
        // nonpositive curvature.
        let a = DenseMatrix::from_rows(&[&[1.0, 3.0], &[3.0, 1.0]]).expect("square");
        let f = FactoredSystem::factor(&a, ResolvedBackend::SparseCg(CgSettings::default()))
            .expect("diagonal is positive");
        let err = f.solve(&[1.0, -1.0]).expect_err("indefinite");
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn method_and_dim_reported() {
        let a = spd(12, 0.3, 3);
        let d = FactoredSystem::factor(&a, ResolvedBackend::DenseCholesky).expect("SPD");
        let s = FactoredSystem::factor(&a, ResolvedBackend::SparseCg(CgSettings::default()))
            .expect("positive diagonal");
        assert_eq!(d.method(), SolveMethod::Cholesky);
        assert_eq!(s.method(), SolveMethod::SparseCg);
        assert_eq!(d.dim(), 12);
        assert_eq!(s.dim(), 12);
    }

    #[test]
    fn condition_heuristic_is_monotone_and_bounded_below() {
        let c1 = cg_condition_estimate(0, 1e-10);
        let c2 = cg_condition_estimate(50, 1e-10);
        let c3 = cg_condition_estimate(500, 1e-10);
        assert_eq!(c1, 1.0);
        assert!(c2 > c1 && c3 > c2);
    }
}
