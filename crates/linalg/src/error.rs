use core::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A matrix was expected to be square but is `rows x cols`.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A ragged row list was supplied to a constructor.
    RaggedRows {
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        len: usize,
        /// Length of the first row.
        expected: usize,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    /// Carries the pivot index at which factorization broke down.
    NotPositiveDefinite {
        /// Pivot index where a nonpositive diagonal was encountered.
        pivot: usize,
    },
    /// LU factorization hit a (numerically) singular pivot.
    Singular {
        /// Pivot index where singularity was detected.
        pivot: usize,
    },
    /// An iterative method failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm when iteration stopped.
        residual: f64,
    },
    /// A matrix entry or vector element is NaN or infinite.
    NonFiniteEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// The factorization succeeded but the pivot-ratio condition estimate
    /// exceeds the caller's limit: the solution would be dominated by
    /// rounding error. For the thermal systems of the paper this is the
    /// numerical signature of operating close to the runaway limit `λ_m`.
    IllConditioned {
        /// Pivot-ratio condition-number estimate of the factored matrix.
        estimate: f64,
    },
    /// An iteration or fallback budget was exhausted before the requested
    /// accuracy was reached. Guarantees that adversarial inputs cannot hang
    /// the searches; the caller can retry with a larger budget.
    BudgetExhausted {
        /// Work units (probes, attempts, evaluations) actually spent.
        spent: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Input violated a documented precondition.
    InvalidInput(String),
    /// The caller's [`CancelToken`](crate::CancelToken) was raised and the
    /// kernel stopped cooperatively at its next iteration boundary.
    Cancelled {
        /// Iterations completed before the cancellation was observed.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::RaggedRows { row, len, expected } => {
                write!(f, "row {row} has length {len}, expected {expected}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot {pivot})")
            }
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "iteration did not converge after {iterations} steps (residual {residual:e})"
                )
            }
            LinalgError::NonFiniteEntry { row, col } => {
                write!(f, "non-finite entry at ({row}, {col})")
            }
            LinalgError::IllConditioned { estimate } => {
                write!(
                    f,
                    "matrix is ill-conditioned (pivot-ratio estimate {estimate:.3e})"
                )
            }
            LinalgError::BudgetExhausted { spent, budget } => {
                write!(f, "budget exhausted after {spent} of {budget} work units")
            }
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            LinalgError::Cancelled { iterations } => {
                write!(f, "cancelled by the caller after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            LinalgError::NotSquare { rows: 2, cols: 3 }.to_string(),
            LinalgError::DimensionMismatch {
                expected: 4,
                actual: 5,
            }
            .to_string(),
            LinalgError::NotPositiveDefinite { pivot: 1 }.to_string(),
            LinalgError::Singular { pivot: 0 }.to_string(),
            LinalgError::NoConvergence {
                iterations: 10,
                residual: 1e-3,
            }
            .to_string(),
            LinalgError::NonFiniteEntry { row: 1, col: 2 }.to_string(),
            LinalgError::IllConditioned { estimate: 1e17 }.to_string(),
            LinalgError::BudgetExhausted {
                spent: 64,
                budget: 64,
            }
            .to_string(),
            LinalgError::InvalidInput("bad".into()).to_string(),
            LinalgError::Cancelled { iterations: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
