//! Structure checks and random generation for Stieltjes matrices.
//!
//! A *Stieltjes matrix* (Definition 3 of the paper, after Varga) is a real
//! symmetric positive-definite matrix with nonpositive off-diagonal entries.
//! The thermal conductance matrix `G` of the compact model is an
//! *irreducible* positive-definite Stieltjes matrix (Lemma 1), which is what
//! powers the inverse-positivity theory behind the runaway analysis: the
//! inverse of such a matrix has strictly positive entries.
//!
//! The random generators here feed the Conjecture-1 experiments (the paper
//! "randomly generated millions of positive definite Stieltjes matrices").

use crate::{Cholesky, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a matrix failed the Stieltjes test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StieltjesViolation {
    /// The matrix is not square.
    NotSquare,
    /// The matrix is not symmetric.
    NotSymmetric,
    /// An off-diagonal entry is strictly positive.
    PositiveOffDiagonal {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// The matrix is not positive definite.
    NotPositiveDefinite,
}

/// Checks whether `a` is a positive-definite Stieltjes matrix.
///
/// # Errors
///
/// Returns the first [`StieltjesViolation`] encountered, in the order:
/// squareness, symmetry, off-diagonal signs, positive definiteness.
pub fn check_stieltjes(a: &DenseMatrix, sym_tol: f64) -> Result<(), StieltjesViolation> {
    if !a.is_square() {
        return Err(StieltjesViolation::NotSquare);
    }
    if !a.is_symmetric(sym_tol) {
        return Err(StieltjesViolation::NotSymmetric);
    }
    let n = a.rows();
    for r in 0..n {
        for c in 0..n {
            if r != c && a[(r, c)] > 0.0 {
                return Err(StieltjesViolation::PositiveOffDiagonal { row: r, col: c });
            }
        }
    }
    if !Cholesky::is_positive_definite(a) {
        return Err(StieltjesViolation::NotPositiveDefinite);
    }
    Ok(())
}

/// Returns `true` if the symmetric matrix is irreducible, i.e. the graph
/// whose edges are the nonzero off-diagonal entries is connected
/// (Definition 1 of the paper: not a direct sum of two square matrices).
///
/// An empty or 1×1 matrix is irreducible by convention.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn is_irreducible(a: &DenseMatrix) -> bool {
    assert!(
        a.is_square(),
        "irreducibility is defined for square matrices"
    );
    let n = a.rows();
    if n <= 1 {
        return true;
    }
    // BFS over the adjacency structure.
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for v in 0..n {
            if v != u && !seen[v] && a[(u, v)] != 0.0 {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

/// Controls for [`random_stieltjes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StieltjesSampler {
    /// Matrix dimension.
    pub dim: usize,
    /// Probability that a given off-diagonal pair is nonzero.
    pub density: f64,
    /// Magnitude scale of off-diagonal entries (sampled uniform in
    /// `(0, scale]` and negated).
    pub scale: f64,
    /// Extra diagonal dominance margin added on top of the row sums, as a
    /// fraction of `scale`. Strictly positive values guarantee positive
    /// definiteness via diagonal dominance.
    pub dominance: f64,
}

impl Default for StieltjesSampler {
    fn default() -> StieltjesSampler {
        StieltjesSampler {
            dim: 8,
            density: 0.6,
            scale: 1.0,
            dominance: 0.1,
        }
    }
}

/// Generates a random positive-definite Stieltjes matrix.
///
/// Off-diagonal entries are nonpositive; the diagonal is set to the absolute
/// row sum plus a positive dominance margin, which makes the matrix strictly
/// diagonally dominant with positive diagonal — hence symmetric positive
/// definite.
///
/// The construction is connected-by-chaining: a random spanning path is
/// always included so the result is irreducible (matching the `G` matrices of
/// Lemma 1), then extra edges are added with probability `density`.
///
/// # Panics
///
/// Panics if `dim == 0`, `scale <= 0`, `dominance <= 0`, or
/// `density ∉ [0, 1]`.
pub fn random_stieltjes(sampler: StieltjesSampler, rng: &mut StdRng) -> DenseMatrix {
    let StieltjesSampler {
        dim,
        density,
        scale,
        dominance,
    } = sampler;
    assert!(dim > 0, "dimension must be positive");
    assert!(scale > 0.0, "scale must be positive");
    assert!(dominance > 0.0, "dominance margin must be positive");
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");

    let mut a = DenseMatrix::zeros(dim, dim);
    // Spanning path over a random permutation keeps the graph connected.
    let mut order: Vec<usize> = (0..dim).collect();
    for i in (1..dim).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for w in order.windows(2) {
        let v = -rng.gen_range(f64::EPSILON..=scale);
        a[(w[0], w[1])] = v;
        a[(w[1], w[0])] = v;
    }
    for r in 0..dim {
        for c in (r + 1)..dim {
            if a[(r, c)] == 0.0 && rng.gen_bool(density) {
                let v = -rng.gen_range(f64::EPSILON..=scale);
                a[(r, c)] = v;
                a[(c, r)] = v;
            }
        }
    }
    for r in 0..dim {
        let offsum: f64 = (0..dim).filter(|&c| c != r).map(|c| a[(r, c)].abs()).sum();
        a[(r, r)] = offsum + rng.gen_range(f64::EPSILON..=scale * dominance) + scale * dominance;
    }
    a
}

/// Convenience: a seeded RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_matrices_are_stieltjes_and_irreducible() {
        let mut rng = seeded_rng(42);
        for dim in [1usize, 2, 3, 8, 20] {
            for _ in 0..20 {
                let a = random_stieltjes(
                    StieltjesSampler {
                        dim,
                        ..StieltjesSampler::default()
                    },
                    &mut rng,
                );
                assert_eq!(check_stieltjes(&a, 1e-12), Ok(()));
                assert!(is_irreducible(&a), "dim {dim} produced reducible matrix");
            }
        }
    }

    #[test]
    fn sparse_density_still_connected() {
        let mut rng = seeded_rng(7);
        let a = random_stieltjes(
            StieltjesSampler {
                dim: 16,
                density: 0.0,
                ..StieltjesSampler::default()
            },
            &mut rng,
        );
        assert!(is_irreducible(&a));
        assert_eq!(check_stieltjes(&a, 1e-12), Ok(()));
    }

    #[test]
    fn inverse_positivity_of_stieltjes_matrices() {
        // Lemma 3 of the paper: PD Stieltjes matrices are inverse-positive.
        let mut rng = seeded_rng(3);
        for _ in 0..10 {
            let a = random_stieltjes(StieltjesSampler::default(), &mut rng);
            let h = Cholesky::factor(&a).unwrap().inverse();
            for r in 0..h.rows() {
                for c in 0..h.cols() {
                    assert!(
                        h[(r, c)] >= -1e-12,
                        "inverse entry ({r},{c}) = {} negative",
                        h[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn violations_are_reported_in_order() {
        assert_eq!(
            check_stieltjes(&DenseMatrix::zeros(2, 3), 1e-12),
            Err(StieltjesViolation::NotSquare)
        );
        let asym = DenseMatrix::from_rows(&[&[2.0, -1.0], &[0.0, 2.0]]).unwrap();
        assert_eq!(
            check_stieltjes(&asym, 1e-12),
            Err(StieltjesViolation::NotSymmetric)
        );
        let pos_off = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert_eq!(
            check_stieltjes(&pos_off, 1e-12),
            Err(StieltjesViolation::PositiveOffDiagonal { row: 0, col: 1 })
        );
        let indef = DenseMatrix::from_rows(&[&[1.0, -2.0], &[-2.0, 1.0]]).unwrap();
        assert_eq!(
            check_stieltjes(&indef, 1e-12),
            Err(StieltjesViolation::NotPositiveDefinite)
        );
    }

    #[test]
    fn reducible_matrix_detected() {
        // Block-diagonal = direct sum = reducible.
        let a = DenseMatrix::from_rows(&[
            &[2.0, -1.0, 0.0, 0.0],
            &[-1.0, 2.0, 0.0, 0.0],
            &[0.0, 0.0, 2.0, -1.0],
            &[0.0, 0.0, -1.0, 2.0],
        ])
        .unwrap();
        assert!(!is_irreducible(&a));
        let b = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]])
            .unwrap();
        assert!(is_irreducible(&b));
    }

    #[test]
    fn trivial_sizes_are_irreducible() {
        assert!(is_irreducible(&DenseMatrix::zeros(0, 0)));
        assert!(is_irreducible(&DenseMatrix::from_rows(&[&[5.0]]).unwrap()));
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = random_stieltjes(StieltjesSampler::default(), &mut seeded_rng(99));
        let b = random_stieltjes(StieltjesSampler::default(), &mut seeded_rng(99));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = random_stieltjes(
            StieltjesSampler {
                dim: 0,
                ..StieltjesSampler::default()
            },
            &mut seeded_rng(0),
        );
    }
}
