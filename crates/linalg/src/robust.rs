//! Hardened linear solves: condition-monitored factorization with a bounded
//! fallback chain.
//!
//! Every steady-state evaluation in the paper is a solve of the symmetric
//! system `(G − i·D)·θ = p` (Eq. 4). Far from the runaway limit `λ_m` that
//! matrix is comfortably positive definite and a plain Cholesky solve is
//! optimal. *Near* `λ_m` — exactly the region the `λ_m` bisection and the
//! current optimizer probe — it approaches singularity: Cholesky can break
//! down on a matrix that is still mathematically positive definite, and a
//! factorization that succeeds may return temperatures with no correct
//! digits, silently.
//!
//! [`solve_robust`] makes that regime explicit instead of silent:
//!
//! 1. **Cholesky** (`L·Lᵀ`) — the fast path. The pivot-ratio condition
//!    estimate is always computed; results above
//!    [`SolverPolicy::warn_condition`] are flagged
//!    [`SolveDiagnostics::degraded`], results above
//!    [`SolverPolicy::fail_condition`] are rejected.
//! 2. **LU with partial pivoting** — survives Cholesky breakdown on
//!    borderline-definite matrices; the solution is residual-checked against
//!    the original system before being accepted.
//! 3. **Tikhonov-regularized Cholesky** — a bounded sequence of retries on
//!    `A + μ·I` with growing `μ`; physically, adding a tiny uniform thermal
//!    conductance to ground, which bounds the temperature estimate from
//!    below.
//!
//! Every stage is budgeted, every outcome carries [`SolveDiagnostics`]
//! (method used, fallbacks taken, condition estimate, regularization), and
//! exhausting the chain returns the *root-cause* error rather than looping.

use crate::{Cholesky, DenseMatrix, LinalgError, Lu};

/// Budgets and thresholds for the robust solve chain.
///
/// The defaults suit the compact thermal models of the paper (hundreds of
/// nodes, entries spanning ~6 orders of magnitude). `strict()` disables the
/// fallbacks for callers that use Cholesky failure as a *signal* (the
/// runaway detection of Theorem 1) rather than a nuisance.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverPolicy {
    /// Condition estimate above which a solution is flagged
    /// [`SolveDiagnostics::degraded`] (default `1e12`).
    pub warn_condition: f64,
    /// Condition estimate above which a stage's result is rejected and the
    /// next fallback engages (default `1e15`).
    pub fail_condition: f64,
    /// Relative residual above which a fallback solution is rejected
    /// (default `1e-6`).
    pub max_residual: f64,
    /// How many fallback stages may engage after Cholesky: `0` = none,
    /// `1` = LU, `2` = LU then regularization (default `2`).
    pub max_fallbacks: usize,
    /// Initial Tikhonov shift relative to the largest diagonal magnitude
    /// (default `1e-12`).
    pub regularization_scale: f64,
    /// Growth factor of the shift between regularized retries (default
    /// `1e3`).
    pub regularization_growth: f64,
    /// Bounded number of regularized retries (default `3`).
    pub max_regularization_attempts: usize,
}

impl Default for SolverPolicy {
    fn default() -> SolverPolicy {
        SolverPolicy {
            warn_condition: 1e12,
            fail_condition: 1e15,
            max_residual: 1e-6,
            max_fallbacks: 2,
            regularization_scale: 1e-12,
            regularization_growth: 1e3,
            max_regularization_attempts: 3,
        }
    }
}

impl SolverPolicy {
    /// A policy with no fallbacks: Cholesky either succeeds (with condition
    /// monitoring) or the original failure is returned. This preserves
    /// "factorization failed ⇒ not positive definite ⇒ thermal runaway"
    /// semantics for the definiteness oracle.
    pub fn strict() -> SolverPolicy {
        SolverPolicy {
            max_fallbacks: 0,
            ..SolverPolicy::default()
        }
    }

    /// Validates the policy's own numbers.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] for non-finite or out-of-range
    /// thresholds.
    pub fn validate(&self) -> Result<(), LinalgError> {
        let checks = [
            ("warn_condition", self.warn_condition, 1.0),
            ("fail_condition", self.fail_condition, 1.0),
            ("max_residual", self.max_residual, 0.0),
            ("regularization_scale", self.regularization_scale, 0.0),
            ("regularization_growth", self.regularization_growth, 1.0),
        ];
        for (what, v, lo) in checks {
            if !v.is_finite() || v <= lo {
                return Err(LinalgError::InvalidInput(format!(
                    "solver policy {what} must be finite and > {lo}, got {v}"
                )));
            }
        }
        if self.warn_condition > self.fail_condition {
            return Err(LinalgError::InvalidInput(format!(
                "warn_condition {} exceeds fail_condition {}",
                self.warn_condition, self.fail_condition
            )));
        }
        Ok(())
    }
}

/// Which stage of the chain produced a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Plain Cholesky on the original matrix.
    Cholesky,
    /// LU with partial pivoting after Cholesky failed or was rejected.
    Lu,
    /// Cholesky on the Tikhonov-shifted matrix `A + μ·I`.
    RegularizedCholesky,
    /// Jacobi-preconditioned conjugate gradients on a CSR copy (the sparse
    /// backend of [`crate::FactoredSystem`]; never produced by
    /// [`solve_robust`] itself).
    SparseCg,
}

/// How a solution was obtained and how much it should be trusted.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveDiagnostics {
    /// Stage that produced the accepted solution.
    pub method: SolveMethod,
    /// Fallback stages engaged before acceptance (0 = fast path).
    pub fallbacks_taken: usize,
    /// Pivot-ratio condition estimate of the accepted factorization.
    pub condition_estimate: f64,
    /// Tikhonov shift `μ` actually applied (`0.0` when none).
    pub regularization: f64,
    /// `true` when the result warrants caution: the condition estimate
    /// exceeded [`SolverPolicy::warn_condition`] or any fallback engaged.
    pub degraded: bool,
}

/// A solution plus its [`SolveDiagnostics`].
#[derive(Debug, Clone, PartialEq)]
pub struct RobustSolution {
    /// The solution vector `x` of `A·x = b`.
    pub x: Vec<f64>,
    /// Provenance and trust metadata.
    pub diagnostics: SolveDiagnostics,
}

/// Relative ∞-norm residual `‖A·x − b‖ / (‖b‖ + ‖A‖·‖x‖)`.
fn relative_residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = match a.mul_vec(x) {
        Ok(v) => v,
        Err(_) => return f64::INFINITY,
    };
    let num = ax
        .iter()
        .zip(b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0_f64, f64::max);
    let scale = b.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
        + a.max_abs() * x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if scale == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / scale
    }
}

/// Solves the symmetric system `A·x = b` through the Cholesky → LU →
/// Tikhonov fallback chain described in the module docs.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] for
///   shape violations.
/// - [`LinalgError::NonFiniteEntry`] / [`LinalgError::InvalidInput`] for NaN
///   or infinite entries in `a` or `b` — checked up front so poison never
///   reaches a factorization.
/// - The *root-cause* stage-1 error ([`LinalgError::NotPositiveDefinite`] or
///   [`LinalgError::IllConditioned`]) when every permitted fallback also
///   fails or is rejected.
pub fn solve_robust(
    a: &DenseMatrix,
    b: &[f64],
    policy: &SolverPolicy,
) -> Result<RobustSolution, LinalgError> {
    policy.validate()?;
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            expected: a.rows(),
            actual: b.len(),
        });
    }
    a.ensure_finite()?;
    if let Some(i) = b.iter().position(|v| !v.is_finite()) {
        return Err(LinalgError::InvalidInput(format!(
            "right-hand side entry {i} is {}",
            b[i]
        )));
    }

    // Stage 0: Cholesky fast path with condition monitoring.
    let mut fallbacks = 0usize;
    let root_cause = match Cholesky::factor(a) {
        Ok(chol) => {
            let cond = chol.condition_estimate();
            if cond <= policy.fail_condition {
                let x = chol.solve(b)?;
                return Ok(RobustSolution {
                    x,
                    diagnostics: SolveDiagnostics {
                        method: SolveMethod::Cholesky,
                        fallbacks_taken: 0,
                        condition_estimate: cond,
                        regularization: 0.0,
                        degraded: cond > policy.warn_condition,
                    },
                });
            }
            LinalgError::IllConditioned { estimate: cond }
        }
        Err(e) => e,
    };

    // Stage 1: LU with partial pivoting, residual-checked.
    if fallbacks < policy.max_fallbacks {
        fallbacks += 1;
        if let Ok(lu) = Lu::factor(a) {
            let cond = lu.condition_estimate();
            if cond <= policy.fail_condition {
                if let Ok(x) = lu.solve(b) {
                    if relative_residual(a, &x, b) <= policy.max_residual {
                        return Ok(RobustSolution {
                            x,
                            diagnostics: SolveDiagnostics {
                                method: SolveMethod::Lu,
                                fallbacks_taken: fallbacks,
                                condition_estimate: cond,
                                regularization: 0.0,
                                degraded: true,
                            },
                        });
                    }
                }
            }
        }
    }

    // Stage 2: Tikhonov-regularized Cholesky, bounded retries with growing
    // shift.
    if fallbacks < policy.max_fallbacks {
        fallbacks += 1;
        let diag_scale = a
            .diagonal()
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let mut mu = policy.regularization_scale * diag_scale;
        for _ in 0..policy.max_regularization_attempts {
            let mut shifted = a.clone();
            let ones = vec![1.0; a.rows()];
            shifted.add_scaled_diagonal(&ones, mu)?;
            if let Ok(chol) = Cholesky::factor(&shifted) {
                let cond = chol.condition_estimate();
                if cond <= policy.fail_condition {
                    let x = chol.solve(b)?;
                    return Ok(RobustSolution {
                        x,
                        diagnostics: SolveDiagnostics {
                            method: SolveMethod::RegularizedCholesky,
                            fallbacks_taken: fallbacks,
                            condition_estimate: cond,
                            regularization: mu,
                            degraded: true,
                        },
                    });
                }
            }
            mu *= policy.regularization_growth;
        }
    }

    Err(root_cause)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap()
    }

    #[test]
    fn fast_path_is_cholesky_with_clean_diagnostics() {
        let sol = solve_robust(&spd3(), &[1.0, -2.0, 0.5], &SolverPolicy::default()).unwrap();
        assert_eq!(sol.diagnostics.method, SolveMethod::Cholesky);
        assert_eq!(sol.diagnostics.fallbacks_taken, 0);
        assert!(!sol.diagnostics.degraded);
        assert!(sol.diagnostics.condition_estimate >= 1.0);
        assert_eq!(sol.diagnostics.regularization, 0.0);
        let r = relative_residual(&spd3(), &sol.x, &[1.0, -2.0, 0.5]);
        assert!(r < 1e-12, "residual {r}");
    }

    #[test]
    fn cholesky_breakdown_falls_back_to_lu_with_diagnostic() {
        // Mathematically this matrix is positive definite only marginally;
        // in f64 the second Cholesky pivot computes as 1 − 1e18 < 0, so
        // Cholesky reports NotPositiveDefinite. Partially pivoted LU solves
        // it fine.
        let a = DenseMatrix::from_rows(&[&[1e-18, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let b = [1.0, 2.0];
        let sol = solve_robust(&a, &b, &SolverPolicy::default()).unwrap();
        assert_eq!(sol.diagnostics.method, SolveMethod::Lu);
        assert_eq!(sol.diagnostics.fallbacks_taken, 1);
        assert!(sol.diagnostics.degraded, "fallback must flag degradation");
        assert!(relative_residual(&a, &sol.x, &b) < 1e-10);
    }

    #[test]
    fn doubly_degenerate_system_reaches_regularization() {
        // 1 + 1e-18 rounds to 1, so this matrix is exactly singular in f64:
        // Cholesky hits a zero pivot and LU a zero second pivot. Only the
        // Tikhonov stage can produce an answer.
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-18]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
        let policy = SolverPolicy {
            regularization_scale: 1e-9,
            ..SolverPolicy::default()
        };
        let sol = solve_robust(&a, &[2.0, 2.0], &policy).unwrap();
        assert_eq!(sol.diagnostics.method, SolveMethod::RegularizedCholesky);
        assert_eq!(sol.diagnostics.fallbacks_taken, 2);
        assert!(sol.diagnostics.regularization > 0.0);
        assert!(sol.diagnostics.degraded);
        // The regularized solution of [[1,1],[1,1]]x = [2,2] is x ≈ [1, 1].
        assert!((sol.x[0] - 1.0).abs() < 1e-3 && (sol.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn strict_policy_preserves_the_runaway_signal() {
        let indefinite = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let err = solve_robust(&indefinite, &[1.0, 1.0], &SolverPolicy::strict()).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn exhausted_chain_returns_root_cause() {
        // Exactly singular, and with a microscopic regularization budget the
        // shifted matrix stays singular to machine precision.
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let policy = SolverPolicy {
            regularization_scale: 1e-30,
            regularization_growth: 2.0,
            max_regularization_attempts: 1,
            ..SolverPolicy::default()
        };
        let err = solve_robust(&a, &[1.0, 1.0], &policy).unwrap_err();
        assert!(
            matches!(err, LinalgError::NotPositiveDefinite { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn poisoned_inputs_are_rejected_up_front() {
        let mut a = spd3();
        a[(1, 1)] = f64::NAN;
        assert!(matches!(
            solve_robust(&a, &[1.0, 1.0, 1.0], &SolverPolicy::default()),
            Err(LinalgError::NonFiniteEntry { row: 1, col: 1 })
        ));
        let err = solve_robust(
            &spd3(),
            &[1.0, f64::INFINITY, 0.0],
            &SolverPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
        assert!(solve_robust(&spd3(), &[1.0], &SolverPolicy::default()).is_err());
        assert!(solve_robust(
            &DenseMatrix::zeros(2, 3),
            &[1.0, 1.0],
            &SolverPolicy::default()
        )
        .is_err());
    }

    #[test]
    fn invalid_policy_is_rejected() {
        for bad in [
            SolverPolicy {
                warn_condition: f64::NAN,
                ..SolverPolicy::default()
            },
            SolverPolicy {
                fail_condition: 0.5,
                ..SolverPolicy::default()
            },
            SolverPolicy {
                warn_condition: 1e16,
                fail_condition: 1e12,
                ..SolverPolicy::default()
            },
            SolverPolicy {
                regularization_growth: 0.5,
                ..SolverPolicy::default()
            },
        ] {
            assert!(matches!(
                solve_robust(&spd3(), &[1.0, 1.0, 1.0], &bad),
                Err(LinalgError::InvalidInput(_))
            ));
        }
    }

    #[test]
    fn ill_conditioned_but_factorable_matrix_is_flagged() {
        // diag(1, 1e-13): Cholesky succeeds, condition estimate 1e13 sits
        // between warn (1e12) and fail (1e15) → degraded fast path.
        let a = DenseMatrix::from_diagonal(&[1.0, 1e-13]);
        let sol = solve_robust(&a, &[1.0, 1.0], &SolverPolicy::default()).unwrap();
        assert_eq!(sol.diagnostics.method, SolveMethod::Cholesky);
        assert!(sol.diagnostics.degraded);
        assert!(sol.diagnostics.condition_estimate > 1e12);
    }
}
