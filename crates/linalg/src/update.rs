//! Sherman–Morrison–Woodbury rank-k updates over a cached Cholesky factor.
//!
//! Every steady-state probe of the paper factors `A(i) = G − i·D`, yet `D`
//! is diagonal and supported on only the TEC junction nodes: changing the
//! supply current (or re-tuning it after a greedy placement) perturbs `A`
//! on a handful of diagonal entries. Writing the perturbation as
//! `A' = A + U·C·Uᵀ` — `U` a selection of `k` unit columns, `C` a small
//! diagonal of deltas — the Woodbury identity solves against `A'` through
//! the *existing* factor of `A`:
//!
//! ```text
//! A'⁻¹·b = z − W·M⁻¹·(Uᵀ·z),   z = A⁻¹·b,   W = A⁻¹·U,
//! M = C⁻¹ + Uᵀ·A⁻¹·U = C⁻¹ + S₀.
//! ```
//!
//! One base factorization plus a `k`-column solve (`W`, `S₀`) are paid up
//! front by [`UpdatableFactor::new`]; each subsequent perturbation costs an
//! `O(k³)` factorization of `M` plus `O(k·n)` correction work
//! ([`UpdatableFactor::apply`]) instead of a fresh `O(n³)` Cholesky.
//!
//! Positive definiteness of the perturbed matrix — the paper's runaway
//! verdict — comes for free from the same small factorization via the
//! Haynsworth inertia additivity identity: with `A` positive definite,
//!
//! ```text
//! In(A + U·C·Uᵀ) = In(A) + In(−M) − In(−C⁻¹),
//! ```
//!
//! so `A'` is positive definite **iff** `M` has exactly as many negative
//! pivots as `C⁻¹` (see DESIGN.md §15). [`SmallLdl`] factors `M` without
//! pivoting so the pivot signs carry that inertia; a pivot too small to
//! trust is reported as [`LinalgError::IllConditioned`], the caller's cue
//! to fall back to a fresh full factorization rather than accept a shaky
//! verdict.

use std::sync::Arc;

use crate::{CancelToken, Cholesky, DenseMatrix, LinalgError};

/// Relative pivot floor for [`SmallLdl`]: a pivot smaller than this times
/// the largest diagonal magnitude of the input is treated as a degraded
/// factorization ([`LinalgError::IllConditioned`]) rather than trusted for
/// solves or inertia verdicts.
pub const LDL_PIVOT_FLOOR: f64 = 1e-12;

/// A validated sparse diagonal perturbation `Δ = Σ_j δ_j·e_{n_j}·e_{n_j}ᵀ`.
///
/// Exact-zero deltas are dropped on construction (a zero column would make
/// `C` singular without perturbing anything), entries are kept sorted by
/// node, and duplicate nodes are rejected — so `rank()` is the true rank of
/// the perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalUpdate {
    entries: Vec<(usize, f64)>,
}

impl DiagonalUpdate {
    /// Builds an update from `(node, delta)` pairs.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NonFiniteEntry`] for a NaN or infinite delta.
    /// - [`LinalgError::InvalidInput`] for a duplicated node.
    pub fn new(
        entries: impl IntoIterator<Item = (usize, f64)>,
    ) -> Result<DiagonalUpdate, LinalgError> {
        let mut kept: Vec<(usize, f64)> = Vec::new();
        for (node, delta) in entries {
            if !delta.is_finite() {
                return Err(LinalgError::NonFiniteEntry {
                    row: node,
                    col: node,
                });
            }
            if delta != 0.0 {
                kept.push((node, delta));
            }
        }
        kept.sort_by_key(|&(node, _)| node);
        if kept.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(LinalgError::InvalidInput(
                "diagonal update repeats a node".into(),
            ));
        }
        Ok(DiagonalUpdate { entries: kept })
    }

    /// The `(node, delta)` pairs, sorted by node, zeros removed.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Rank of the perturbation (number of nonzero deltas).
    pub fn rank(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the perturbation is exactly zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Pivoting-free `L·D·Lᵀ` factorization of a small symmetric matrix.
///
/// This is the capacitance-equation kernel of the SMW update: the matrices
/// it sees are `k×k` with `k` twice the deployed TEC count, so the cubic
/// cost is negligible. No pivoting is used **on purpose** — the pivot signs
/// then equal the matrix's inertia (Sylvester), which is the positive-
/// definiteness certificate [`UpdatableFactor::apply`] relies on. The price
/// is that a (near-)zero pivot aborts the factorization; that surfaces as
/// [`LinalgError::IllConditioned`] and the caller refactors from scratch.
#[derive(Debug, Clone)]
pub struct SmallLdl {
    /// Unit-lower-triangular factor (diagonal implicitly 1).
    l: DenseMatrix,
    /// The (signed) pivots.
    d: Vec<f64>,
}

impl SmallLdl {
    /// Factors a symmetric matrix; only the lower triangle is read.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for a non-square input.
    /// - [`LinalgError::IllConditioned`] when a pivot falls below
    ///   [`LDL_PIVOT_FLOOR`] relative to the largest diagonal magnitude —
    ///   the factorization (and its inertia) can no longer be trusted.
    pub fn factor(a: &DenseMatrix) -> Result<SmallLdl, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let scale = (0..n).map(|j| a[(j, j)].abs()).fold(1.0_f64, f64::max);
        let floor = LDL_PIVOT_FLOOR * scale;
        let mut l = DenseMatrix::identity(n);
        let mut d = vec![0.0; n];
        for j in 0..n {
            let mut pivot = a[(j, j)];
            for s in 0..j {
                pivot -= l[(j, s)] * l[(j, s)] * d[s];
            }
            if !pivot.is_finite() || pivot.abs() <= floor {
                let estimate = if pivot == 0.0 {
                    f64::INFINITY
                } else {
                    scale / pivot.abs()
                };
                return Err(LinalgError::IllConditioned { estimate });
            }
            d[j] = pivot;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for s in 0..j {
                    v -= l[(i, s)] * l[(j, s)] * d[s];
                }
                l[(i, j)] = v / pivot;
            }
        }
        Ok(SmallLdl { l, d })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Inertia of the factored matrix as `(positive, negative)` pivot
    /// counts. Zero pivots cannot occur (they abort the factorization).
    pub fn inertia(&self) -> (usize, usize) {
        let pos = self.d.iter().filter(|&&p| p > 0.0).count();
        (pos, self.d.len() - pos)
    }

    /// Pivot-ratio condition proxy `max|d| / min|d|` (1.0 for dimension 0).
    pub fn condition_estimate(&self) -> f64 {
        let mut max_p = 0.0_f64;
        let mut min_p = f64::INFINITY;
        for &p in &self.d {
            max_p = max_p.max(p.abs());
            min_p = min_p.min(p.abs());
        }
        if self.d.is_empty() {
            return 1.0;
        }
        max_p / min_p
    }

    /// Solves `A·x = b` through the factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] for a wrong-length `b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let mut y = b.to_vec();
        // L·z = b (unit diagonal).
        for i in 0..n {
            let row = self.l.row(i);
            let dot: f64 = row[..i].iter().zip(&y[..i]).map(|(a, b)| a * b).sum();
            y[i] -= dot;
        }
        // D·w = z.
        for (yi, di) in y.iter_mut().zip(&self.d) {
            *yi /= di;
        }
        // Lᵀ·x = w.
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                v -= self.l[(k, i)] * yk;
            }
            y[i] = v;
        }
        Ok(y)
    }
}

/// Shared, immutable precomputation behind one updatable base factor.
#[derive(Debug)]
struct UpdatableInner {
    base: Cholesky,
    /// Sorted node set the factor can absorb deltas on.
    nodes: Vec<usize>,
    /// `W = A⁻¹·U`, one column (length `n`) per node.
    w: Vec<Vec<f64>>,
    /// `S₀ = Uᵀ·W`, the `k×k` Gram block of the capacitance equation.
    s0: DenseMatrix,
}

/// A dense Cholesky factor of `A` prepared for repeated diagonal
/// perturbations on a fixed node set.
///
/// Construction pays `k` triangular solves (for `W = A⁻¹U`) once; every
/// [`UpdatableFactor::apply`] after that is `O(k³)`. Cloning is an `Arc`
/// bump — applied updates share the base factor instead of copying it.
#[derive(Debug, Clone)]
pub struct UpdatableFactor {
    inner: Arc<UpdatableInner>,
}

impl UpdatableFactor {
    /// Prepares `base` (the factor of `A`) for diagonal updates on `nodes`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::InvalidInput`] for an out-of-bounds or duplicated
    ///   node.
    pub fn new(base: Cholesky, nodes: &[usize]) -> Result<UpdatableFactor, LinalgError> {
        let n = base.dim();
        let mut nodes: Vec<usize> = nodes.to_vec();
        nodes.sort_unstable();
        if nodes.windows(2).any(|w| w[0] == w[1]) {
            return Err(LinalgError::InvalidInput(
                "update node set repeats a node".into(),
            ));
        }
        if nodes.last().is_some_and(|&k| k >= n) {
            return Err(LinalgError::InvalidInput(format!(
                "update node out of bounds for dimension {n}"
            )));
        }
        let unit_columns: Vec<Vec<f64>> = nodes
            .iter()
            .map(|&k| {
                let mut e = vec![0.0; n];
                e[k] = 1.0;
                e
            })
            .collect();
        let w = base.solve_many(&unit_columns)?;
        let k = nodes.len();
        let mut s0 = DenseMatrix::zeros(k, k);
        for (a, &node) in nodes.iter().enumerate() {
            for (b, col) in w.iter().enumerate() {
                s0[(a, b)] = col[node];
            }
        }
        Ok(UpdatableFactor {
            inner: Arc::new(UpdatableInner { base, nodes, w, s0 }),
        })
    }

    /// The base Cholesky factor of the unperturbed matrix.
    pub fn base(&self) -> &Cholesky {
        &self.inner.base
    }

    /// The sorted node set updates may touch.
    pub fn nodes(&self) -> &[usize] {
        &self.inner.nodes
    }

    /// Dimension of the underlying system.
    pub fn dim(&self) -> usize {
        self.inner.base.dim()
    }

    /// Positions (into [`UpdatableFactor::nodes`]) and deltas of `update`,
    /// plus the factored capacitance matrix `M = C⁻¹ + S₀` restricted to
    /// the active nodes.
    fn capacitance(
        &self,
        update: &DiagonalUpdate,
    ) -> Result<(Vec<usize>, Vec<f64>, SmallLdl), LinalgError> {
        let mut active = Vec::with_capacity(update.rank());
        let mut deltas = Vec::with_capacity(update.rank());
        for &(node, delta) in update.entries() {
            let Ok(pos) = self.inner.nodes.binary_search(&node) else {
                return Err(LinalgError::InvalidInput(format!(
                    "update touches node {node} outside the prepared node set"
                )));
            };
            active.push(pos);
            deltas.push(delta);
        }
        let k = active.len();
        let mut m = DenseMatrix::zeros(k, k);
        for (r, &ir) in active.iter().enumerate() {
            for (c, &ic) in active.iter().enumerate() {
                m[(r, c)] = self.inner.s0[(ir, ic)];
            }
            m[(r, r)] += 1.0 / deltas[r];
        }
        let ldl = SmallLdl::factor(&m)?;
        Ok((active, deltas, ldl))
    }

    /// Applies a diagonal perturbation, producing a factor-like handle on
    /// `A' = A + Δ`.
    ///
    /// The Haynsworth inertia certificate is checked here: if `A'` is not
    /// positive definite (the perturbed operating point is past thermal
    /// runaway) the update is rejected with the same
    /// [`LinalgError::NotPositiveDefinite`] signal a fresh Cholesky of `A'`
    /// would produce.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::InvalidInput`] if `update` touches a node outside
    ///   the prepared set.
    /// - [`LinalgError::NotPositiveDefinite`] if `A + Δ` is indefinite.
    /// - [`LinalgError::IllConditioned`] when the capacitance pivots are
    ///   too degraded to certify anything — refactor from scratch instead.
    pub fn apply(&self, update: &DiagonalUpdate) -> Result<AppliedUpdate, LinalgError> {
        if update.is_empty() {
            return Ok(AppliedUpdate {
                factor: self.clone(),
                active: Vec::new(),
                entries: Vec::new(),
                ldl: None,
            });
        }
        let (active, deltas, ldl) = self.capacitance(update)?;
        let expected_neg = deltas.iter().filter(|&&d| d < 0.0).count();
        if ldl.inertia().1 != expected_neg {
            let pivot = update.entries().first().map_or(0, |&(node, _)| node);
            return Err(LinalgError::NotPositiveDefinite { pivot });
        }
        let entries = active
            .iter()
            .zip(&deltas)
            .map(|(&pos, &delta)| (self.inner.nodes[pos], delta))
            .collect();
        Ok(AppliedUpdate {
            factor: self.clone(),
            active,
            entries,
            ldl: Some(ldl),
        })
    }

    /// Positive-definiteness of `A + Δ` from the inertia certificate alone,
    /// without building the solve handle.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::InvalidInput`] for a node outside the prepared set.
    /// - [`LinalgError::IllConditioned`] when the verdict cannot be trusted
    ///   (degraded pivot) — probe with a fresh factorization instead.
    pub fn is_positive_definite(&self, update: &DiagonalUpdate) -> Result<bool, LinalgError> {
        if update.is_empty() {
            return Ok(true);
        }
        let (_, deltas, ldl) = self.capacitance(update)?;
        let expected_neg = deltas.iter().filter(|&&d| d < 0.0).count();
        Ok(ldl.inertia().1 == expected_neg)
    }
}

/// One applied diagonal perturbation: solves against `A + Δ` through the
/// shared base factor of `A`.
///
/// Cheap to clone (the `n×k` precomputation is shared through an `Arc`;
/// only the `k×k` capacitance factor is owned).
#[derive(Debug, Clone)]
pub struct AppliedUpdate {
    factor: UpdatableFactor,
    /// Positions into `factor.nodes()` the update touches.
    active: Vec<usize>,
    /// The `(node, delta)` pairs of the applied perturbation.
    entries: Vec<(usize, f64)>,
    /// Factored capacitance matrix; `None` for the empty perturbation.
    ldl: Option<SmallLdl>,
}

impl AppliedUpdate {
    /// The updatable factor this update was applied over.
    pub fn factor(&self) -> &UpdatableFactor {
        &self.factor
    }

    /// The `(node, delta)` pairs of the applied perturbation.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Rank of the applied perturbation.
    pub fn rank(&self) -> usize {
        self.entries.len()
    }

    /// Dimension of the underlying system.
    pub fn dim(&self) -> usize {
        self.factor.dim()
    }

    /// Condition proxy for the *updated* matrix: the base pivot-ratio
    /// estimate times the capacitance pivot ratio. A heuristic upper
    /// indicator, not a bound — it diverges exactly when either factor
    /// approaches singularity, which is the "distance to runaway" reading
    /// the solver layer wants.
    pub fn condition_estimate(&self) -> f64 {
        let base = self.factor.base().condition_estimate();
        match &self.ldl {
            Some(ldl) => base * ldl.condition_estimate(),
            None => base,
        }
    }

    /// Applies the Woodbury correction `x ← x − Wₐ·M⁻¹·(Uₐᵀ·x)` in place.
    fn correct(&self, x: &mut [f64]) -> Result<(), LinalgError> {
        let Some(ldl) = &self.ldl else {
            return Ok(());
        };
        let inner = &self.factor.inner;
        let t: Vec<f64> = self.active.iter().map(|&pos| x[inner.nodes[pos]]).collect();
        let s = ldl.solve(&t)?;
        for (&pos, &coef) in self.active.iter().zip(&s) {
            if coef == 0.0 {
                continue;
            }
            for (xi, wi) in x.iter_mut().zip(&inner.w[pos]) {
                *xi -= coef * wi;
            }
        }
        Ok(())
    }

    /// Solves `(A + Δ)·x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] for a wrong-length `b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = self.factor.base().solve(b)?;
        self.correct(&mut x)?;
        Ok(x)
    }

    /// [`AppliedUpdate::solve`] with a cooperative cancellation check
    /// before the (short, non-iterative) substitution sweeps.
    ///
    /// # Errors
    ///
    /// As [`AppliedUpdate::solve`], plus [`LinalgError::Cancelled`] once
    /// the token is raised.
    pub fn solve_with_cancel(
        &self,
        b: &[f64],
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<f64>, LinalgError> {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(LinalgError::Cancelled { iterations: 0 });
        }
        self.solve(b)
    }

    /// Solves `(A + Δ)·X = B` for many right-hand sides: one blocked base
    /// solve followed by the per-column Woodbury corrections.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] for a wrong-length column.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let mut xs = self.factor.base().solve_many(rhs)?;
        for x in &mut xs {
            self.correct(x)?;
        }
        Ok(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stieltjes::{random_stieltjes, seeded_rng, StieltjesSampler};

    fn spd(dim: usize, seed: u64) -> DenseMatrix {
        random_stieltjes(
            StieltjesSampler {
                dim,
                density: 0.3,
                ..StieltjesSampler::default()
            },
            &mut seeded_rng(seed),
        )
    }

    fn perturbed(a: &DenseMatrix, update: &DiagonalUpdate) -> DenseMatrix {
        let mut m = a.clone();
        let mut diag = vec![0.0; a.rows()];
        for &(node, delta) in update.entries() {
            diag[node] = delta;
        }
        m.add_scaled_diagonal(&diag, 1.0).expect("dims match");
        m
    }

    #[test]
    fn diagonal_update_drops_zeros_sorts_and_rejects_duplicates() {
        let u = DiagonalUpdate::new([(5, 1.0), (2, 0.0), (1, -3.0)]).unwrap();
        assert_eq!(u.entries(), &[(1, -3.0), (5, 1.0)]);
        assert_eq!(u.rank(), 2);
        assert!(!u.is_empty());
        assert!(DiagonalUpdate::new([(1, 1.0), (1, 2.0)]).is_err());
        assert!(DiagonalUpdate::new([(0, f64::NAN)]).is_err());
        assert!(DiagonalUpdate::new([]).unwrap().is_empty());
    }

    #[test]
    fn small_ldl_matches_direct_solve_and_inertia() {
        let m = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, -2.0, 0.25], &[0.5, 0.25, 3.0]])
            .unwrap();
        let ldl = SmallLdl::factor(&m).unwrap();
        assert_eq!(ldl.inertia(), (2, 1));
        let b = [1.0, -1.0, 0.5];
        let x = ldl.solve(&b).unwrap();
        let r = m.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
        assert!(ldl.condition_estimate() >= 1.0);
    }

    #[test]
    fn small_ldl_reports_degenerate_pivot_as_ill_conditioned() {
        // Zero leading diagonal: the pivoting-free factorization cannot
        // proceed and must say so instead of producing garbage inertia.
        let m = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(matches!(
            SmallLdl::factor(&m),
            Err(LinalgError::IllConditioned { .. })
        ));
    }

    #[test]
    fn updated_solve_matches_fresh_factorization() {
        let a = spd(24, 3);
        let nodes = [2_usize, 7, 11, 19];
        let factor = UpdatableFactor::new(Cholesky::factor(&a).unwrap(), &nodes).unwrap();
        let update = DiagonalUpdate::new([(2, 0.8), (7, -0.15), (19, 0.3)]).unwrap();
        let applied = factor.apply(&update).unwrap();

        let fresh = Cholesky::factor(&perturbed(&a, &update)).unwrap();
        let b: Vec<f64> = (0..24).map(|k| (k as f64 * 0.7).cos()).collect();
        let x_upd = applied.solve(&b).unwrap();
        let x_new = fresh.solve(&b).unwrap();
        let scale = x_new.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (u, v) in x_upd.iter().zip(&x_new) {
            assert!((u - v).abs() <= 1e-10 * scale, "{u} vs {v}");
        }
    }

    #[test]
    fn solve_many_matches_columnwise_solve() {
        let a = spd(16, 5);
        let factor = UpdatableFactor::new(Cholesky::factor(&a).unwrap(), &[1, 8]).unwrap();
        let applied = factor
            .apply(&DiagonalUpdate::new([(1, -0.2), (8, 0.4)]).unwrap())
            .unwrap();
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                (0..16)
                    .map(|k| ((k * (c + 2)) as f64 * 0.31).sin())
                    .collect()
            })
            .collect();
        let many = applied.solve_many(&rhs).unwrap();
        for (col, b) in many.iter().zip(&rhs) {
            let one = applied.solve(b).unwrap();
            for (u, v) in col.iter().zip(&one) {
                assert!((u - v).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn inertia_certificate_matches_cholesky_verdicts() {
        // G = diag-ish SPD; pushing one diagonal entry down far enough must
        // flip the PD verdict exactly where a fresh Cholesky flips it.
        let a = spd(12, 9);
        let nodes = [0_usize, 4, 9];
        let factor = UpdatableFactor::new(Cholesky::factor(&a).unwrap(), &nodes).unwrap();
        for magnitude in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let update = DiagonalUpdate::new([(4, -magnitude)]).unwrap();
            let oracle = Cholesky::is_positive_definite(&perturbed(&a, &update));
            match factor.is_positive_definite(&update) {
                Ok(verdict) => assert_eq!(verdict, oracle, "magnitude {magnitude}"),
                Err(LinalgError::IllConditioned { .. }) => {
                    // A degraded pivot near the boundary is an allowed
                    // "refactor instead" answer, not a wrong verdict.
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn indefinite_update_is_rejected_like_fresh_cholesky() {
        let a = spd(10, 13);
        let factor = UpdatableFactor::new(Cholesky::factor(&a).unwrap(), &[3, 6]).unwrap();
        // A delta far below -a_33 makes the matrix indefinite.
        let update = DiagonalUpdate::new([(3, -1e6)]).unwrap();
        assert!(matches!(
            factor.apply(&update),
            Err(LinalgError::NotPositiveDefinite { pivot: 3 })
        ));
        assert_eq!(factor.is_positive_definite(&update), Ok(false));
    }

    #[test]
    fn empty_update_is_the_base_factor() {
        let a = spd(8, 17);
        let chol = Cholesky::factor(&a).unwrap();
        let base_cond = chol.condition_estimate();
        let factor = UpdatableFactor::new(chol, &[2]).unwrap();
        let applied = factor.apply(&DiagonalUpdate::new([]).unwrap()).unwrap();
        let b = vec![1.0; 8];
        let x = applied.solve(&b).unwrap();
        let y = factor.base().solve(&b).unwrap();
        assert_eq!(x, y);
        assert_eq!(applied.condition_estimate(), base_cond);
        assert_eq!(applied.rank(), 0);
    }

    #[test]
    fn update_outside_prepared_nodes_is_rejected() {
        let a = spd(6, 21);
        let factor = UpdatableFactor::new(Cholesky::factor(&a).unwrap(), &[1, 3]).unwrap();
        let update = DiagonalUpdate::new([(2, 1.0)]).unwrap();
        assert!(matches!(
            factor.apply(&update),
            Err(LinalgError::InvalidInput(_))
        ));
    }

    #[test]
    fn constructor_validates_nodes() {
        let a = spd(5, 2);
        let chol = Cholesky::factor(&a).unwrap();
        assert!(UpdatableFactor::new(chol.clone(), &[0, 0]).is_err());
        assert!(UpdatableFactor::new(chol.clone(), &[5]).is_err());
        assert!(UpdatableFactor::new(chol, &[4, 0]).is_ok());
    }

    #[test]
    fn cancellation_is_honored() {
        let a = spd(6, 30);
        let factor = UpdatableFactor::new(Cholesky::factor(&a).unwrap(), &[2]).unwrap();
        let applied = factor
            .apply(&DiagonalUpdate::new([(2, 0.5)]).unwrap())
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert!(matches!(
            applied.solve_with_cancel(&[1.0; 6], Some(&token)),
            Err(LinalgError::Cancelled { .. })
        ));
        assert!(applied.solve_with_cancel(&[1.0; 6], None).is_ok());
    }
}
