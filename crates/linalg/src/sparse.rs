use crate::{DenseMatrix, LinalgError};

/// A coordinate-format entry used to assemble sparse matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value; duplicate `(row, col)` entries are summed on assembly.
    pub val: f64,
}

impl Triplet {
    /// Creates a new triplet.
    pub fn new(row: usize, col: usize, val: f64) -> Triplet {
        Triplet { row, col, val }
    }
}

/// Compressed sparse row matrix.
///
/// Backs the fine-grid reference thermal solver, whose systems (tens of
/// thousands of nodes, 7-point stencils) are too large for dense Cholesky but
/// are symmetric positive definite and solve quickly with preconditioned
/// conjugate gradients.
///
/// ```
/// use tecopt_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), tecopt_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[
///     Triplet::new(0, 0, 2.0),
///     Triplet::new(0, 1, -1.0),
///     Triplet::new(1, 0, -1.0),
///     Triplet::new(1, 1, 2.0),
/// ])?;
/// assert_eq!(a.mul_vec(&[1.0, 1.0])?, vec![1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from coordinate triplets, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if any index is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<CsrMatrix, LinalgError> {
        for t in triplets {
            if t.row >= rows || t.col >= cols {
                return Err(LinalgError::InvalidInput(format!(
                    "triplet ({}, {}) out of bounds for {rows}x{cols}",
                    t.row, t.col
                )));
            }
        }
        // Count entries per row (before dedup).
        let mut sorted: Vec<&Triplet> = triplets.iter().collect();
        sorted.sort_by_key(|t| (t.row, t.col));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        for r in 0..rows {
            while let Some(t) = iter.peek() {
                if t.row != r {
                    break;
                }
                let Some(t) = iter.next() else {
                    break; // unreachable: the peek above saw this entry
                };
                // `row_ptr[r] < col_idx.len()` restricts the duplicate check
                // to entries appended for the current row, so an equal
                // column index in a *previous* row cannot absorb this value.
                if row_ptr[r] < col_idx.len() && col_idx.last() == Some(&t.col) {
                    if let Some(last_v) = values.last_mut() {
                        *last_v += t.val;
                        continue;
                    }
                }
                col_idx.push(t.col);
                values.push(t.val);
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Compresses a dense matrix, dropping exact zeros.
    ///
    /// This is the entry point of the sparse solver backend: compact thermal
    /// models assemble `G` densely (stamping is simplest there) but at
    /// package scale `G` is ≥ 99 % zeros, so the CG backend converts once
    /// and then reuses the CSR copy across probes via
    /// [`CsrMatrix::set_diagonal_entry`].
    pub fn from_dense(a: &DenseMatrix) -> CsrMatrix {
        let (rows, cols) = (a.rows(), a.cols());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..rows {
            for (c, &v) in a.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sets the diagonal entry `(k, k)`, inserting it if structurally
    /// absent.
    ///
    /// This is the sparse counterpart of
    /// [`DenseMatrix::add_scaled_diagonal`]: the system matrices `G − i·D`
    /// share the sparsity structure of `G` (only diagonal values change with
    /// the current), so per-probe restamping reduces to a handful of these
    /// updates instead of a fresh format conversion.
    ///
    /// A structurally absent diagonal (legal CSR — e.g. a row whose diagonal
    /// conductance cancelled to exactly zero) is **inserted**: the column
    /// index and value slide into row `k` and the tail of `row_ptr` shifts
    /// by one. Earlier revisions rejected this case, which silently stranded
    /// rank-k current updates on such rows. Writing an exact `0.0` into an
    /// absent slot is a no-op (the entry already reads as zero), preserving
    /// [`CsrMatrix::from_dense`] round-trip parity, which never stores
    /// zeros.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `(k, k)` is out of bounds.
    pub fn set_diagonal_entry(&mut self, k: usize, value: f64) -> Result<(), LinalgError> {
        if k >= self.rows || k >= self.cols {
            return Err(LinalgError::InvalidInput(format!(
                "diagonal index {k} out of bounds for {}x{}",
                self.rows, self.cols
            )));
        }
        let start = self.row_ptr[k];
        let end = self.row_ptr[k + 1];
        match self.col_idx[start..end].binary_search(&k) {
            Ok(pos) => {
                self.values[start + pos] = value;
                Ok(())
            }
            Err(pos) => {
                if value == 0.0 {
                    return Ok(());
                }
                self.col_idx.insert(start + pos, k);
                self.values.insert(start + pos, value);
                for p in &mut self.row_ptr[k + 1..] {
                    *p += 1;
                }
                Ok(())
            }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(r, c)`, zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        match self.col_idx[start..end].binary_search(&c) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix-vector product into a caller-provided buffer (no allocation),
    /// for use inside CG iterations.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Copy of the main diagonal (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|k| self.get(k, k))
            .collect()
    }

    /// Checks structural + numerical symmetry within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                if (v - self.get(c, r)).abs() > tol * v.abs().max(1.0) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push(Triplet::new(i, i, 2.0));
            if i > 0 {
                t.push(Triplet::new(i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push(Triplet::new(i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn assembly_and_access() {
        let a = laplacian_1d(4);
        assert_eq!(a.rows(), 4);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.nnz(), 10);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.diagonal(), vec![2.0; 4]);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 0, 2.5),
                Triplet::new(1, 1, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err = CsrMatrix::from_triplets(2, 2, &[Triplet::new(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = laplacian_1d(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = a.mul_vec(&x).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn asymmetric_detected() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 1.0), Triplet::new(1, 0, -1.0)])
                .unwrap();
        assert!(!a.is_symmetric(1e-12));
    }

    #[test]
    fn from_dense_round_trips() {
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]])
            .unwrap();
        let s = CsrMatrix::from_dense(&a);
        assert_eq!(s.nnz(), 7);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(s.get(r, c), a[(r, c)]);
            }
        }
    }

    #[test]
    fn set_diagonal_entry_updates_in_place() {
        let mut a = laplacian_1d(4);
        a.set_diagonal_entry(2, 7.5).unwrap();
        assert_eq!(a.get(2, 2), 7.5);
        assert_eq!(a.get(1, 1), 2.0);
        assert_eq!(a.nnz(), 10);
        assert!(a.set_diagonal_entry(9, 1.0).is_err());
    }

    #[test]
    fn set_diagonal_entry_inserts_structurally_absent_diagonal() {
        // Regression: a structurally absent diagonal used to be rejected,
        // silently stranding rank-k current updates on rows whose diagonal
        // conductance cancelled to exact zero. It must now be inserted.
        let mut b = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(1, 0, 1.0),
                Triplet::new(1, 2, 4.0),
                Triplet::new(2, 2, 2.0),
            ],
        )
        .unwrap();
        assert_eq!(b.get(1, 1), 0.0);
        b.set_diagonal_entry(1, 5.0).unwrap();
        assert_eq!(b.get(1, 1), 5.0);
        // Neighbors in the row and every other entry survive the insert.
        assert_eq!(b.get(1, 0), 1.0);
        assert_eq!(b.get(1, 2), 4.0);
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(2, 2), 2.0);
        assert_eq!(b.nnz(), 5);
        // The patched matrix round-trips through mul_vec consistently.
        assert_eq!(b.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![1.0, 10.0, 2.0]);
        // Writing exact zero into an absent slot is a storage no-op.
        let mut c = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 0, 1.0)]).unwrap();
        c.set_diagonal_entry(1, 0.0).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(1, 1), 0.0);
    }

    #[test]
    fn duplicate_columns_across_rows_not_merged() {
        // Regression for the duplicate-accumulation guard: row 1 starts with
        // the same column index row 0 ended with; the values must stay
        // separate entries.
        let a = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 3.0), Triplet::new(1, 1, 4.0)])
            .unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn empty_rows_handled() {
        let a = CsrMatrix::from_triplets(3, 3, &[Triplet::new(2, 2, 1.0)]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![0.0, 0.0, 1.0]);
    }
}
