use crate::{DenseMatrix, LinalgError};

/// LU factorization with partial pivoting, `P·A = L·U`.
///
/// Used where symmetry or definiteness cannot be assumed: determinants of the
/// minors `A_kl` in Lemma 2 of the paper, and solves of perturbed systems in
/// diagnostics.
///
/// ```
/// use tecopt_linalg::{DenseMatrix, Lu};
///
/// # fn main() -> Result<(), tecopt_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]])?;
/// let lu = Lu::factor(&a)?;
/// assert!((lu.det() + 6.0).abs() < 1e-12);
/// let x = lu.solve(&[2.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (below diagonal, unit diagonal implicit) and U (upper).
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0).
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::Singular`] if no usable pivot exists in some column.
    pub fn factor(a: &DenseMatrix) -> Result<Lu, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Find pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu[(col, c)];
                    lu[(col, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let piv = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / piv;
                lu[(r, col)] = factor;
                for c in (col + 1)..n {
                    let v = lu[(col, c)];
                    lu[(r, c)] -= factor * v;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Pivot-ratio estimate of the condition number: `max_k |U_kk| / min_k
    /// |U_kk|`.
    ///
    /// With partial pivoting the `U` diagonal magnitudes track the scale
    /// spread of the matrix; a huge ratio flags systems whose LU solutions
    /// carry few correct digits. Companion to
    /// [`Cholesky::condition_estimate`](crate::Cholesky::condition_estimate)
    /// for the unsymmetric/fallback path. Returns `+∞` for a zero pivot.
    pub fn condition_estimate(&self) -> f64 {
        let mut max_p = 0.0_f64;
        let mut min_p = f64::INFINITY;
        for k in 0..self.dim() {
            let p = self.lu[(k, k)].abs();
            max_p = max_p.max(p);
            min_p = min_p.min(p);
        }
        if self.dim() == 0 {
            return 1.0;
        }
        if min_p == 0.0 {
            return f64::INFINITY;
        }
        max_p / min_p
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for k in 0..self.dim() {
            d *= self.lu[(k, k)];
        }
        d
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation, forward substitution with unit-diagonal L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            let row = self.lu.row(i);
            let dot: f64 = row[..i].iter().zip(&y[..i]).map(|(a, b)| a * b).sum();
            y[i] -= dot;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let dot: f64 = row[i + 1..]
                .iter()
                .zip(&y[i + 1..])
                .map(|(a, b)| a * b)
                .sum();
            y[i] = (y[i] - dot) / row[i];
        }
        Ok(y)
    }
}

/// Determinant of a square matrix via LU; zero if the matrix is singular.
///
/// Convenience used by the Lemma-2 experiments (`det(A_kl)` of the singular
/// runaway matrix `A = G − λ_m·D`).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn determinant(a: &DenseMatrix) -> Result<f64, LinalgError> {
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// `(sign, ln|det|)` of a square matrix via LU.
///
/// Unlike [`determinant`], this stays meaningful for large matrices whose
/// determinant under- or overflows `f64` (a few hundred thermal-conductance
/// pivots of magnitude 10⁻² already underflow). An exactly singular matrix
/// returns `(0.0, -inf)`.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn log_abs_determinant(a: &DenseMatrix) -> Result<(f64, f64), LinalgError> {
    let lu = match Lu::factor(a) {
        Ok(lu) => lu,
        Err(LinalgError::Singular { .. }) => return Ok((0.0, f64::NEG_INFINITY)),
        Err(e) => return Err(e),
    };
    let mut sign = lu.perm_sign;
    let mut log = 0.0;
    for k in 0..lu.dim() {
        let p = lu.lu[(k, k)];
        if p < 0.0 {
            sign = -sign;
        }
        log += p.abs().ln();
    }
    Ok((sign, log))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve_permuted_system() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 3.0], &[4.0, -3.0, 8.0]])
            .unwrap();
        let lu = Lu::factor(&a).unwrap();
        let b = [3.0, 4.0, 9.0];
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() - 6.0).abs() < 1e-12);
        // Row swap flips sign bookkeeping but not the determinant value.
        let b = DenseMatrix::from_rows(&[&[0.0, 3.0], &[2.0, 0.0]]).unwrap();
        assert!((Lu::factor(&b).unwrap().det() + 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
        assert_eq!(determinant(&a).unwrap(), 0.0);
    }

    #[test]
    fn determinant_helper_on_regular_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((determinant(&a).unwrap() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Lu::factor(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(determinant(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_dimension_mismatch() {
        let a = DenseMatrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        let a =
            DenseMatrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
                .unwrap();
        let lu = Lu::factor(&a).unwrap();
        let chol = crate::Cholesky::factor(&a).unwrap();
        let b = [0.3, -1.2, 2.2];
        let x1 = lu.solve(&b).unwrap();
        let x2 = chol.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
        assert!((lu.det().ln() - chol.log_det()).abs() < 1e-10);
    }
}

#[cfg(test)]
mod log_det_tests {
    use super::*;

    #[test]
    fn log_abs_determinant_matches_direct_on_small_matrices() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.5], &[1.0, 3.0]]).unwrap();
        let (sign, log) = log_abs_determinant(&a).unwrap();
        assert_eq!(sign, 1.0);
        assert!((log - 5.5_f64.ln()).abs() < 1e-12);
        let b = DenseMatrix::from_rows(&[&[0.0, 3.0], &[2.0, 0.0]]).unwrap();
        let (sign, log) = log_abs_determinant(&b).unwrap();
        assert_eq!(sign, -1.0);
        assert!((log - 6.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn log_abs_determinant_survives_underflow_scales() {
        // 400 pivots of 1e-3: det = 1e-1200 underflows, the log does not.
        let n = 400;
        let a = DenseMatrix::from_diagonal(&vec![1e-3; n]);
        assert_eq!(determinant(&a).unwrap(), 0.0 + determinant(&a).unwrap()); // plain det may underflow to 0
        let (sign, log) = log_abs_determinant(&a).unwrap();
        assert_eq!(sign, 1.0);
        assert!((log - n as f64 * (1e-3_f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn singular_matrix_reports_zero_sign() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let (sign, log) = log_abs_determinant(&a).unwrap();
        assert_eq!(sign, 0.0);
        assert_eq!(log, f64::NEG_INFINITY);
    }

    #[test]
    fn non_square_rejected_for_log_det() {
        assert!(log_abs_determinant(&DenseMatrix::zeros(2, 3)).is_err());
    }
}
