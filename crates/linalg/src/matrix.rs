use crate::LinalgError;
use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse container for the compact thermal model: the
/// conductance matrix `G`, the diagonal Peltier matrix `D` (stored dense for
/// simplicity — it participates only in `G − i·D` updates), and the inverse
/// `H = (G − i·D)⁻¹` all live in this type.
///
/// ```
/// use tecopt_linalg::DenseMatrix;
///
/// # fn main() -> Result<(), tecopt_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(a[(1, 0)], 3.0);
/// let v = a.mul_vec(&[1.0, 1.0])?;
/// assert_eq!(v, vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n, n);
        for k in 0..n {
            m[(k, k)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the main diagonal — the
    /// `DIAG(r)` operator of Definition 4 in the paper.
    pub fn from_diagonal(diag: &[f64]) -> DenseMatrix {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (k, &d) in diag.iter().enumerate() {
            m[(k, k)] = d;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<DenseMatrix, LinalgError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (idx, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::RaggedRows {
                    row: idx,
                    len: row.len(),
                    expected: ncols,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|k| self[(k, k)])
            .collect()
    }

    /// Checks every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFiniteEntry`] locating the first bad entry.
    pub fn ensure_finite(&self) -> Result<(), LinalgError> {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if !self[(r, c)].is_finite() {
                    return Err(LinalgError::NonFiniteEntry { row: r, col: c });
                }
            }
        }
        Ok(())
    }

    /// Returns `true` if `|a_kl − a_lk| ≤ tol · max(1, |a_kl|)` for all
    /// entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let a = self[(r, c)];
                let b = self[(c, r)];
                if (a - b).abs() > tol * a.abs().max(1.0) {
                    return false;
                }
            }
        }
        true
    }

    /// The transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let y = (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect();
        Ok(y)
    }

    /// Matrix-matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `A.cols != B.rows`.
    pub fn mul_mat(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns `self + scale · other`.
    ///
    /// This is how `G − i·D` is formed (with `scale = −i`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add_scaled(&self, other: &DenseMatrix, scale: f64) -> Result<DenseMatrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        let mut out = self.clone();
        for (o, x) in out.data.iter_mut().zip(&other.data) {
            *o += scale * x;
        }
        Ok(out)
    }

    /// Adds `scale · diag[k]` to each diagonal entry `k` in place.
    ///
    /// Fast path for `G − i·D` when `D` is known diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `diag.len() != n` or the
    /// matrix is not square.
    pub fn add_scaled_diagonal(&mut self, diag: &[f64], scale: f64) -> Result<(), LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if diag.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                actual: diag.len(),
            });
        }
        for (k, &d) in diag.iter().enumerate() {
            let idx = k * self.cols + k;
            self.data[idx] += scale * d;
        }
        Ok(())
    }

    /// Quadratic form `xᵀ·A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64, LinalgError> {
        let ax = self.mul_vec(x)?;
        Ok(dot(x, &ax))
    }

    /// The symmetric part `(A + Aᵀ)/2`.
    ///
    /// Used by the Conjecture-1 checker: positive definiteness of a
    /// nonsymmetric matrix `M` (in the `xᵀMx > 0` sense of Definition 2) is
    /// equivalent to positive definiteness of its symmetric part.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_part(&self) -> DenseMatrix {
        assert!(self.is_square(), "symmetric part of a non-square matrix");
        let mut s = DenseMatrix::zeros(self.rows, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                s[(r, c)] = 0.5 * (self[(r, c)] + self[(c, r)]);
            }
        }
        s
    }

    /// Largest absolute entry, or zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// The matrix with row `k` and column `l` removed — `A_kl` of Lemma 2.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `l` is out of bounds.
    pub fn minor(&self, k: usize, l: usize) -> DenseMatrix {
        assert!(k < self.rows && l < self.cols, "minor index out of bounds");
        let mut out = DenseMatrix::zeros(self.rows - 1, self.cols - 1);
        let mut rr = 0;
        for r in 0..self.rows {
            if r == k {
                continue;
            }
            let mut cc = 0;
            for c in 0..self.cols {
                if c == l {
                    continue;
                }
                out[(rr, cc)] = self[(r, c)];
                cc += 1;
            }
            rr += 1;
        }
        out
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of unequal-length vectors");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub(crate) fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for r in 0..show {
            write!(f, "  [")?;
            let cshow = self.cols.min(8);
            for c in 0..cshow {
                write!(f, "{:>12.5e}", self[(r, c)])?;
                if c + 1 < cshow {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert!(!m.is_square());
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            LinalgError::RaggedRows {
                row: 1,
                len: 2,
                expected: 1
            }
        );
    }

    #[test]
    fn identity_and_diagonal() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.diagonal(), vec![1.0, 1.0, 1.0]);
        assert_eq!(i[(0, 1)], 0.0);
        let d = DenseMatrix::from_diagonal(&[2.0, -3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], -3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mul_mat_matches_manual() {
        let a = sample();
        let b = a.transpose();
        let p = a.mul_mat(&b).unwrap();
        // a·aᵀ = [[14, 32], [32, 77]]
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 0)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
        assert!(a.mul_mat(&a).is_err());
    }

    #[test]
    fn add_scaled_forms_g_minus_id() {
        let g = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        let d = DenseMatrix::from_diagonal(&[1.0, -1.0]);
        let m = g.add_scaled(&d, -0.5).unwrap();
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], -1.0);
    }

    #[test]
    fn add_scaled_diagonal_in_place() {
        let mut g = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        g.add_scaled_diagonal(&[1.0, -1.0], -0.5).unwrap();
        assert_eq!(g[(0, 0)], 1.5);
        assert_eq!(g[(1, 1)], 2.5);
        assert!(g.add_scaled_diagonal(&[1.0], 1.0).is_err());
    }

    #[test]
    fn symmetry_detection() {
        let s = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0], &[1.0, 2.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn symmetric_part_of_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 4.0], &[0.0, 1.0]]).unwrap();
        let s = a.symmetric_part();
        assert_eq!(s[(0, 1)], 2.0);
        assert_eq!(s[(1, 0)], 2.0);
        assert!(s.is_symmetric(0.0));
    }

    #[test]
    fn quadratic_form_value() {
        let g = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        let q = g.quadratic_form(&[1.0, 1.0]).unwrap();
        assert_eq!(q, 2.0);
    }

    #[test]
    fn minor_removes_row_and_column() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]])
            .unwrap();
        let mm = m.minor(1, 0);
        assert_eq!(mm.rows(), 2);
        assert_eq!(mm[(0, 0)], 2.0);
        assert_eq!(mm[(0, 1)], 3.0);
        assert_eq!(mm[(1, 0)], 8.0);
        assert_eq!(mm[(1, 1)], 9.0);
    }

    #[test]
    fn ensure_finite_catches_nan() {
        let mut m = sample();
        assert!(m.ensure_finite().is_ok());
        m[(1, 2)] = f64::NAN;
        assert_eq!(
            m.ensure_finite().unwrap_err(),
            LinalgError::NonFiniteEntry { row: 1, col: 2 }
        );
    }

    #[test]
    fn max_abs_and_debug() {
        let m = DenseMatrix::from_rows(&[&[-5.0, 2.0], &[1.0, 3.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
        let dbg = format!("{m:?}");
        assert!(dbg.contains("DenseMatrix 2x2"));
    }
}
