//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a
//! controller (which calls [`CancelToken::cancel`]) and the kernels doing
//! the work (which poll [`CancelToken::is_cancelled`] at iteration
//! boundaries). Cancellation is *cooperative*: nothing is interrupted
//! preemptively, the kernel simply returns
//! [`LinalgError::Cancelled`](crate::LinalgError::Cancelled) at its next
//! check point. The token lives in this bottom-layer crate so both the
//! iterative solvers here and the sweep supervisor in `tecopt` can share
//! one flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones observe the same flag; once cancelled, a token stays cancelled
/// forever (there is deliberately no reset — a fresh run takes a fresh
/// token, so a stale clone can never un-cancel a sweep).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        t.cancel();
        assert!(t.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
