use crate::{DenseMatrix, LinalgError};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// This is the positive-definiteness oracle the paper's `λ_m` binary search
/// relies on (Sec. V.C.1: "Cholesky decomposition (O(n³) time complexity) is
/// employed to check whether a matrix is positive definite"), and the solver
/// behind every steady-state evaluation `θ = (G − i·D)⁻¹·p`.
///
/// ```
/// use tecopt_linalg::{Cholesky, DenseMatrix};
///
/// # fn main() -> Result<(), tecopt_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[25.0, 15.0, -5.0],
///                                  &[15.0, 18.0,  0.0],
///                                  &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[1.0, 2.0, 3.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-10 && (r[2] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part zero).
    l: DenseMatrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (the compact-model assembly guarantees it, and
    /// [`DenseMatrix::is_symmetric`] is available for validation).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    ///   positive — the signal used to detect thermal runaway (`i ≥ λ_m`).
    pub fn factor(a: &DenseMatrix) -> Result<Cholesky, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Returns `true` iff `a` (symmetric) is positive definite.
    ///
    /// Convenience wrapper over [`Cholesky::factor`] that discards the factor.
    pub fn is_positive_definite(a: &DenseMatrix) -> bool {
        Cholesky::factor(a).is_ok()
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    #[inline]
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Forward substitution: L·y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let dot: f64 = row[..i].iter().zip(&y[..i]).map(|(a, b)| a * b).sum();
            y[i] = (y[i] - dot) / row[i];
        }
        // Back substitution: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                v -= self.l[(k, i)] * yk;
            }
            y[i] = v / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != n`.
    pub fn solve_mat(&self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.rows(),
            });
        }
        let mut out = DenseMatrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for r in 0..n {
                col[r] = b[(r, c)];
            }
            let x = self.solve(&col)?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Solves `A·X = B` for many right-hand sides in one blocked pass.
    ///
    /// Mathematically identical to calling [`Cholesky::solve`] per column,
    /// but each substitution sweep walks the factor `L` **once** for all
    /// columns together (an axpy across the block per `L` entry), so the
    /// `O(n²)` factor traffic is amortized over the whole block instead of
    /// being re-streamed per right-hand side. This is the kernel behind
    /// `FactoredSystem::solve_many` and the `W = A⁻¹·U` precomputation of
    /// the rank-k update path.
    ///
    /// Summation order differs from the scalar path, so results may differ
    /// from [`Cholesky::solve`] in the last bits (never beyond normal
    /// rounding).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any column's length is
    /// not `n`.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let n = self.dim();
        let m = rhs.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        for b in rhs {
            if b.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    actual: b.len(),
                });
            }
        }
        // Row-major n×m block: y[i·m + j] is row i of column j.
        let mut y = vec![0.0; n * m];
        for (j, b) in rhs.iter().enumerate() {
            for (i, &v) in b.iter().enumerate() {
                y[i * m + j] = v;
            }
        }
        // Forward substitution L·Y = B, blocked across columns.
        for i in 0..n {
            let row = self.l.row(i);
            let (head, tail) = y.split_at_mut(i * m);
            let yi = &mut tail[..m];
            for (k, &lik) in row[..i].iter().enumerate() {
                if lik == 0.0 {
                    continue;
                }
                let yk = &head[k * m..(k + 1) * m];
                for (a, &b) in yi.iter_mut().zip(yk) {
                    *a -= lik * b;
                }
            }
            for a in yi.iter_mut() {
                *a /= row[i];
            }
        }
        // Back substitution Lᵀ·X = Y, blocked across columns.
        for i in (0..n).rev() {
            let (head, tail) = y.split_at_mut((i + 1) * m);
            let yi = &mut head[i * m..];
            for (off, yk) in tail.chunks_exact(m).enumerate() {
                let lki = self.l[(i + 1 + off, i)];
                if lki == 0.0 {
                    continue;
                }
                for (a, &b) in yi.iter_mut().zip(yk) {
                    *a -= lki * b;
                }
            }
            for a in yi.iter_mut() {
                *a /= self.l[(i, i)];
            }
        }
        Ok((0..m)
            .map(|j| (0..n).map(|i| y[i * m + j]).collect())
            .collect())
    }

    /// The full inverse `A⁻¹` — the matrix `H(i)` of the paper.
    ///
    /// For the compact models in this workspace (n in the hundreds) the dense
    /// inverse is cheap and the optimization layer consumes whole rows of `H`
    /// (the `η(i)`/`ζ(i)` sums of Eq. 10), so materializing it is the right
    /// trade.
    #[allow(clippy::expect_used)]
    pub fn inverse(&self) -> DenseMatrix {
        let n = self.dim();
        self.solve_mat(&DenseMatrix::identity(n))
            // tecopt:allow(panic-in-kernel) — identity RHS always matches dims
            .expect("identity has matching dimension")
    }

    /// Pivot-ratio estimate of the 2-norm condition number `κ(A)`.
    ///
    /// For `A = L·Lᵀ` the squared ratio of the extreme Cholesky pivots,
    /// `(max_k L_kk / min_k L_kk)²`, is a cheap lower bound on `κ₂(A)` that
    /// tracks the true condition number well for the diagonally dominant
    /// Stieltjes systems of the paper. As the supply current approaches the
    /// runaway limit `λ_m`, `G − i·D` approaches singularity and this
    /// estimate diverges — making it the solver-level "distance to runaway"
    /// diagnostic surfaced through `SolvedState`.
    ///
    /// Returns `+∞` if a pivot underflowed to zero (numerically singular).
    pub fn condition_estimate(&self) -> f64 {
        let mut max_p = f64::NEG_INFINITY;
        let mut min_p = f64::INFINITY;
        for k in 0..self.dim() {
            let p = self.l[(k, k)];
            max_p = max_p.max(p);
            min_p = min_p.min(p);
        }
        if self.dim() == 0 {
            return 1.0;
        }
        if min_p <= 0.0 {
            return f64::INFINITY;
        }
        let r = max_p / min_p;
        r * r
    }

    /// Natural logarithm of `det(A) = Π L_kk²`.
    ///
    /// Stays finite where the determinant itself would overflow; diverges to
    /// `−∞` as `A = G − i·D` approaches singularity at `i → λ_m⁻` (Lemma 2),
    /// which makes it a useful runaway diagnostic.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|k| 2.0 * self.l[(k, k)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example: L = [[5,0,0],[3,3,0],[-1,1,3]].
        let chol = Cholesky::factor(&spd3()).unwrap();
        let l = chol.l();
        assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 3.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 3.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 1.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn reconstruction_l_lt() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let rec = chol.l().mul_mat(&chol.l().transpose()).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!((rec[(r, c)] - a[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_residual_small() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = chol.solve(&b).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let id = a.mul_mat(&inv).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((id[(r, c)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
        assert!(!Cholesky::is_positive_definite(&a));
        assert!(Cholesky::is_positive_definite(&spd3()));
    }

    #[test]
    fn negative_diagonal_rejected_at_first_pivot() {
        let a = DenseMatrix::from_rows(&[&[-1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 0 }
        );
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn log_det_matches_known_determinant() {
        // det(spd3) = (5·3·3)² = 2025.
        let chol = Cholesky::factor(&spd3()).unwrap();
        assert!((chol.log_det() - 2025.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_mat_matches_columnwise_solve() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = chol.solve_mat(&b).unwrap();
        let x0 = chol.solve(&[1.0, 0.0, 1.0]).unwrap();
        for r in 0..3 {
            assert!((x[(r, 0)] - x0[r]).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_many_matches_per_column_solve() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let rhs = vec![
            vec![1.0, 0.0, 1.0],
            vec![-2.0, 0.5, 3.0],
            vec![0.0, 0.0, 0.0],
        ];
        let many = chol.solve_many(&rhs).unwrap();
        assert_eq!(many.len(), 3);
        for (col, b) in many.iter().zip(&rhs) {
            let one = chol.solve(b).unwrap();
            for (u, v) in col.iter().zip(&one) {
                assert!((u - v).abs() < 1e-12, "{u} vs {v}");
            }
        }
        assert!(chol.solve_many(&[vec![1.0; 2]]).is_err());
        assert!(chol.solve_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn dimension_mismatch_on_solve() {
        let chol = Cholesky::factor(&spd3()).unwrap();
        assert!(chol.solve(&[1.0, 2.0]).is_err());
        assert!(chol.solve_mat(&DenseMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = DenseMatrix::from_rows(&[&[4.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        assert_eq!(chol.solve(&[8.0]).unwrap(), vec![2.0]);
        assert!((chol.log_det() - 4.0_f64.ln()).abs() < 1e-14);
    }
}
