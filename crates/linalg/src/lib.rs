//! Linear-algebra kernels for the `tecopt` workspace.
//!
//! The thermal steady-state analysis in the paper reduces to factorizations
//! of symmetric matrices of the form `G − i·D` (Eq. 4 of the paper) where `G`
//! is an irreducible positive-definite [Stieltjes matrix](stieltjes). This
//! crate provides everything the higher layers need, implemented from
//! scratch:
//!
//! - [`DenseMatrix`] — row-major dense storage with the handful of BLAS-1/2/3
//!   operations the solvers use,
//! - [`Cholesky`] — `L·Lᵀ` factorization, the positive-definiteness oracle
//!   used by the paper's `λ_m` binary search, plus solves and inverses,
//! - [`Lu`] — partially pivoted LU for general systems and determinants,
//! - [`CsrMatrix`] and [`conjugate_gradient`] — sparse kernels for the
//!   fine-grid reference thermal solver,
//! - [`SolverBackend`] / [`FactoredSystem`] — the dense-vs-sparse routing
//!   layer: one interface over Cholesky and preconditioned CG with an
//!   automatic size/density crossover,
//! - [`stieltjes`] — structure checks (symmetric, nonpositive off-diagonal,
//!   irreducible) and seeded random generation of positive-definite Stieltjes
//!   matrices for the Conjecture-1 experiments,
//! - [`eigen`] — power/inverse iteration and the generalized smallest
//!   "eigenvalue" `λ_m = min θᵀGθ/θᵀDθ` via positive-definiteness bisection,
//! - [`UpdatableFactor`] / [`DiagonalUpdate`] — Sherman–Morrison–Woodbury
//!   rank-k diagonal updates over a cached Cholesky factor, with Haynsworth
//!   inertia certificates replacing per-probe refactorizations.
//!
//! ```
//! use tecopt_linalg::{Cholesky, DenseMatrix};
//!
//! # fn main() -> Result<(), tecopt_linalg::LinalgError> {
//! let g = DenseMatrix::from_rows(&[&[4.0, -1.0], &[-1.0, 3.0]])?;
//! let chol = Cholesky::factor(&g)?;
//! let x = chol.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] - x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

mod backend;
mod cancel;
mod cg;
mod cholesky;
pub mod eigen;
mod error;
mod lu;
mod matrix;
mod robust;
mod sparse;
pub mod stieltjes;
mod update;

pub use backend::{
    BackendSolve, FactoredSystem, ResolvedBackend, SolverBackend, SPARSE_MAX_DENSITY,
    SPARSE_MIN_DIM,
};
pub use cancel::CancelToken;
pub use cg::{conjugate_gradient, conjugate_gradient_cancellable, CgOutcome, CgSettings};
pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::{determinant, log_abs_determinant, Lu};
pub use matrix::DenseMatrix;
pub use robust::{solve_robust, RobustSolution, SolveDiagnostics, SolveMethod, SolverPolicy};
pub use sparse::{CsrMatrix, Triplet};
pub use update::{AppliedUpdate, DiagonalUpdate, SmallLdl, UpdatableFactor, LDL_PIVOT_FLOOR};
