//! Eigenvalue utilities.
//!
//! The paper's runaway threshold is the generalized Rayleigh-quotient minimum
//!
//! ```text
//! λ_m = min { θᵀGθ : θᵀDθ = 1 }
//! ```
//!
//! (Theorem 1) which it computes by *binary search on positive definiteness*
//! of `G − i·D` with a Cholesky probe per step. [`generalized_pd_threshold`]
//! implements exactly that scheme; [`power_iteration`] and
//! [`min_eigenvalue_symmetric`] support the Conjecture-1 experiments and
//! diagnostics.

use crate::{Cholesky, DenseMatrix, DiagonalUpdate, LinalgError, UpdatableFactor};

/// Outcome of the positive-definiteness bisection for
/// `λ_m = sup { i ≥ 0 : G − i·D is positive definite }`.
#[derive(Debug, Clone, PartialEq)]
pub struct PdThreshold {
    /// Lower bound on the threshold: `G − lower·D` is positive definite.
    pub lower: f64,
    /// Upper bound: `G − upper·D` is *not* positive definite.
    pub upper: f64,
    /// Cholesky factorizations performed.
    pub probes: usize,
}

impl PdThreshold {
    /// Midpoint estimate of the threshold.
    pub fn estimate(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Width of the bracketing interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Computes `λ_m` by exponential bracketing followed by bisection, using a
/// Cholesky factorization as the positive-definiteness oracle at each probe
/// — the algorithm of Sec. V.C.1 of the paper.
///
/// `g` must be symmetric positive definite and `d` is a diagonal (passed as
/// its diagonal vector) with at least one strictly positive entry; under
/// those assumptions Theorem 1 guarantees the threshold is finite and the
/// set of feasible `i` is the interval `[0, λ_m)`.
///
/// # Errors
///
/// - [`LinalgError::NotPositiveDefinite`] if `g` itself is not PD (`i = 0`
///   infeasible).
/// - [`LinalgError::InvalidInput`] if `d` has no positive entry (then
///   `G − i·D` stays PD for all `i ≥ 0` and no finite threshold exists), if
///   the dimensions disagree, or if `rel_tol` is not in `(0, 1)`.
/// - [`LinalgError::BudgetExhausted`] if [`DEFAULT_PROBE_BUDGET`] Cholesky
///   probes are spent before the bracket reaches `rel_tol` (see
///   [`generalized_pd_threshold_budgeted`] for a custom budget).
pub fn generalized_pd_threshold(
    g: &DenseMatrix,
    d: &[f64],
    rel_tol: f64,
) -> Result<PdThreshold, LinalgError> {
    generalized_pd_threshold_budgeted(g, d, rel_tol, DEFAULT_PROBE_BUDGET)
}

/// Default Cholesky-probe budget for [`generalized_pd_threshold`].
///
/// Exponential bracketing to `1e18` costs ~60 probes and bisection to
/// `rel_tol = 1e-15` another ~50, so 4096 leaves two orders of magnitude of
/// headroom for legitimate searches while still bounding adversarial ones.
pub const DEFAULT_PROBE_BUDGET: usize = 4096;

/// [`generalized_pd_threshold`] with an explicit cap on Cholesky probes.
///
/// A hard iteration bound makes the search total: no choice of `g`, `d`, or
/// `rel_tol` that passes validation can loop forever (denormal-scale
/// brackets, for instance, can otherwise bisect for a very long time before
/// the floating-point midpoint reaches a fixed point).
///
/// # Errors
///
/// As [`generalized_pd_threshold`], with [`LinalgError::BudgetExhausted`]
/// carrying `spent == budget == max_probes` once the cap is hit.
pub fn generalized_pd_threshold_budgeted(
    g: &DenseMatrix,
    d: &[f64],
    rel_tol: f64,
    max_probes: usize,
) -> Result<PdThreshold, LinalgError> {
    if d.len() != g.rows() {
        return Err(LinalgError::DimensionMismatch {
            expected: g.rows(),
            actual: d.len(),
        });
    }
    if !(rel_tol > 0.0 && rel_tol < 1.0) {
        return Err(LinalgError::InvalidInput(format!(
            "relative tolerance must be in (0, 1), got {rel_tol}"
        )));
    }
    if !d.iter().any(|&x| x > 0.0) {
        return Err(LinalgError::InvalidInput(
            "d has no positive entry; G - i*D remains positive definite for all i".into(),
        ));
    }
    if max_probes == 0 {
        return Err(LinalgError::BudgetExhausted {
            spent: 0,
            budget: 0,
        });
    }
    let mut probes = 0usize;
    let mut pd_at = |i: f64| -> Result<bool, LinalgError> {
        if probes >= max_probes {
            return Err(LinalgError::BudgetExhausted {
                spent: probes,
                budget: max_probes,
            });
        }
        probes += 1;
        let mut m = g.clone();
        m.add_scaled_diagonal(d, -i)?;
        Ok(Cholesky::factor(&m).is_ok())
    };
    if !pd_at(0.0)? {
        return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
    }
    // A guaranteed-infeasible upper bound: at i = g_max_diag / d_max_pos the
    // most Peltier-loaded diagonal entry of G - i*D is <= 0, so the matrix
    // cannot be PD. Still grow exponentially from a small start so typical
    // cases use few probes.
    let mut lower = 0.0_f64;
    let mut upper = {
        let mut u = 1.0_f64;
        while pd_at(u)? {
            lower = u;
            u *= 2.0;
            if u > 1e18 {
                return Err(LinalgError::NoConvergence {
                    iterations: probes,
                    residual: u,
                });
            }
        }
        u
    };
    while (upper - lower) > rel_tol * upper.max(1e-300) {
        let mid = 0.5 * (lower + upper);
        if mid <= lower || mid >= upper {
            // The floating-point midpoint reached a fixed point: the bracket
            // is one ULP wide and cannot shrink further, so requesting a
            // tighter rel_tol would spin forever. Accept the bracket.
            break;
        }
        if pd_at(mid)? {
            lower = mid;
        } else {
            upper = mid;
        }
    }
    Ok(PdThreshold {
        lower,
        upper,
        probes,
    })
}

/// [`generalized_pd_threshold_budgeted`] with `O(k³)` inertia probes
/// instead of `O(n³)` Cholesky factorizations.
///
/// `D` is diagonal and supported on only the TEC junction nodes, so
/// `G − i·D = G + U·C(i)·Uᵀ` is a rank-k diagonal perturbation of the
/// *fixed* matrix `G`. This routine factors `G` once, prepares an
/// [`UpdatableFactor`] over the support of `d` (a `k`-column solve), and
/// then answers every bisection probe from the Haynsworth inertia of the
/// `k×k` capacitance matrix — the bracketing policy (exponential doubling,
/// `1e18` ceiling, midpoint fixed-point guard) mirrors
/// [`generalized_pd_threshold_budgeted`] exactly, so the two agree to
/// `rel_tol`.
///
/// A probe whose capacitance pivots degrade below trust
/// ([`LinalgError::IllConditioned`]) falls back to a fresh dense Cholesky
/// probe for that current — the verdict is then authoritative, just paid at
/// the full price. `probes` counts both kinds.
///
/// # Errors
///
/// Same contract as [`generalized_pd_threshold_budgeted`] (the base
/// factorization of `G` counts as the `i = 0` probe).
pub fn generalized_pd_threshold_lowrank(
    g: &DenseMatrix,
    d: &[f64],
    rel_tol: f64,
    max_probes: usize,
) -> Result<PdThreshold, LinalgError> {
    if d.len() != g.rows() {
        return Err(LinalgError::DimensionMismatch {
            expected: g.rows(),
            actual: d.len(),
        });
    }
    if !(rel_tol > 0.0 && rel_tol < 1.0) {
        return Err(LinalgError::InvalidInput(format!(
            "relative tolerance must be in (0, 1), got {rel_tol}"
        )));
    }
    if !d.iter().any(|&x| x > 0.0) {
        return Err(LinalgError::InvalidInput(
            "d has no positive entry; G - i*D remains positive definite for all i".into(),
        ));
    }
    if max_probes == 0 {
        return Err(LinalgError::BudgetExhausted {
            spent: 0,
            budget: 0,
        });
    }
    let support: Vec<(usize, f64)> = d
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(k, &v)| (k, v))
        .collect();
    let nodes: Vec<usize> = support.iter().map(|&(k, _)| k).collect();
    // The base factorization doubles as the i = 0 probe.
    let mut probes = 1usize;
    let base = match Cholesky::factor(g) {
        Ok(chol) => chol,
        Err(LinalgError::NotPositiveDefinite { .. }) => {
            return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
        }
        Err(e) => return Err(e),
    };
    let factor = UpdatableFactor::new(base, &nodes)?;
    let mut pd_at = |i: f64| -> Result<bool, LinalgError> {
        if probes >= max_probes {
            return Err(LinalgError::BudgetExhausted {
                spent: probes,
                budget: max_probes,
            });
        }
        probes += 1;
        let update = DiagonalUpdate::new(support.iter().map(|&(k, v)| (k, -i * v)))?;
        match factor.is_positive_definite(&update) {
            Ok(verdict) => Ok(verdict),
            Err(LinalgError::IllConditioned { .. }) => {
                // Degraded capacitance pivots: answer this probe with the
                // authoritative dense oracle instead of a shaky inertia.
                let mut m = g.clone();
                m.add_scaled_diagonal(d, -i)?;
                Ok(Cholesky::factor(&m).is_ok())
            }
            Err(e) => Err(e),
        }
    };
    let mut lower = 0.0_f64;
    let mut upper = {
        let mut u = 1.0_f64;
        while pd_at(u)? {
            lower = u;
            u *= 2.0;
            if u > 1e18 {
                return Err(LinalgError::NoConvergence {
                    iterations: probes,
                    residual: u,
                });
            }
        }
        u
    };
    while (upper - lower) > rel_tol * upper.max(1e-300) {
        let mid = 0.5 * (lower + upper);
        if mid <= lower || mid >= upper {
            // One-ULP bracket: accept it (see the dense-oracle twin above).
            break;
        }
        if pd_at(mid)? {
            lower = mid;
        } else {
            upper = mid;
        }
    }
    Ok(PdThreshold {
        lower,
        upper,
        probes,
    })
}

/// Dominant eigenpair of a symmetric matrix by power iteration.
///
/// Returns `(eigenvalue, eigenvector)`. Convergence is declared when the
/// Rayleigh quotient changes by less than `tol` between sweeps.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] if `a` is not square.
/// - [`LinalgError::NoConvergence`] if `max_iter` sweeps do not converge.
pub fn power_iteration(
    a: &DenseMatrix,
    max_iter: usize,
    tol: f64,
) -> Result<(f64, Vec<f64>), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::InvalidInput("empty matrix".into()));
    }
    // Deterministic start vector with all components nonzero.
    let mut v: Vec<f64> = (0..n).map(|k| 1.0 + (k as f64) / (n as f64)).collect();
    normalize(&mut v);
    let mut lambda = 0.0_f64;
    for it in 0..max_iter {
        let mut w = a.mul_vec(&v)?;
        let nrm = normalize(&mut w);
        if nrm == 0.0 {
            // v was in the null space; eigenvalue 0 with that vector.
            return Ok((0.0, v));
        }
        let new_lambda = a.quadratic_form(&w)?;
        v = w;
        if it > 0 && (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return Ok((new_lambda, v));
        }
        lambda = new_lambda;
    }
    Err(LinalgError::NoConvergence {
        iterations: max_iter,
        residual: f64::NAN,
    })
}

/// Smallest eigenvalue of a symmetric matrix, via power iteration on the
/// spectrally shifted matrix `s·I − A` with `s` an upper bound on the
/// spectral radius (Gershgorin).
///
/// # Errors
///
/// Propagates errors from [`power_iteration`].
pub fn min_eigenvalue_symmetric(
    a: &DenseMatrix,
    max_iter: usize,
    tol: f64,
) -> Result<f64, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Gershgorin bound on the spectral radius.
    let mut s = 0.0_f64;
    for r in 0..n {
        let mut radius = 0.0;
        for c in 0..n {
            if c != r {
                radius += a[(r, c)].abs();
            }
        }
        s = s.max(a[(r, r)].abs() + radius);
    }
    let mut shifted = DenseMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            shifted[(r, c)] = if r == c { s - a[(r, c)] } else { -a[(r, c)] };
        }
    }
    let (mu, _) = power_iteration(&shifted, max_iter, tol)?;
    Ok(s - mu)
}

fn normalize(v: &mut [f64]) -> f64 {
    let nrm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if nrm > 0.0 {
        for x in v.iter_mut() {
            *x /= nrm;
        }
    }
    nrm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pd_threshold_on_diagonal_case() {
        // G = diag(2, 4), D = diag(1, 1): threshold at i = 2.
        let g = DenseMatrix::from_diagonal(&[2.0, 4.0]);
        let t = generalized_pd_threshold(&g, &[1.0, 1.0], 1e-10).unwrap();
        assert!((t.estimate() - 2.0).abs() < 1e-8);
        assert!(t.lower <= 2.0 && 2.0 <= t.upper);
    }

    #[test]
    fn pd_threshold_with_negative_d_entries() {
        // D with a negative entry only *helps* definiteness on that axis:
        // G = diag(2, 4), D = diag(1, -1): still limited by the first axis.
        let g = DenseMatrix::from_diagonal(&[2.0, 4.0]);
        let t = generalized_pd_threshold(&g, &[1.0, -1.0], 1e-10).unwrap();
        assert!((t.estimate() - 2.0).abs() < 1e-8);
    }

    #[test]
    fn pd_threshold_coupled_case_matches_rayleigh() {
        // 2x2 case solvable by hand: G = [[3,-1],[-1,3]], D = diag(1,0).
        // lambda_m = min over x of xGx / x1^2. Parametrize x = (1, t):
        // f(t) = 3 - 2t + 3t^2 minimized at t = 1/3 -> f = 8/3.
        let g = DenseMatrix::from_rows(&[&[3.0, -1.0], &[-1.0, 3.0]]).unwrap();
        let t = generalized_pd_threshold(&g, &[1.0, 0.0], 1e-12).unwrap();
        assert!((t.estimate() - 8.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn pd_threshold_requires_positive_d_entry() {
        let g = DenseMatrix::identity(2);
        let err = generalized_pd_threshold(&g, &[0.0, -1.0], 1e-9).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
    }

    #[test]
    fn pd_threshold_rejects_indefinite_g() {
        let g = DenseMatrix::from_diagonal(&[-1.0, 1.0]);
        let err = generalized_pd_threshold(&g, &[1.0, 1.0], 1e-9).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn pd_threshold_validates_inputs() {
        let g = DenseMatrix::identity(2);
        assert!(generalized_pd_threshold(&g, &[1.0], 1e-9).is_err());
        assert!(generalized_pd_threshold(&g, &[1.0, 1.0], 0.0).is_err());
        assert!(generalized_pd_threshold(&g, &[1.0, 1.0], 1.5).is_err());
    }

    #[test]
    fn pd_threshold_budget_exhaustion_is_an_error_not_a_hang() {
        let g = DenseMatrix::from_diagonal(&[2.0, 4.0]);
        // Three probes are not enough to even finish bracketing to i = 2.
        let err = generalized_pd_threshold_budgeted(&g, &[1.0, 1.0], 1e-12, 3).unwrap_err();
        assert_eq!(
            err,
            LinalgError::BudgetExhausted {
                spent: 3,
                budget: 3
            }
        );
        let err = generalized_pd_threshold_budgeted(&g, &[1.0, 1.0], 1e-12, 0).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::BudgetExhausted { budget: 0, .. }
        ));
    }

    #[test]
    fn pd_threshold_ulp_wide_bracket_terminates() {
        // rel_tol below machine epsilon: the bisection bracket bottoms out at
        // one ULP and must stop via the midpoint fixed-point guard instead of
        // spinning until the probe budget trips.
        let g = DenseMatrix::from_diagonal(&[2.0, 4.0]);
        let t = generalized_pd_threshold_budgeted(&g, &[1.0, 1.0], 1e-300, usize::MAX).unwrap();
        assert!(t.probes < 200, "spent {} probes", t.probes);
        assert!((t.estimate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn default_budget_covers_legitimate_searches() {
        let g = DenseMatrix::from_diagonal(&[2.0, 4.0]);
        let t = generalized_pd_threshold(&g, &[1.0, 1.0], 1e-15).unwrap();
        assert!(t.probes < DEFAULT_PROBE_BUDGET / 10);
    }

    #[test]
    fn lowrank_threshold_agrees_with_dense_oracle() {
        use crate::stieltjes::{random_stieltjes, seeded_rng, StieltjesSampler};
        for seed in [5_u64, 19, 42] {
            let g = random_stieltjes(
                StieltjesSampler {
                    dim: 14,
                    ..StieltjesSampler::default()
                },
                &mut seeded_rng(seed),
            );
            // TEC-shaped D: a few +/- pairs, zero elsewhere.
            let mut d = vec![0.0; 14];
            d[1] = 1.0;
            d[4] = -1.0;
            d[7] = 0.5;
            d[12] = -0.5;
            let dense = generalized_pd_threshold(&g, &d, 1e-10).unwrap();
            let fast = generalized_pd_threshold_lowrank(&g, &d, 1e-10, 4096).unwrap();
            let lam = dense.estimate();
            assert!(
                (fast.estimate() - lam).abs() <= 1e-7 * lam.max(1.0),
                "seed {seed}: dense {lam} vs lowrank {}",
                fast.estimate()
            );
            assert!(fast.lower <= fast.upper);
        }
    }

    #[test]
    fn lowrank_threshold_validates_like_the_dense_twin() {
        let g = DenseMatrix::identity(2);
        assert!(generalized_pd_threshold_lowrank(&g, &[1.0], 1e-9, 100).is_err());
        assert!(generalized_pd_threshold_lowrank(&g, &[1.0, 1.0], 0.0, 100).is_err());
        assert!(generalized_pd_threshold_lowrank(&g, &[0.0, -1.0], 1e-9, 100).is_err());
        assert!(matches!(
            generalized_pd_threshold_lowrank(&g, &[1.0, 1.0], 1e-9, 0),
            Err(LinalgError::BudgetExhausted { budget: 0, .. })
        ));
        let indef = DenseMatrix::from_diagonal(&[-1.0, 1.0]);
        assert!(matches!(
            generalized_pd_threshold_lowrank(&indef, &[1.0, 1.0], 1e-9, 100),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Budget exhaustion mid-search is a typed error, not a hang.
        let g = DenseMatrix::from_diagonal(&[2.0, 4.0]);
        assert!(matches!(
            generalized_pd_threshold_lowrank(&g, &[1.0, 1.0], 1e-12, 3),
            Err(LinalgError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn power_iteration_finds_dominant_pair() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let (lambda, v) = power_iteration(&a, 10_000, 1e-14).unwrap();
        assert!((lambda - 3.0).abs() < 1e-8);
        // Eigenvector is (1,1)/sqrt(2) up to sign.
        assert!((v[0].abs() - v[1].abs()).abs() < 1e-6);
    }

    #[test]
    fn min_eigenvalue_of_known_matrix() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let lam = min_eigenvalue_symmetric(&a, 10_000, 1e-14).unwrap();
        assert!((lam - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_eigenvalue_flags_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let lam = min_eigenvalue_symmetric(&a, 10_000, 1e-14).unwrap();
        assert!((lam + 1.0).abs() < 1e-6);
    }

    #[test]
    fn threshold_matches_generalized_eigen_on_random_stieltjes() {
        use crate::stieltjes::{random_stieltjes, seeded_rng, StieltjesSampler};
        let mut rng = seeded_rng(11);
        let g = random_stieltjes(
            StieltjesSampler {
                dim: 6,
                ..StieltjesSampler::default()
            },
            &mut rng,
        );
        // D: alternate +1 / -1 / 0 as in TEC hot/cold/other nodes.
        let d: Vec<f64> = (0..6)
            .map(|k| match k % 3 {
                0 => 1.0,
                1 => -1.0,
                _ => 0.0,
            })
            .collect();
        let t = generalized_pd_threshold(&g, &d, 1e-11).unwrap();
        // At the threshold, G - lambda*D should be singular: its smallest
        // eigenvalue is ~0.
        let mut m = g.clone();
        m.add_scaled_diagonal(&d, -t.estimate()).unwrap();
        let lam_min = min_eigenvalue_symmetric(&m, 200_000, 1e-13).unwrap();
        assert!(
            lam_min.abs() < 1e-5 * m.max_abs(),
            "smallest eigenvalue at threshold is {lam_min}"
        );
    }
}
