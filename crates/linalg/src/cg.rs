use crate::matrix::{dot, norm2};
use crate::{CancelToken, CsrMatrix, LinalgError};

/// Settings for the preconditioned conjugate-gradient solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSettings {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Relative residual tolerance: stop when `‖b − A·x‖ ≤ tol · ‖b‖`.
    pub tolerance: f64,
}

impl Default for CgSettings {
    fn default() -> CgSettings {
        CgSettings {
            max_iterations: 20_000,
            tolerance: 1e-10,
        }
    }
}

/// Result of a converged conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solves `A·x = b` for symmetric positive-definite sparse `A` using
/// Jacobi-preconditioned conjugate gradients.
///
/// This is the linear solver behind the fine-grid reference thermal model
/// (the HotSpot-validation substitute): finite-volume discretizations of the
/// package stack produce SPD systems with 7-point stencils where CG converges
/// in a few hundred iterations.
///
/// ```
/// use tecopt_linalg::{conjugate_gradient, CgSettings, CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), tecopt_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[
///     Triplet::new(0, 0, 4.0),
///     Triplet::new(0, 1, 1.0),
///     Triplet::new(1, 0, 1.0),
///     Triplet::new(1, 1, 3.0),
/// ])?;
/// let out = conjugate_gradient(&a, &[1.0, 2.0], CgSettings::default())?;
/// assert!(out.relative_residual < 1e-10);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] for
///   shape violations.
/// - [`LinalgError::InvalidInput`] if a diagonal entry is not strictly
///   positive (the Jacobi preconditioner would be undefined; SPD matrices
///   always have positive diagonals).
/// - [`LinalgError::NotPositiveDefinite`] if a search direction exposes
///   nonpositive curvature — the same indefiniteness signal dense Cholesky
///   raises, so runaway detection is uniform across solver backends.
/// - [`LinalgError::NoConvergence`] if the tolerance is not reached within
///   `max_iterations`.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    settings: CgSettings,
) -> Result<CgOutcome, LinalgError> {
    conjugate_gradient_cancellable(a, b, settings, None)
}

/// [`conjugate_gradient`] with a cooperative cancellation check at every
/// iteration boundary.
///
/// With `cancel: None` the behavior (and the floating-point result) is
/// bit-identical to [`conjugate_gradient`]. With a token, the loop returns
/// [`LinalgError::Cancelled`] as soon as it observes the raised flag —
/// before the next matrix-vector product, so a sweep supervisor can stop a
/// long solve within one iteration's latency.
///
/// # Errors
///
/// Same contract as [`conjugate_gradient`], plus
/// [`LinalgError::Cancelled`] when the token is raised mid-iteration.
pub fn conjugate_gradient_cancellable(
    a: &CsrMatrix,
    b: &[f64],
    settings: CgSettings,
    cancel: Option<&CancelToken>,
) -> Result<CgOutcome, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: b.len(),
        });
    }
    let diag = a.diagonal();
    for (k, &d) in diag.iter().enumerate() {
        if d <= 0.0 || d.is_nan() {
            return Err(LinalgError::InvalidInput(format!(
                "jacobi preconditioner needs positive diagonal, entry {k} is {d}"
            )));
        }
    }
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 1..=settings.max_iterations {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(LinalgError::Cancelled {
                iterations: iter - 1,
            });
        }
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Nonpositive curvature along a Krylov direction proves the
            // matrix indefinite; report it with the same signal a failed
            // Cholesky pivot gives so callers treat both backends alike.
            return Err(LinalgError::NotPositiveDefinite { pivot: iter - 1 });
        }
        let alpha = rz / pap;
        for k in 0..n {
            x[k] += alpha * p[k];
            r[k] -= alpha * ap[k];
        }
        let res = norm2(&r) / b_norm;
        if res <= settings.tolerance {
            return Ok(CgOutcome {
                x,
                iterations: iter,
                relative_residual: res,
            });
        }
        for k in 0..n {
            z[k] = r[k] / diag[k];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for k in 0..n {
            p[k] = z[k] + beta * p[k];
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: settings.max_iterations,
        residual: norm2(&r) / b_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn laplacian_2d(n: usize) -> CsrMatrix {
        // 5-point Laplacian on an n x n grid with Dirichlet-like diagonal
        // boost to keep it PD.
        let idx = |i: usize, j: usize| i * n + j;
        let mut t = Vec::new();
        for i in 0..n {
            for j in 0..n {
                t.push(Triplet::new(idx(i, j), idx(i, j), 4.0 + 0.01));
                if i > 0 {
                    t.push(Triplet::new(idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < n {
                    t.push(Triplet::new(idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push(Triplet::new(idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < n {
                    t.push(Triplet::new(idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n * n, n * n, &t).unwrap()
    }

    #[test]
    fn solves_laplacian_to_tolerance() {
        let a = laplacian_2d(20);
        let n = a.rows();
        let b = vec![1.0; n];
        let out = conjugate_gradient(&a, &b, CgSettings::default()).unwrap();
        assert!(out.relative_residual <= 1e-10);
        let ax = a.mul_vec(&out.x).unwrap();
        let err: f64 = ax
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8 * (n as f64).sqrt());
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian_2d(3);
        let out = conjugate_gradient(&a, &[0.0; 9], CgSettings::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = laplacian_2d(3);
        assert!(conjugate_gradient(&a, &[1.0], CgSettings::default()).is_err());
    }

    #[test]
    fn nonpositive_diagonal_rejected() {
        let a = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 0, 1.0)]).unwrap();
        // (1,1) entry is structurally zero.
        let err = conjugate_gradient(&a, &[1.0, 1.0], CgSettings::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
    }

    #[test]
    fn max_iterations_respected() {
        let a = laplacian_2d(20);
        let b = vec![1.0; a.rows()];
        let err = conjugate_gradient(
            &a,
            &b,
            CgSettings {
                max_iterations: 1,
                tolerance: 1e-14,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NoConvergence { iterations: 1, .. }
        ));
    }

    #[test]
    fn cancelled_token_stops_before_the_first_iteration() {
        let a = laplacian_2d(10);
        let b = vec![1.0; a.rows()];
        let token = CancelToken::new();
        token.cancel();
        let err = conjugate_gradient_cancellable(&a, &b, CgSettings::default(), Some(&token))
            .unwrap_err();
        assert_eq!(err, LinalgError::Cancelled { iterations: 0 });
    }

    #[test]
    fn live_token_is_bit_identical_to_the_plain_solver() {
        let a = laplacian_2d(12);
        let b: Vec<f64> = (0..a.rows()).map(|k| (k as f64 * 0.13).cos()).collect();
        let token = CancelToken::new();
        let plain = conjugate_gradient(&a, &b, CgSettings::default()).unwrap();
        let gated =
            conjugate_gradient_cancellable(&a, &b, CgSettings::default(), Some(&token)).unwrap();
        assert_eq!(plain.iterations, gated.iterations);
        assert_eq!(
            plain.x, gated.x,
            "cancellation polling must not change math"
        );
    }

    #[test]
    fn indefinite_matrix_detected_along_direction() {
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 1, 3.0),
                Triplet::new(1, 0, 3.0),
                Triplet::new(1, 1, 1.0),
            ],
        )
        .unwrap();
        // [1, -1] is the negative-curvature eigenvector (eigenvalue -2), so
        // the very first search direction exposes the indefiniteness.
        let err = conjugate_gradient(&a, &[1.0, -1.0], CgSettings::default()).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }
}
