//! Shared harness utilities for the experiment binaries and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! See `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured outcomes. Binaries:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I (Alpha + HC01–HC10) |
//! | `fig6_hkl` | Fig. 6, `h_kl(i)` curves |
//! | `fig7_deployment` | Fig. 7, floorplan + TEC deployment map |
//! | `validation` | Sec. VI compact-vs-reference model validation |
//! | `runaway` | the thermal-runaway demonstration |
//! | `conjecture` | Conjecture 1 randomized campaign |
//! | `device_level` | Sec. III.A device-level sanity (E8) |
//! | `ablations` | ablation studies A1–A3 |
//! | `theory` | executable Lemmas 1–3 / Theorems 1–3 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use std::time::Instant;
use tecopt::report::TableOneRow;
use tecopt::{
    full_cover, greedy_deploy, CoolingSystem, CurrentSettings, DeploySettings, OptError,
    PackageConfig, TecParams,
};
use tecopt_power::{HypotheticalChip, WorkloadModel};
use tecopt_units::{Amperes, Celsius, Watts};

/// The worst-case power margin the paper adds on top of the simulated
/// maxima ("added a 20% margin").
pub const POWER_MARGIN: f64 = 0.2;

/// The customary maximum allowable temperature ("the given limit of 85 ºC,
/// commonly used in practice").
pub const THETA_LIMIT: Celsius = Celsius(85.0);

/// Builds the 12×12 package used by every Table-I benchmark.
///
/// # Errors
///
/// Propagates configuration errors (none for the defaults).
pub fn paper_package() -> Result<PackageConfig, OptError> {
    Ok(PackageConfig::hotspot41_like(12, 12)?)
}

/// The TEC technology used throughout the experiments.
pub fn paper_tec() -> TecParams {
    TecParams::superlattice_thin_film()
}

/// Builds the Alpha-21364-like benchmark system (no TECs deployed).
///
/// # Errors
///
/// Propagates substrate errors.
pub fn alpha_system() -> Result<CoolingSystem, OptError> {
    let config = paper_package()?;
    let model = WorkloadModel::alpha_spec2000_like()
        .map_err(|e| OptError::InvalidParameter(e.to_string()))?;
    let envelope = model
        .worst_case_envelope(POWER_MARGIN)
        .map_err(|e| OptError::InvalidParameter(e.to_string()))?;
    let tile_powers = envelope
        .rasterize(config.grid())
        .map_err(|e| OptError::InvalidParameter(e.to_string()))?;
    CoolingSystem::without_devices(&config, paper_tec(), tile_powers)
}

/// Builds the HC01–HC10 benchmark systems (no TECs deployed).
///
/// # Errors
///
/// Propagates substrate errors.
pub fn hypothetical_systems() -> Result<Vec<(String, CoolingSystem)>, OptError> {
    let config = paper_package()?;
    HypotheticalChip::standard_suite()
        .into_iter()
        .map(|chip| {
            let sys = CoolingSystem::without_devices(&config, paper_tec(), chip.tile_powers())?;
            Ok((chip.name().to_string(), sys))
        })
        .collect()
}

/// Every Table-I benchmark in paper order: Alpha first, then HC01–HC10.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn all_benchmarks() -> Result<Vec<(String, CoolingSystem)>, OptError> {
    let mut out = vec![("Alpha".to_string(), alpha_system()?)];
    out.extend(hypothetical_systems()?);
    Ok(out)
}

/// Runs one benchmark through the paper's full pipeline (greedy deployment,
/// current optimization, full-cover baseline) and assembles a Table-I row.
///
/// As in the paper, if the greedy deployment fails at `limit`, the limit is
/// raised in 1 °C steps until it succeeds (the paper reports 89 °C for HC06
/// and 88 °C for HC09), and the row records the limit actually used.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table_row(
    name: &str,
    base: &CoolingSystem,
    limit: Celsius,
) -> Result<TableOneRow, OptError> {
    let start = Instant::now();
    let peak_no_tec = base.solve(Amperes(0.0))?.peak();
    let mut theta = limit;
    let mut outcome = greedy_deploy(base, DeploySettings::with_limit(theta))?;
    while !outcome.is_satisfied() && theta.value() < peak_no_tec.value() {
        theta = Celsius(theta.value() + 1.0);
        outcome = greedy_deploy(base, DeploySettings::with_limit(theta))?;
    }
    let deployment = outcome.deployment();
    let greedy_seconds = start.elapsed().as_secs_f64();
    let full = full_cover(base, CurrentSettings::default())?;
    Ok(TableOneRow {
        name: name.to_string(),
        peak_no_tec,
        theta_limit: theta,
        tec_count: deployment.device_count(),
        i_opt: deployment.optimum().current(),
        p_tec: deployment.optimum().state().tec_power(),
        greedy_peak: deployment.optimum().state().peak(),
        full_cover_peak: full.optimum().state().peak(),
        satisfied: outcome.is_satisfied(),
        runtime_seconds: greedy_seconds,
    })
}

/// Formats a sequence of `(x, column values)` records as CSV.
pub fn to_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Sum of a system's tile powers (convenience for harness printouts).
pub fn total_power(system: &CoolingSystem) -> Watts {
    system.total_chip_power()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_assemble() {
        let all = all_benchmarks().unwrap();
        assert_eq!(all.len(), 11);
        assert_eq!(all[0].0, "Alpha");
        assert_eq!(all[1].0, "HC01");
        // Total powers in the paper's ranges.
        let alpha_p = total_power(&all[0].1).value();
        assert!((19.0..22.0).contains(&alpha_p), "alpha total {alpha_p}");
        for (name, sys) in &all[1..] {
            let p = total_power(sys).value();
            assert!((15.0..=25.0).contains(&p), "{name} total {p}");
        }
    }

    #[test]
    fn csv_formatting() {
        let s = to_csv(&["i", "peak"], &[vec![0.0, 91.8], vec![1.0, 90.0]]);
        assert!(s.starts_with("i,peak\n0,91.8\n"));
    }
}
