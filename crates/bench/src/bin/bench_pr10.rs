//! PR-10 acceptance benchmark: crash-safe exploration overhead and
//! parallel speedup for `tecopt-explore` (DESIGN.md §18).
//!
//! A 10k-candidate design grid is swept with a synthetic evaluator whose
//! cost is a fixed deterministic FP spin (~100µs), standing in for the
//! golden-section solve chain so the harness measures the *engine*, not
//! the physics. Three scenarios:
//!
//! - **serial** — a plain sequential loop over the enumerated candidates
//!   calling the evaluator directly: the no-engine baseline.
//! - **clean ledger sweep** — `explore_with` against a fresh durable
//!   ledger, uninterrupted. Gate: **speedup over serial ≥
//!   min(0.85 × workers, 8)** — the 8× target of the acceptance
//!   criteria binds on machines with enough cores to reach it.
//! - **killed at half + resume** — the same sweep killed by an admission
//!   budget at ~50% completion, then resumed from the ledger. Gates:
//!   **total wall time ≤ 1.02× the clean sweep** (resume overhead ≤ 2%)
//!   and **zero duplicated evaluations** (exactly one evaluator call per
//!   candidate across both halves, counted at the closure).
//!
//! Every scenario's Pareto front must be bit-identical. Emits JSON on
//! stdout; the committed copy lives at `BENCH_PR10.json`.

#![warn(clippy::unwrap_used)]

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tecopt::{CoolingSystem, OptError, PackageConfig, RunContext, TecParams, TileIndex};
use tecopt_explore::{
    Candidate, CandidateEval, CandidateFailure, DesignSpace, ExploreReport, ExploreSettings,
    Explorer, ParetoPoint, Placement,
};
use tecopt_units::{Amperes, Celsius, Watts};

/// 100 thickness scales x 25 contact scales x 4 placements.
const CANDIDATES: usize = 10_000;
/// Admission budget for the killed run: the kill lands at ~50%.
const KILL_AT: usize = CANDIDATES / 2;
/// Deterministic FP spin per evaluation (a few hundred us of
/// engine-independent work), so ledger and scheduling costs are measured
/// against a realistic per-candidate solve cost.
const SPIN_ITERS: u64 = 60_000;
/// Timed repetitions per scenario; the fastest repetition is reported.
const REPS: usize = 2;
const MAX_RESUME_OVERHEAD: f64 = 1.02;
/// The acceptance target: 8x parallel speedup, binding at >= 8 workers.
const SPEEDUP_TARGET: f64 = 8.0;

fn space() -> Result<DesignSpace, String> {
    DesignSpace::new(
        (0..100).map(|i| 0.5 + f64::from(i) * 0.015).collect(),
        (0..25).map(|i| 0.8 + f64::from(i) * 0.02).collect(),
        (0..4)
            .map(|c| Placement::Tiles(vec![TileIndex::new(0, c)]))
            .collect(),
        Celsius(85.0),
    )
    .map_err(|e| format!("design space rejected: {e}"))
}

/// The synthetic evaluation: a fixed-cost spin whose result is a pure
/// function of the candidate id, so every run — serial, parallel, or
/// stitched across a kill — must produce the same bits.
fn evaluate(cand: &Candidate) -> CandidateEval {
    let mut acc = cand.id as f64 / u64::MAX as f64 + 1.5;
    for i in 0..SPIN_ITERS {
        acc = (acc * 1.000_000_11 + i as f64 * 1e-12).fract() + 1.0;
    }
    black_box(acc);
    let frac = |shift: u32| ((cand.id >> shift) & 0xffff) as f64 / 65536.0;
    let peak = 55.0 + 35.0 * frac(7);
    CandidateEval {
        feasible: peak <= 85.0,
        devices: 1 + (cand.id % 5) as usize,
        current: Amperes(0.4 + frac(17)),
        peak: Celsius(peak),
        tec_power: Watts(0.1 + 4.0 * frac(31)),
        evaluations: 12,
    }
}

fn counted_eval(
    calls: &AtomicUsize,
) -> impl Fn(&Candidate) -> Result<CandidateEval, CandidateFailure> + Sync + '_ {
    move |cand| {
        calls.fetch_add(1, Ordering::Relaxed);
        Ok(evaluate(cand))
    }
}

fn front_bits(front: &[ParetoPoint]) -> Vec<[u64; 3]> {
    front
        .iter()
        .map(|p| {
            [
                p.id(),
                p.peak().value().to_bits(),
                p.tec_power().value().to_bits(),
            ]
        })
        .collect()
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tecopt-bench-pr10-{}-{name}", std::process::id()))
}

fn interruption_ok(err: &OptError) -> bool {
    matches!(
        err,
        OptError::Cancelled { .. }
            | OptError::DeadlineExceeded { .. }
            | OptError::BudgetExhausted { .. }
    )
}

/// One clean ledger sweep against a fresh path. Returns the wall time
/// and the report.
fn clean_sweep(explorer: &Explorer, path: &PathBuf) -> Result<(Duration, ExploreReport), String> {
    let _ = std::fs::remove_file(path);
    let calls = AtomicUsize::new(0);
    let start = Instant::now();
    let report = explorer
        .explore_with(
            &RunContext::unbounded().checkpoint(path),
            counted_eval(&calls),
            |_| false,
        )
        .map_err(|e| format!("clean sweep failed: {e}"))?;
    let wall = start.elapsed();
    if calls.load(Ordering::Relaxed) != CANDIDATES {
        return Err(format!(
            "clean sweep made {} evaluator calls for {CANDIDATES} candidates",
            calls.load(Ordering::Relaxed)
        ));
    }
    Ok((wall, report))
}

/// Kill the sweep at ~50% with an admission budget, then resume from the
/// ledger. Returns total wall time across both halves, the final report,
/// and the total evaluator calls.
fn killed_sweep(
    explorer: &Explorer,
    path: &PathBuf,
) -> Result<(Duration, ExploreReport, usize), String> {
    let _ = std::fs::remove_file(path);
    let calls = AtomicUsize::new(0);
    let start = Instant::now();
    let killed = explorer.explore_with(
        &RunContext::unbounded()
            .probe_budget(KILL_AT)
            .checkpoint(path),
        counted_eval(&calls),
        |_| false,
    );
    match killed {
        Ok(_) => return Err("the admission budget never tripped".into()),
        Err(e) if interruption_ok(&e) => {}
        Err(e) => return Err(format!("killed half died with a non-interrupt: {e}")),
    }
    let report = explorer
        .explore_with(
            &RunContext::unbounded().checkpoint(path),
            counted_eval(&calls),
            |_| false,
        )
        .map_err(|e| format!("resume failed: {e}"))?;
    let wall = start.elapsed();
    if !report.resumed {
        return Err("the resumed sweep did not recover ledger state".into());
    }
    Ok((wall, report, calls.load(Ordering::Relaxed)))
}

/// The base package the space is bound to — the synthetic evaluator
/// never solves it, but the exploration identity (and so the ledger
/// fingerprint) digests it like any production sweep.
fn base_system() -> Result<CoolingSystem, String> {
    let config =
        PackageConfig::hotspot41_like(4, 4).map_err(|e| format!("package rejected: {e}"))?;
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[],
        vec![Watts(0.1); 16],
    )
    .map_err(|e| format!("system rejected: {e}"))
}

fn main() -> Result<(), String> {
    let space = space()?;
    if space.len() != CANDIDATES {
        return Err(format!(
            "grid is {} candidates, wanted {CANDIDATES}",
            space.len()
        ));
    }
    let explorer = Explorer::new(&base_system()?, space, ExploreSettings::default());
    let workers = tecopt::parallel::worker_count();

    // Baseline: a plain sequential loop, no engine, no ledger.
    let candidates = explorer.space().candidates();
    let mut serial = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for cand in &candidates {
            black_box(evaluate(cand));
        }
        serial = serial.min(start.elapsed());
    }

    // Clean ledger sweeps.
    let path = scratch("clean.ledger");
    let (mut clean, reference) = clean_sweep(&explorer, &path)?;
    for _ in 1..REPS {
        let (wall, report) = clean_sweep(&explorer, &path)?;
        if front_bits(&report.front) != front_bits(&reference.front) {
            return Err("clean repetitions disagree on the front".into());
        }
        clean = clean.min(wall);
    }
    let _ = std::fs::remove_file(&path);

    // Killed-at-half + resume sweeps.
    let path = scratch("killed.ledger");
    let mut killed = Duration::MAX;
    let mut duplicates = 0usize;
    for _ in 0..REPS {
        let (wall, report, calls) = killed_sweep(&explorer, &path)?;
        if front_bits(&report.front) != front_bits(&reference.front) {
            return Err("the stitched front is not bit-identical to the clean front".into());
        }
        killed = killed.min(wall);
        duplicates += calls.saturating_sub(CANDIDATES);
    }
    let _ = std::fs::remove_file(&path);

    let speedup = serial.as_secs_f64() / clean.as_secs_f64();
    let required_speedup = (0.85 * workers as f64).min(SPEEDUP_TARGET);
    let overhead = killed.as_secs_f64() / clean.as_secs_f64();

    eprintln!(
        "serial={}ms clean={}ms killed+resume={}ms workers={workers} \
         speedup={speedup:.2} (>= {required_speedup:.2}) overhead={overhead:.3} \
         duplicates={duplicates}",
        serial.as_millis(),
        clean.as_millis(),
        killed.as_millis(),
    );
    if duplicates != 0 {
        return Err(format!(
            "{duplicates} duplicated evaluations across the kill"
        ));
    }
    if overhead > MAX_RESUME_OVERHEAD {
        return Err(format!(
            "killed+resume wall time is {overhead:.3}x the clean sweep, above the \
             {MAX_RESUME_OVERHEAD}x gate"
        ));
    }
    if speedup < required_speedup {
        return Err(format!(
            "parallel speedup is {speedup:.2}x serial, below the {required_speedup:.2}x \
             gate for {workers} workers"
        ));
    }

    println!(
        "{{\n  \"bench\": \"bench_pr10\",\n  \"description\": \"10k-candidate design grid \
swept by tecopt-explore with a deterministic fixed-cost synthetic evaluator; serial is a plain \
sequential loop, clean is an uninterrupted explore_with against a fresh durable ledger, \
killed_resume is the same sweep killed by an admission budget at 50% and resumed from the \
ledger; fronts must be bit-identical across all scenarios\",\n  \
\"candidates\": {CANDIDATES},\n  \"spin_iters\": {SPIN_ITERS},\n  \
\"workers\": {workers},\n  \"serial_ms\": {},\n  \"clean_ledger_ms\": {},\n  \
\"killed_resume_ms\": {},\n  \"parallel_speedup\": {speedup:.3},\n  \
\"resume_overhead_ratio\": {overhead:.4},\n  \"duplicated_evaluations\": {duplicates},\n  \
\"front_points\": {},\n  \"targets\": {{ \"max_resume_overhead_ratio\": \
{MAX_RESUME_OVERHEAD}, \"min_speedup_this_machine\": {required_speedup:.2}, \
\"speedup_target_at_8_workers\": {SPEEDUP_TARGET} }}\n}}",
        serial.as_millis(),
        clean.as_millis(),
        killed.as_millis(),
        reference.front.len(),
    );
    Ok(())
}
