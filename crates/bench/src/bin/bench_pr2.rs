//! PR-2 acceptance benchmark: the seed solve path (fresh `G - iD` stamping
//! plus a dense Cholesky factorization for every probe) against the
//! reused-workspace backend path (assemble once, shift the diagonal in
//! place, sparse CG past the `Auto` floor, candidates evaluated in
//! parallel) on designer-style candidate sweeps at 8x8 .. 32x32 grids.
//!
//! The timed workload is the fixed-current probe sweep of a candidate
//! evaluation — the `O(n^3)`-per-probe hot loop PR 2 rewired — with the
//! `lambda_m` bisection deliberately excluded so both paths solve exactly
//! the same systems. Emits JSON on stdout; the committed copy lives at
//! `BENCH_PR2.json` and the table in `EXPERIMENTS.md` summarizes it.

#![warn(clippy::unwrap_used)]

use std::time::Instant;

use tecopt::parallel::{par_map_init, worker_count};
use tecopt::{CoolingSystem, OptError, PackageConfig, TecParams, TileIndex};
use tecopt_linalg::{Cholesky, SolverBackend};
use tecopt_units::{Amperes, Watts};

/// Probe currents for every candidate: spans the low-current regime and the
/// paper's optimum neighbourhood without crossing runaway on any grid.
const PROBE_CURRENTS: [f64; 3] = [0.5, 1.0, 2.0];

fn base_system(rows: usize, cols: usize) -> Result<CoolingSystem, OptError> {
    let config = PackageConfig::hotspot41_like(rows, cols)?;
    let mut powers = vec![Watts(0.05); rows * cols];
    powers[cols + 1] = Watts(0.6);
    powers[rows * cols / 2] = Watts(0.4);
    CoolingSystem::without_devices(&config, TecParams::superlattice_thin_film(), powers)
}

/// Designer-style candidate deployments: singles on the hotspot tiles plus
/// a couple of multi-TEC covers.
fn candidates(rows: usize, cols: usize) -> Vec<Vec<TileIndex>> {
    let center = TileIndex::new(rows / 2, cols / 2);
    vec![
        vec![TileIndex::new(1, 1)],
        vec![center],
        vec![TileIndex::new(rows - 2, cols - 2)],
        vec![TileIndex::new(1, 1), center],
    ]
}

/// The seed `CoolingSystem::solve` hot path before PR 2: every probe
/// restamps the dense system matrix and power vector from scratch and pays
/// a fresh `O(n^3)` Cholesky factorization.
fn seed_dense_sweep(base: &CoolingSystem, cands: &[Vec<TileIndex>]) -> Result<Vec<f64>, OptError> {
    let mut peaks = Vec::with_capacity(cands.len() * PROBE_CURRENTS.len());
    for tiles in cands {
        let sys = base.with_tiles(tiles)?;
        for &i in &PROBE_CURRENTS {
            let a = sys.stamped().system_matrix(Amperes(i))?;
            let p = sys.stamped().power_vector(sys.tile_powers(), Amperes(i))?;
            let theta = Cholesky::factor(&a)?.solve(&p)?;
            peaks.push(theta.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
    }
    Ok(peaks)
}

/// The PR-2 path: one workspace assembly per candidate, diagonal-shift
/// retargeting between probes, backend chosen by the `Auto` heuristic, and
/// candidates spread over worker threads exactly like the designer sweep.
fn cached_parallel_sweep(
    base: &CoolingSystem,
    cands: &[Vec<TileIndex>],
) -> Result<Vec<f64>, OptError> {
    let results: Vec<Result<Vec<f64>, OptError>> = par_map_init(
        cands.to_vec(),
        || (),
        |(), tiles| {
            let sys = base.with_tiles(&tiles)?;
            let mut solver = sys.solver()?;
            PROBE_CURRENTS
                .iter()
                .map(|&i| Ok(solver.solve(Amperes(i))?.peak().value()))
                .collect()
        },
    );
    let mut peaks = Vec::with_capacity(cands.len() * PROBE_CURRENTS.len());
    for r in results {
        peaks.extend(r?);
    }
    Ok(peaks)
}

/// Minimum wall-clock seconds over `reps` runs of `f`.
fn time_min<F: FnMut() -> Result<Vec<f64>, OptError>>(
    reps: usize,
    mut f: F,
) -> Result<(f64, Vec<f64>), OptError> {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        out = f()?;
        best = best.min(start.elapsed().as_secs_f64());
    }
    Ok((best, out))
}

/// Max relative node-temperature difference between a forced-dense and the
/// `Auto`-backend solve over every probe current on the first candidate.
fn dense_auto_agreement(base: &CoolingSystem, cands: &[Vec<TileIndex>]) -> Result<f64, OptError> {
    let auto = base.with_tiles(&cands[0])?;
    let dense = auto.clone().with_backend(SolverBackend::DenseCholesky);
    let mut worst: f64 = 0.0;
    for &i in &PROBE_CURRENTS {
        let a = auto.solve(Amperes(i))?;
        let d = dense.solve(Amperes(i))?;
        let scale = d
            .node_temperatures()
            .iter()
            .map(|t| t.value().abs())
            .fold(1.0, f64::max);
        for (x, y) in a.node_temperatures().iter().zip(d.node_temperatures()) {
            worst = worst.max((x.value() - y.value()).abs() / scale);
        }
    }
    Ok(worst)
}

fn run_grid(rows: usize, cols: usize, reps: usize) -> Result<String, OptError> {
    let base = base_system(rows, cols)?;
    let cands = candidates(rows, cols);
    let probe_count = cands.len() * PROBE_CURRENTS.len();
    let deployed = base.with_tiles(&cands[0])?;
    let n = deployed.stamped().model().node_count();
    let g = deployed.stamped().model().g_matrix();
    let nnz = g.as_slice().iter().filter(|&&v| v != 0.0).count();
    let method = format!("{:?}", deployed.solve(Amperes(1.0))?.solve_method());

    eprintln!("[{rows}x{cols}] n = {n}, nnz = {nnz}, auto backend = {method}");
    let (seed_s, seed_peaks) = time_min(reps, || seed_dense_sweep(&base, &cands))?;
    eprintln!("[{rows}x{cols}] seed dense sweep: {seed_s:.3} s");
    let (new_s, new_peaks) = time_min(reps, || cached_parallel_sweep(&base, &cands))?;
    eprintln!("[{rows}x{cols}] cached parallel sweep: {new_s:.3} s");
    assert_eq!(seed_peaks.len(), new_peaks.len());
    let agreement = dense_auto_agreement(&base, &cands)?;
    let speedup = seed_s / new_s;
    eprintln!("[{rows}x{cols}] speedup {speedup:.1}x, dense-vs-auto rel diff {agreement:.3e}");

    Ok(format!(
        "    {{\n      \"grid\": \"{rows}x{cols}\",\n      \"nodes\": {n},\n      \"nnz\": {nnz},\n      \"density\": {:.6},\n      \"auto_backend\": \"{method}\",\n      \"candidates\": {},\n      \"probes\": {probe_count},\n      \"seed_dense_seconds\": {seed_s:.6},\n      \"cached_parallel_seconds\": {new_s:.6},\n      \"speedup\": {speedup:.2},\n      \"max_rel_diff_dense_vs_auto\": {agreement:.3e}\n    }}",
        nnz as f64 / (n * n) as f64,
        cands.len(),
    ))
}

fn main() -> Result<(), OptError> {
    let threads = worker_count();
    let mut rows = Vec::new();
    for (r, c, reps) in [(8usize, 8usize, 5usize), (16, 16, 3), (32, 32, 1)] {
        rows.push(run_grid(r, c, reps)?);
    }
    println!(
        "{{\n  \"bench\": \"bench_pr2\",\n  \"description\": \"seed dense per-probe restamp+factor vs PR-2 cached-workspace backend path with parallel candidate evaluation; fixed probe currents {PROBE_CURRENTS:?}, lambda_m bisection excluded\",\n  \"worker_threads\": {threads},\n  \"grids\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    );
    Ok(())
}
