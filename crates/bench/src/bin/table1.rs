//! Regenerates **Table I** of the paper (experiment E2): the Alpha-21364-
//! like chip plus the ten hypothetical chips, each run through
//! `GreedyDeploy` + convex current setting, compared against the Full-Cover
//! baseline.
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin table1
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::report::render_table;
use tecopt_bench::{all_benchmarks, run_table_row, total_power, THETA_LIMIT};

fn main() {
    let benchmarks = all_benchmarks().expect("benchmark construction");
    let mut rows = Vec::new();
    for (name, base) in &benchmarks {
        let row = run_table_row(name, base, THETA_LIMIT).expect("table row");
        eprintln!(
            "{name}: total {:.1}, no-TEC peak {:.1}, greedy {} TECs @ {:.2} -> {:.1} (limit {:.0}), full cover {:.1}",
            total_power(base),
            row.peak_no_tec,
            row.tec_count,
            row.i_opt,
            row.greedy_peak,
            row.theta_limit,
            row.full_cover_peak,
        );
        rows.push(row);
    }
    println!("\nTABLE I — experimental results for the benchmarks\n");
    println!("{}", render_table(&rows));
}
