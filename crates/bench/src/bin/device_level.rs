//! Experiment E8: device-level sanity against Sec. III.A and the Chowdhury
//! measurements — per-device fluxes (Eqs. 1–3), COP, and the in-package
//! on-demand cooling swing of a single device on a hotspot tile (the paper
//! quotes 5.4–9.6 °C from Chowdhury et al.).
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin device_level
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::{optimize_current, CoolingSystem, CurrentSettings, TileIndex};
use tecopt_bench::{paper_package, paper_tec};
use tecopt_device::OperatingPoint;
use tecopt_units::{Amperes, Kelvin, Watts};

fn main() {
    let tec = paper_tec();
    println!(
        "device: alpha = {}, r = {}, kappa = {}",
        tec.seebeck(),
        tec.resistance(),
        tec.conductance()
    );
    println!(
        "contacts: g_c = {}, g_h = {}, footprint {:.1} mm side",
        tec.cold_contact(),
        tec.hot_contact(),
        tec.side().to_millimeters()
    );
    println!(
        "figure of merit ZT(350 K) = {:.2}\n",
        tec.figure_of_merit_zt(Kelvin(350.0))
    );

    println!("isolated-device table (theta_c = 350 K, theta_h = 360 K):");
    println!("i_amps,q_c_watts,q_h_watts,p_in_watts,cop");
    for i in [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0] {
        let op = OperatingPoint {
            current: Amperes(i),
            cold: Kelvin(350.0),
            hot: Kelvin(360.0),
        };
        let qc = tec.cold_side_flux(op);
        let qh = tec.hot_side_flux(op);
        let p = tec.input_power(op);
        match tec.cop(op) {
            Some(cop) => println!(
                "{i},{:.4},{:.4},{:.4},{:.3}",
                qc.value(),
                qh.value(),
                p.value(),
                cop
            ),
            None => println!("{i},{:.4},{:.4},{:.4},-", qc.value(), qh.value(), p.value()),
        }
    }

    // In-package on-demand swing of a single device over a hotspot tile.
    let config = paper_package().expect("package");
    let mut powers = vec![Watts(0.1); config.grid().tile_count()];
    let hot = TileIndex::new(6, 6);
    powers[config.grid().linear_index(hot)] = Watts(0.7);
    let system = CoolingSystem::new(&config, tec, &[hot], powers).expect("system");
    let uncooled = system.solve(Amperes(0.0)).expect("solve").peak();
    let opt = optimize_current(&system, CurrentSettings::default()).expect("optimize");
    let swing = uncooled - opt.state().peak();
    println!(
        "\nsingle-device in-package swing: {:.2} -> {:.2} at {:.2} (swing {:.2}; Chowdhury reports 5.4-9.6 K)",
        uncooled,
        opt.state().peak(),
        opt.current(),
        swing
    );
}
