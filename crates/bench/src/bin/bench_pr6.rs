//! PR-6 acceptance benchmark: transient playback throughput and the cost
//! of the safety envelope.
//!
//! Three measurements on the 4x4 hotspot41-like system, all driving the
//! guarded implicit stepper through `run_schedule_supervised` with a
//! constant-current policy (one factorization key, the cache's best case
//! and the refactor path's representative worst case):
//!
//! - **reuse** — factorization caching on (the default): one Cholesky
//!   factorization up front, two triangular solves per step after.
//! - **refactor** — caching off (`set_factorization_reuse(false)`), the
//!   dense equivalence oracle: a full refactorization every step. The
//!   reuse/refactor ratio is the headline speedup and must be ≥ 5x.
//! - **enveloped** — caching on, the same policy wrapped in a
//!   `SafetyEnvelope`. The per-step clamp is a handful of comparisons
//!   against a triangular solve; its overhead must stay ≤ 2%.
//!
//! Each configuration runs the same single-segment schedule and reports
//! the best of five repetitions (minimum wall time), so the ratios
//! compare systematic cost, not scheduler noise. The reuse and refactor
//! trajectories must agree bit-exactly — the oracle property the unit
//! suite pins — and the solve-site guard is armed throughout, so the
//! timings include its per-step check. Emits JSON on stdout; the
//! committed copy lives at `BENCH_PR6.json`.

#![warn(clippy::unwrap_used)]

use std::time::Instant;

use tecopt::transient::{ConstantCurrent, TecController, TransientSimulator, TransientTrace};
use tecopt::{
    runaway_limit, CoolingSystem, EnvelopeSettings, EnvelopedController, OptError, PackageConfig,
    RunContext, SafetyEnvelope, TecParams, TileIndex,
};
use tecopt_units::{Amperes, Watts};

const DT: f64 = 0.5;
const STEPS: usize = 20_000;
/// The refactor oracle is two orders of magnitude slower per step; a
/// shorter schedule keeps its wall time bounded without biasing the
/// steps/s ratio (both rates are normalized per step).
const REFACTOR_STEPS: usize = 1_000;
const REPS: usize = 5;

fn bench_system() -> Result<CoolingSystem, OptError> {
    let config = PackageConfig::hotspot41_like(4, 4)?;
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
}

fn schedule(steps: usize) -> Vec<(f64, Vec<Watts>)> {
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    vec![(steps as f64 * DT, powers)]
}

/// Best-of-`REPS` wall time (seconds) for one playback configuration;
/// also returns the last repetition's trace for equivalence checks.
/// One timed playback on a fresh simulator: `(wall seconds, trace)`.
fn time_once(
    system: &CoolingSystem,
    guard: Amperes,
    steps: usize,
    reuse: bool,
    controller: &mut (dyn TecController + Send),
) -> Result<(f64, TransientTrace), String> {
    let sched = schedule(steps);
    let ctx = RunContext::unbounded();
    let mut sim = TransientSimulator::new(system.clone(), DT)
        .map_err(|e| format!("simulator setup failed: {e}"))?;
    sim.set_guard(guard)
        .map_err(|e| format!("guard setup failed: {e}"))?;
    sim.set_factorization_reuse(reuse);
    let start = Instant::now();
    let trace = sim
        .run_schedule_supervised(&sched, controller, &ctx)
        .map_err(|f| format!("playback failed: {}", f.error))?;
    let elapsed = start.elapsed().as_secs_f64();
    if trace.samples().len() != steps {
        return Err(format!(
            "short trace: {} of {steps} steps",
            trace.samples().len()
        ));
    }
    Ok((elapsed, trace))
}

/// Best-of-`REPS` wall time for one configuration.
fn time_playback(
    system: &CoolingSystem,
    guard: Amperes,
    steps: usize,
    reuse: bool,
    controller: &mut (dyn TecController + Send),
) -> Result<(f64, TransientTrace), String> {
    let mut best = f64::INFINITY;
    let mut last = TransientTrace::default();
    for _ in 0..REPS {
        let (elapsed, trace) = time_once(system, guard, steps, reuse, controller)?;
        best = best.min(elapsed);
        last = trace;
    }
    Ok((best, last))
}

fn main() -> Result<(), String> {
    let system = bench_system().map_err(|e| format!("system setup failed: {e}"))?;
    let lambda = runaway_limit(&system, 1e-9)
        .map_err(|e| format!("runaway limit failed: {e}"))?
        .lambda();
    let safe = Amperes(lambda.value() * 0.4);

    // One untimed playback warms caches and clock scaling before the
    // timed measurements.
    time_once(&system, lambda, STEPS, true, &mut ConstantCurrent(safe))?;

    // The reuse-vs-envelope margin is sub-percent while the machine's
    // run-to-run noise is not, so the two configurations are timed as
    // back-to-back pairs (same thermal and scheduling conditions) and
    // each takes the minimum over its repetitions.
    let mut enveloped = EnvelopedController::new(
        ConstantCurrent(safe),
        SafetyEnvelope::new(lambda, EnvelopeSettings::default())
            .map_err(|e| format!("envelope setup failed: {e}"))?,
    );
    let mut reuse_s = f64::INFINITY;
    let mut envelope_s = f64::INFINITY;
    let mut reuse_trace = TransientTrace::default();
    let mut envelope_trace = TransientTrace::default();
    for _ in 0..REPS {
        let (t, trace) = time_once(&system, lambda, STEPS, true, &mut ConstantCurrent(safe))?;
        reuse_s = reuse_s.min(t);
        reuse_trace = trace;
        let (t, trace) = time_once(&system, lambda, STEPS, true, &mut enveloped)?;
        envelope_s = envelope_s.min(t);
        envelope_trace = trace;
    }

    let (refactor_s, refactor_trace) = time_playback(
        &system,
        lambda,
        REFACTOR_STEPS,
        false,
        &mut ConstantCurrent(safe),
    )?;

    // The cached path must be the oracle's trajectory, bit for bit, over
    // the oracle's (shorter) schedule prefix.
    for (a, b) in reuse_trace.samples().iter().zip(refactor_trace.samples()) {
        if a.peak.value().to_bits() != b.peak.value().to_bits() {
            return Err(format!(
                "reuse/refactor divergence at t={}: {:?} vs {:?}",
                a.time, a.peak, b.peak
            ));
        }
    }
    // A clean command stream passes through the envelope unchanged.
    if envelope_trace.samples() != reuse_trace.samples() {
        return Err("envelope perturbed a clean command stream".into());
    }

    let reuse_rate = STEPS as f64 / reuse_s;
    let refactor_rate = REFACTOR_STEPS as f64 / refactor_s;
    let speedup = reuse_rate / refactor_rate;
    let overhead_pct = (envelope_s / reuse_s - 1.0) * 100.0;

    eprintln!(
        "reuse={reuse_rate:.0} steps/s refactor={refactor_rate:.0} steps/s \
         speedup={speedup:.2}x envelope_overhead={overhead_pct:.3}%"
    );
    if speedup < 5.0 {
        return Err(format!(
            "factorization reuse speedup {speedup:.2}x is below the 5x target"
        ));
    }
    if overhead_pct > 2.0 {
        return Err(format!(
            "envelope overhead {overhead_pct:.3}% exceeds the 2% target"
        ));
    }

    println!(
        "{{\n  \"bench\": \"bench_pr6\",\n  \"description\": \"transient playback throughput on a 4x4 hotspot41-like system: implicit steps at dt={DT} s under a constant-current policy with the solve-site guard armed; reuse = factorization cache on ({STEPS} steps), refactor = dense per-step oracle ({REFACTOR_STEPS} steps, bit-identical trajectory enforced), enveloped = reuse plus the SafetyEnvelope clamp; steps/s from the best of {REPS} repetitions\",\n  \"steps\": {STEPS},\n  \"refactor_steps\": {REFACTOR_STEPS},\n  \"dt_seconds\": {DT},\n  \"steps_per_second\": {{ \"reuse\": {reuse_rate:.0}, \"refactor\": {refactor_rate:.0}, \"enveloped\": {:.0} }},\n  \"factorization_reuse_speedup\": {speedup:.2},\n  \"envelope_overhead_pct\": {overhead_pct:.3},\n  \"targets\": {{ \"min_speedup\": 5.0, \"max_envelope_overhead_pct\": 2.0 }}\n}}",
        STEPS as f64 / envelope_s,
    );
    Ok(())
}
