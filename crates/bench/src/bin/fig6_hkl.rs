//! Regenerates **Figure 6** of the paper (experiment E3): `h_kl(i)` as a
//! function of the supply current — nonnegative, convex, diverging to `+∞`
//! as `i → λ_m⁻`.
//!
//! Emits a CSV with one row per sampled current and one column per tracked
//! `(k, l)` entry: the hotspot silicon node's response to heat injected at
//! its own TEC's cold and hot junctions, plus the junction self-responses.
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin fig6_hkl
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::{greedy_deploy, h_column, runaway_limit, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};
use tecopt_units::Amperes;

fn main() {
    let base = alpha_system().expect("alpha system");
    let outcome =
        greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy deploy");
    let system = outcome.deployment().system().clone();
    assert!(system.device_count() > 0, "deployment has devices");
    let lim = runaway_limit(&system, 1e-11).expect("runaway limit");
    let lam = lim.feasible().value();
    eprintln!(
        "lambda_m = {:.3} A ({} Cholesky probes)",
        lim.lambda().value(),
        lim.probes()
    );

    // Track the hotspot tile's row of H against its own device's junctions.
    let state0 = system.solve(Amperes(0.0)).expect("solve at 0 A");
    let (k_hot_tile, _) = state0
        .silicon_temperatures()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
        .expect("tiles");
    let k_node = system.stamped().model().silicon_nodes()[k_hot_tile].index();
    let (cold, hot) = system.stamped().junctions()[0];

    println!("i_amps,i_over_lambda,h_k_cold,h_k_hot,h_cold_cold,h_hot_hot");
    for step in 0..=40 {
        let f = match step {
            0..=35 => step as f64 / 36.0,
            36 => 0.985,
            37 => 0.992,
            38 => 0.996,
            39 => 0.998,
            _ => 0.999,
        };
        let i = Amperes(lam * f);
        let hc = h_column(&system, i, cold).expect("h column (cold)");
        let hh = h_column(&system, i, hot).expect("h column (hot)");
        println!(
            "{:.4},{:.4},{:.6e},{:.6e},{:.6e},{:.6e}",
            i.value(),
            f,
            hc[k_node],
            hh[k_node],
            hc[cold],
            hh[hot]
        );
    }
}
