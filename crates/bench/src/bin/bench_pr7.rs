//! PR-7 acceptance benchmark: greedy deployment through rank-k
//! factorization updates versus the PR-2 refactor-per-probe baseline.
//!
//! The measured workload is a full `greedy_deploy` on a 32x32
//! hotspot41-like package (≈2.3k thermal nodes) with
//! `FactorStrategy::RankKUpdate`: each placement evaluation performs one
//! dense `i = 0` Cholesky factorization, then answers every `λ_m` probe
//! with an O(k³) Haynsworth inertia certificate and every line-search
//! solve with a rank-k Sherman–Morrison–Woodbury correction.
//!
//! The baseline is the PR-2 path — a fresh dense factorization per probe.
//! Running it in full at this size takes minutes, so (as with the
//! `bench_pr6` refactor oracle) it is measured as a reduced slice: a few
//! real dense probe solves are wall-clocked, normalized per probe, and
//! multiplied by the exact probe count the refactor path would spend —
//! the per-placement `λ_m` bisection probes plus line-search evaluations,
//! re-counted with the fast optimizer on every greedy placement (both
//! strategies follow the same bracket and golden-section schedules).
//!
//! Two acceptance gates are enforced in-binary:
//!
//! - **speedup ≥ 5x** — fast greedy wall time versus the normalized
//!   refactor baseline;
//! - **peak drift ≤ 1e-8 °C** — every accepted greedy iteration is
//!   re-solved from scratch (fresh assembly, fresh dense factorization)
//!   at the *same* tiles and current, and the peaks must agree.
//!
//! Emits JSON on stdout; the committed copy lives at `BENCH_PR7.json`.

#![warn(clippy::unwrap_used)]

use std::collections::BTreeSet;
use std::time::Instant;

use tecopt::{
    greedy_deploy, optimize_current_with, runaway_limit, CoolingSystem, CurrentSettings,
    DeploySettings, FactorStrategy, OptError, PackageConfig, TecParams, TileIndex,
};
use tecopt_linalg::SolverBackend;
use tecopt_units::{Amperes, Celsius, Watts};

const GRID: usize = 32;
/// Dense probe solves wall-clocked for the per-probe baseline cost.
const BASELINE_PROBES: usize = 3;
/// Timed repetitions of the fast greedy deployment (best wall time wins).
const REPS: usize = 2;
const MIN_SPEEDUP: f64 = 5.0;
const MAX_PEAK_DRIFT: f64 = 1e-8;

fn bench_system() -> Result<CoolingSystem, OptError> {
    let config = PackageConfig::hotspot41_like(GRID, GRID)?;
    let mut powers = vec![Watts(0.05); GRID * GRID];
    // A few strong hotspots so the greedy loop deploys a handful of
    // devices instead of one or none.
    powers[8 * GRID + 8] = Watts(0.7);
    powers[20 * GRID + 20] = Watts(0.65);
    powers[10 * GRID + 22] = Watts(0.6);
    // The comparison under measurement is dense rank-k updates versus
    // dense refactorization (the PR-2 path); at this size Auto would
    // route both to the sparse CG backend and measure neither.
    CoolingSystem::without_devices(&config, TecParams::superlattice_thin_film(), powers)
        .map(|s| s.with_backend(SolverBackend::DenseCholesky))
}

fn main() -> Result<(), String> {
    let base = bench_system().map_err(|e| format!("system setup failed: {e}"))?;
    let passive_peak = base
        .solve(Amperes(0.0))
        .map_err(|e| format!("passive solve failed: {e}"))?
        .peak();
    let limit = Celsius(passive_peak.value() - 1.0);
    let settings = DeploySettings::with_limit(limit).with_strategy(FactorStrategy::RankKUpdate);

    // One untimed deployment warms allocator and clock scaling.
    greedy_deploy(&base, settings).map_err(|e| format!("warm-up deploy failed: {e}"))?;

    let mut fast_s = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let out = greedy_deploy(&base, settings).map_err(|e| format!("fast deploy failed: {e}"))?;
        fast_s = fast_s.min(start.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    let outcome = outcome.ok_or("no timed repetition ran")?;
    if !outcome.is_satisfied() {
        return Err(format!(
            "the {limit:?} limit should be achievable at this size"
        ));
    }
    let deployment = outcome.deployment();
    let iterations = deployment.iterations();
    if iterations.is_empty() {
        return Err("the workload must require at least one deployment iteration".into());
    }

    // Equivalence oracle: re-solve every accepted iteration from scratch
    // at matched tiles and current; fresh assembly, fresh factorization.
    let mut covered: BTreeSet<TileIndex> = BTreeSet::new();
    let mut max_drift = 0.0_f64;
    let mut placements: Vec<Vec<TileIndex>> = Vec::with_capacity(iterations.len());
    for it in iterations {
        covered.extend(it.added.iter().copied());
        let tiles: Vec<TileIndex> = covered.iter().copied().collect();
        let fresh = base
            .with_tiles(&tiles)
            .and_then(|s| s.solve(it.current))
            .map_err(|e| format!("oracle re-solve failed: {e}"))?;
        let drift = (fresh.peak().value() - it.peak.value()).abs();
        max_drift = max_drift.max(drift);
        if drift > MAX_PEAK_DRIFT {
            return Err(format!(
                "update/refactor peak drift {drift:.3e} °C at {} tiles exceeds {MAX_PEAK_DRIFT:.0e}",
                tiles.len()
            ));
        }
        placements.push(tiles);
    }

    // Probe ledger: what the refactor path would spend. Both strategies
    // run the same λ-bisection bracket policy and golden-section schedule,
    // so the fast optimizer's counters are the refactor path's dense
    // factorization count.
    let mut dense_probes = 0usize;
    for tiles in &placements {
        let system = base
            .with_tiles(tiles)
            .map_err(|e| format!("placement rebuild failed: {e}"))?;
        let opt = optimize_current_with(
            &system,
            CurrentSettings::default(),
            FactorStrategy::RankKUpdate,
        )
        .map_err(|e| format!("probe-count run failed: {e}"))?;
        dense_probes += opt.probes() + opt.evaluations();
    }

    // Per-probe dense cost: real from-scratch probe solves on the final
    // placement at distinct feasible currents (distinct keys defeat the
    // factorization cache, so each solve pays a full dense Cholesky).
    let final_system = base
        .with_tiles(placements.last().ok_or("no placements")?)
        .map_err(|e| format!("final rebuild failed: {e}"))?;
    let lim =
        runaway_limit(&final_system, 1e-9).map_err(|e| format!("runaway limit failed: {e}"))?;
    let feasible = lim.feasible().value();
    let start = Instant::now();
    for p in 0..BASELINE_PROBES {
        let i = Amperes(feasible * (0.3 + 0.2 * p as f64));
        final_system
            .solve(i)
            .map_err(|e| format!("baseline probe solve failed: {e}"))?;
    }
    let per_probe_s = start.elapsed().as_secs_f64() / BASELINE_PROBES as f64;
    let baseline_s = per_probe_s * dense_probes as f64;
    let speedup = baseline_s / fast_s;

    eprintln!(
        "grid={GRID}x{GRID} devices={} iterations={} fast={fast_s:.2}s \
         baseline={baseline_s:.1}s ({dense_probes} probes x {per_probe_s:.3}s) \
         speedup={speedup:.1}x max_drift={max_drift:.2e}",
        deployment.device_count(),
        iterations.len(),
    );
    if speedup < MIN_SPEEDUP {
        return Err(format!(
            "rank-k update speedup {speedup:.2}x is below the {MIN_SPEEDUP}x target"
        ));
    }

    println!(
        "{{\n  \"bench\": \"bench_pr7\",\n  \"description\": \"greedy TEC deployment on a {GRID}x{GRID} hotspot41-like package: FactorStrategy::RankKUpdate answers line-search solves with rank-k SMW corrections of one cached i=0 Cholesky factor and lambda probes with O(k^3) inertia certificates; baseline = the PR-2 refactor-per-probe path, measured as {BASELINE_PROBES} real dense probe solves normalized per probe times the exact probe ledger; every accepted iteration re-solved from scratch at matched tiles and current must agree on the peak\",\n  \"grid\": {GRID},\n  \"devices\": {},\n  \"iterations\": {},\n  \"fast_deploy_seconds\": {fast_s:.3},\n  \"baseline_probe_count\": {dense_probes},\n  \"baseline_seconds_per_probe\": {per_probe_s:.4},\n  \"baseline_seconds\": {baseline_s:.2},\n  \"speedup\": {speedup:.2},\n  \"max_peak_drift_celsius\": {max_drift:.3e},\n  \"targets\": {{ \"min_speedup\": {MIN_SPEEDUP}, \"max_peak_drift_celsius\": {MAX_PEAK_DRIFT:.0e} }}\n}}",
        deployment.device_count(),
        iterations.len(),
    );
    Ok(())
}
