//! Experiment E1: validation of the compact thermal model against the
//! fine-grid reference solver (the paper validated against HotSpot 4.1
//! "for a given floorplan and a set of power traces" and reported a
//! worst-case tile difference below 1.5 °C).
//!
//! Two comparisons are run:
//!
//! 1. the per-benchmark power *traces* of the SPEC2000-like suite — the
//!    direct analogue of the paper's validation, and
//! 2. the worst-case *envelope* the optimizer actually designs for, where
//!    the single-tile 282 W/cm² IntReg hotspot sits at the resolution limit
//!    of the 0.5 mm tiling: the compact model is a few degrees
//!    *conservative* (hotter) there, which is the safe direction for a
//!    design tool.
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin validation
//! ```

#![warn(clippy::unwrap_used)]

use tecopt_bench::alpha_system;
use tecopt_power::WorkloadModel;
use tecopt_thermal::refined::{ReferenceModel, RefinementSettings};
use tecopt_thermal::CompactModel;
use tecopt_units::{Amperes, Watts};

fn compare(
    label: &str,
    compact: &CompactModel,
    reference: &ReferenceModel,
    powers: &[Watts],
) -> (f64, f64) {
    let temps = compact.solve_passive(powers).expect("compact solve");
    let compact_tiles = compact.silicon_temperatures(&temps);
    let solution = reference.solve(powers).expect("reference solve");
    let mut worst: f64 = 0.0;
    let mut mean = 0.0;
    let mut signed_at_worst = 0.0;
    for (c, r) in compact_tiles.iter().zip(solution.tile_temperatures()) {
        let d = (c.value() - r.value()).abs();
        if d > worst {
            worst = d;
            signed_at_worst = c.value() - r.value();
        }
        mean += d;
    }
    mean /= compact_tiles.len() as f64;
    println!(
        "{label:<28} worst {worst:5.2} degC ({}), mean {mean:4.2} degC",
        if signed_at_worst >= 0.0 {
            "compact conservative"
        } else {
            "compact optimistic"
        }
    );
    (worst, mean)
}

fn main() {
    let base = alpha_system().expect("alpha system");
    let config = base.config().clone();
    let compact = CompactModel::new(&config).expect("compact model");
    let reference =
        ReferenceModel::new(&config, RefinementSettings::default()).expect("reference model");
    println!(
        "reference discretization: {} cells, {} sublayers\n",
        reference.cell_count(),
        reference.sublayer_count()
    );

    // 1. Per-benchmark power traces (the paper's validation methodology).
    println!("per-benchmark traces (paper criterion: worst-case < 1.5 degC):");
    let model = WorkloadModel::alpha_spec2000_like().expect("workload");
    let mut trace_worst: f64 = 0.0;
    for name in model.benchmark_names() {
        let profile = model.benchmark_profile(name).expect("profile");
        let powers = profile.rasterize(config.grid()).expect("rasterize");
        let (w, _) = compare(name, &compact, &reference, &powers);
        trace_worst = trace_worst.max(w);
    }
    println!(
        "=> worst over all traces: {trace_worst:.2} degC{}\n",
        if trace_worst < 1.5 {
            " (within the paper's 1.5 degC criterion)"
        } else {
            " (integer-heavy traces put 282 W/cm2 on a single tile; the\n   excess over 1.5 degC is confined to that tile and is conservative)"
        }
    );

    // 2. The worst-case envelope (the optimizer's input).
    println!("worst-case envelope (282 W/cm2 single-tile hotspot):");
    let powers = base.tile_powers().to_vec();
    compare("envelope", &compact, &reference, &powers);
    let state = base.solve(Amperes(0.0)).expect("solve");
    println!(
        "compact peak {:.2} degC — the discrepancy is concentrated at the IntReg tile and is\nconservative (compact hotter), see EXPERIMENTS.md (E1).",
        state.peak().value()
    );
}
