//! Regenerates **Figure 7** of the paper (experiment E4): (a) the
//! Alpha-21364-like floorplan and (b) the 12×12 tiling with the tiles
//! selected by `GreedyDeploy` shaded.
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin fig7_deployment
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::report::{deployment_map, temperature_map};
use tecopt::{greedy_deploy, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};
use tecopt_power::alpha21364_like;
use tecopt_units::{Amperes, Celsius};

fn main() {
    // (a) The floorplan, one letter per tile (row 11 printed on top).
    let plan = alpha21364_like().expect("floorplan");
    let tile = 0.5e-3;
    println!("Figure 7(a): Alpha-21364-like floorplan (one letter per 0.5 mm tile)\n");
    let mut legend: Vec<(char, String)> = Vec::new();
    for (idx, unit) in plan.units().iter().enumerate() {
        let c = (b'A' + idx as u8) as char;
        legend.push((c, unit.name().to_string()));
    }
    for row in (0..12).rev() {
        let y = (row as f64 + 0.5) * tile;
        let mut line = String::new();
        for col in 0..12 {
            let x = (col as f64 + 0.5) * tile;
            let idx = plan
                .units()
                .iter()
                .position(|u| {
                    let r = u.rect();
                    x > r.x0 && x < r.x1 && y > r.y0 && y < r.y1
                })
                .expect("floorplan covers the die");
            line.push((b'A' + idx as u8) as char);
            line.push(' ');
        }
        println!("{line}");
    }
    println!();
    for (c, name) in &legend {
        println!("  {c} = {name}");
    }

    // (b) The greedy TEC deployment.
    let base = alpha_system().expect("alpha system");
    let outcome =
        greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy deploy");
    let d = outcome.deployment();
    println!(
        "\nFigure 7(b): tiles covered by TEC devices ({} devices, I_opt = {:.2}, peak {:.1})\n",
        d.device_count(),
        d.optimum().current(),
        d.optimum().state().peak(),
    );
    print!("{}", deployment_map(base.config().grid(), d.tiles()));

    println!("\nUncooled temperature map (°C):\n");
    let state0 = base.solve(Amperes(0.0)).expect("solve");
    let temps: Vec<Celsius> = state0.silicon_temperatures().to_vec();
    print!("{}", temperature_map(base.config().grid(), &temps));
}
