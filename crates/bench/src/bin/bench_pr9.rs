//! PR-9 acceptance benchmark: fleet failover and hedging latency for the
//! `tecopt-serve` router (DESIGN.md §17).
//!
//! Three scenarios run against a 3-shard in-process fleet whose
//! evaluator answers steady solves after a fixed service delay:
//!
//! - **healthy_fleet** — every shard up; per-request wall latency
//!   through `Router::submit` gives the healthy p99 baseline.
//! - **one_shard_down** — one shard refuses every call (connection
//!   refused at the handle, as a crashed process would); keys whose
//!   primary replica is the dead shard pay one typed refusal plus one
//!   capped jittered backoff before the next replica answers. Gate:
//!   **failover p99 ≤ 5× healthy p99**, and every request completes.
//! - **tail_hedging** — one shard is healthy but 20× slower; the same
//!   keyed workload runs unhedged and then hedged (fixed-floor hedge
//!   delay). Gate: **hedged p99 ≤ 0.75× unhedged p99**.
//!
//! Emits JSON on stdout; the committed copy lives at `BENCH_PR9.json`.

#![warn(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use tecopt::{CancelToken, OptError, RunContext};
use tecopt_serve::{
    Engine, EngineConfig, Evaluator, HealthPolicy, HedgePolicy, LocalShard, ReplEntry, Request,
    RequestFrame, Response, Router, RouterConfig, ServeError, ShardHandle,
};
use tecopt_units::{Amperes, Celsius, Watts};

/// Requests per scenario. p99 at this count is the 2nd-slowest request,
/// so a single scheduler hiccup cannot carry the verdict alone.
const REQUESTS: usize = 150;
/// Service delay of a healthy shard's evaluator.
const SERVICE_DELAY: Duration = Duration::from_millis(2);
/// Service delay of the straggler shard in the hedging scenario.
const SLOW_DELAY: Duration = Duration::from_millis(40);
/// Fixed hedge delay (floor path: `min_observations` is never reached).
const HEDGE_FLOOR: Duration = Duration::from_millis(5);
const MAX_FAILOVER_RATIO: f64 = 5.0;
const MAX_HEDGED_RATIO: f64 = 0.75;

/// Blocks the calling thread for `d` without touching `std::thread`
/// (banned outside the sanctioned parallel module).
fn pause(d: Duration) {
    let gate = (Mutex::new(()), Condvar::new());
    let guard = gate.0.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = gate.1.wait_timeout(guard, d);
}

/// Answers steady requests after a fixed service delay.
struct DelayEval {
    delay: Duration,
}

impl Evaluator for DelayEval {
    fn evaluate(&self, request: &Request, _ctx: &RunContext) -> Result<Response, OptError> {
        pause(self.delay);
        match request {
            Request::Steady { current } => Ok(Response::Steady {
                peak: Celsius(current.value() * 10.0),
                tec_power: Watts(current.value()),
            }),
            _ => Err(OptError::InvalidParameter(
                "bench evaluator only answers steady requests".into(),
            )),
        }
    }
}

/// A shard handle with a breaker: once tripped, every call returns the
/// typed refusal a crashed peer would produce.
struct Breakable {
    inner: LocalShard<DelayEval>,
    dead: AtomicBool,
}

impl Breakable {
    fn refusal(&self, op: &str) -> ServeError {
        ServeError::Disconnected {
            detail: format!("{op} to {}: connection refused (bench breaker)", self.id()),
        }
    }
}

impl ShardHandle for Breakable {
    fn id(&self) -> &str {
        self.inner.id()
    }

    fn submit(&self, frame: &RequestFrame, cancel: &CancelToken) -> Result<Response, ServeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.refusal("submit"));
        }
        self.inner.submit(frame, cancel)
    }

    fn ping(&self, timeout: Duration) -> Result<(), ServeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.refusal("ping"));
        }
        self.inner.ping(timeout)
    }

    fn replicate(&self, entry: &ReplEntry) -> Result<(), ServeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.refusal("replicate"));
        }
        self.inner.replicate(entry)
    }
}

/// One fleet: three single-worker engine shards behind a router.
struct Fleet {
    engines: Vec<Arc<Engine<DelayEval>>>,
    shards: Vec<Arc<Breakable>>,
    router: Router,
}

fn build_fleet(delays: &[Duration], hedge: Option<HedgePolicy>) -> Fleet {
    let engines: Vec<Arc<Engine<DelayEval>>> = delays
        .iter()
        .map(|&delay| Arc::new(Engine::new(DelayEval { delay }, EngineConfig::default())))
        .collect();
    let shards: Vec<Arc<Breakable>> = engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            Arc::new(Breakable {
                inner: LocalShard::new(format!("shard-{i}"), Arc::clone(engine))
                    .with_poll_interval(Duration::from_millis(1)),
                dead: AtomicBool::new(false),
            })
        })
        .collect();
    let router = Router::new(
        shards
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ShardHandle>)
            .collect(),
        RouterConfig {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            health: HealthPolicy::default(),
            hedge,
            ..RouterConfig::default()
        },
    );
    Fleet {
        engines,
        shards,
        router,
    }
}

/// Runs `drive` against the fleet with one evaluation worker per shard,
/// then drains. Returns the per-request latencies in microseconds.
fn run_fleet(fleet: &Fleet, key_prefix: &str) -> Result<Vec<u64>, String> {
    let result: Mutex<Option<Result<Vec<u64>, String>>> = Mutex::new(None);
    let workers = fleet.engines.len();
    tecopt::parallel::service_workers(workers + 1, |w| {
        if w < workers {
            fleet.engines[w].worker_loop(0);
        } else {
            let out = submit_all(&fleet.router, key_prefix);
            *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            for engine in &fleet.engines {
                engine.begin_drain();
            }
        }
    });
    let out = result.lock().unwrap_or_else(PoisonError::into_inner).take();
    out.ok_or_else(|| "driver thread produced no result".to_string())?
}

fn submit_all(router: &Router, key_prefix: &str) -> Result<Vec<u64>, String> {
    let cancel = CancelToken::new();
    let mut micros = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let frame = RequestFrame {
            key: Some(format!("{key_prefix}-{i}")),
            deadline_ms: None,
            request: Request::Steady {
                current: Amperes(0.5 + i as f64 * 0.001),
            },
        };
        let start = Instant::now();
        router
            .submit(frame, &cancel)
            .map_err(|e| format!("{key_prefix} request {i} failed: {e}"))?;
        let elapsed = start.elapsed().as_micros();
        micros.push(u64::try_from(elapsed).unwrap_or(u64::MAX));
    }
    Ok(micros)
}

/// Nearest-rank p99 over integer microseconds (no float comparisons).
fn p99_micros(samples: &[u64]) -> Result<u64, String> {
    if samples.is_empty() {
        return Err("no latency samples".into());
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() * 99).div_ceil(100).max(1);
    sorted
        .get(rank - 1)
        .copied()
        .ok_or_else(|| "p99 rank out of range".to_string())
}

fn main() -> Result<(), String> {
    let healthy_delays = [SERVICE_DELAY; 3];

    // Scenario 1: every shard healthy.
    let fleet = build_fleet(&healthy_delays, None);
    let healthy = run_fleet(&fleet, "healthy")?;
    let healthy_p99 = p99_micros(&healthy)?;

    // Scenario 2: one shard refuses everything; same workload size, all
    // requests must still complete, through failover where needed.
    let fleet = build_fleet(&healthy_delays, None);
    fleet.shards[0].dead.store(true, Ordering::SeqCst);
    let degraded = run_fleet(&fleet, "one-down")?;
    let failover_p99 = p99_micros(&degraded)?;
    let failovers = fleet.router.metrics().failovers;
    if failovers == 0 {
        return Err("the dead shard was never a primary; workload too small".into());
    }
    let failover_ratio = failover_p99 as f64 / healthy_p99 as f64;

    // Scenario 3: a 20x straggler, unhedged then hedged.
    let slow_delays = [SLOW_DELAY, SERVICE_DELAY, SERVICE_DELAY];
    let fleet = build_fleet(&slow_delays, None);
    let unhedged = run_fleet(&fleet, "unhedged")?;
    let unhedged_p99 = p99_micros(&unhedged)?;

    let fleet = build_fleet(
        &slow_delays,
        Some(HedgePolicy {
            floor: HEDGE_FLOOR,
            p99_factor: 1.5,
            min_observations: usize::MAX,
        }),
    );
    let hedged = run_fleet(&fleet, "hedged")?;
    let hedged_p99 = p99_micros(&hedged)?;
    let hedges = fleet.router.metrics();
    if hedges.hedges_won == 0 {
        return Err("no hedge ever won; the straggler was never covered".into());
    }
    let hedged_ratio = hedged_p99 as f64 / unhedged_p99 as f64;

    eprintln!(
        "healthy_p99={healthy_p99}us failover_p99={failover_p99}us \
         (ratio {failover_ratio:.2}, {failovers} failovers) \
         unhedged_p99={unhedged_p99}us hedged_p99={hedged_p99}us \
         (ratio {hedged_ratio:.2}, {} hedges launched, {} won)",
        hedges.hedges_launched, hedges.hedges_won,
    );
    if failover_ratio > MAX_FAILOVER_RATIO {
        return Err(format!(
            "failover p99 is {failover_ratio:.2}x healthy p99, above the \
             {MAX_FAILOVER_RATIO}x gate"
        ));
    }
    if hedged_ratio > MAX_HEDGED_RATIO {
        return Err(format!(
            "hedged p99 is {hedged_ratio:.2}x unhedged p99, above the \
             {MAX_HEDGED_RATIO}x gate"
        ));
    }

    println!(
        "{{\n  \"bench\": \"bench_pr9\",\n  \"description\": \"3-shard in-process fleet behind the tecopt-serve Router; steady requests with a {}ms service delay; one_shard_down refuses every call at one shard so its keys fail over with capped jittered backoff; tail_hedging adds a {}ms straggler shard and compares unhedged vs fixed-{}ms-floor hedged p99\",\n  \"requests_per_scenario\": {REQUESTS},\n  \"healthy_p99_us\": {healthy_p99},\n  \"failover_p99_us\": {failover_p99},\n  \"failover_p99_ratio\": {failover_ratio:.3},\n  \"failovers\": {failovers},\n  \"unhedged_p99_us\": {unhedged_p99},\n  \"hedged_p99_us\": {hedged_p99},\n  \"hedged_p99_ratio\": {hedged_ratio:.3},\n  \"hedges_launched\": {},\n  \"hedges_won\": {},\n  \"targets\": {{ \"max_failover_p99_ratio\": {MAX_FAILOVER_RATIO}, \"max_hedged_p99_ratio\": {MAX_HEDGED_RATIO} }}\n}}",
        SERVICE_DELAY.as_millis(),
        SLOW_DELAY.as_millis(),
        HEDGE_FLOOR.as_millis(),
        hedges.hedges_launched,
        hedges.hedges_won,
    );
    Ok(())
}
