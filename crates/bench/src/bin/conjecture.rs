//! Experiment E6: randomized verification of Conjecture 1. The paper
//! "randomly generated millions of positive definite Stieltjes matrices and
//! verified this property in all cases"; this harness runs a seeded,
//! size-stratified campaign (pass a larger per-dimension count as the first
//! argument to approach the paper's scale).
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin conjecture [matrices_per_dim]
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::conjecture::randomized_campaign;

fn main() {
    let per_dim: usize = match std::env::args().nth(1) {
        None => 200,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("error: matrix count must be a non-negative integer, got {s:?}");
            std::process::exit(2);
        }),
    };
    let dims = [2usize, 3, 4, 6, 8, 12, 16, 24, 32];
    let mut total_matrices = 0usize;
    let mut total_pairs = 0usize;
    for (k, &dim) in dims.iter().enumerate() {
        let report = randomized_campaign(1000 + k as u64, per_dim, dim).expect("campaign");
        total_matrices += report.matrices;
        total_pairs += report.pairs;
        match &report.counterexample {
            None => println!(
                "dim {dim:>2}: {} matrices, {} (k,l) pairs — conjecture holds",
                report.matrices, report.pairs
            ),
            Some((idx, verdict)) => {
                println!("dim {dim:>2}: COUNTEREXAMPLE at matrix {idx}: {verdict:?}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "\ntotal: {total_matrices} matrices, {total_pairs} pairs examined, zero counterexamples"
    );
}
