//! PR-5 acceptance benchmark: end-to-end latency and load-shedding
//! behavior of the `tecopt-serve` evaluation service over TCP loopback.
//!
//! Two fixed load scripts against a live server on an ephemeral port:
//!
//! - **nominal** — capacity matched to load (queue 64, 2 evaluation
//!   workers, 4 clients x 40 steady solves). Every request must succeed;
//!   the p50/p99 report the service stack's end-to-end latency floor.
//! - **overload** — capacity deliberately starved (queue 2, 1 evaluation
//!   worker, 8 clients x 16 steady solves, no retries). The bounded
//!   admission queue must shed the excess with typed `overloaded`
//!   refusals; shed p99 demonstrates that refusal is immediate (an
//!   admission-time check), not a disguised timeout.
//!
//! Everything runs on the `tecopt::parallel::service_workers` pool — the
//! server on one worker, one client per remaining worker — so the bench
//! stays inside the workspace's sanctioned threading surface. Emits JSON
//! on stdout; the committed copy lives at `BENCH_PR5.json`.

#![warn(clippy::unwrap_used)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use tecopt::parallel::service_workers;
use tecopt::{CoolingSystem, CurrentSettings, OptError, PackageConfig, TecParams, TileIndex};
use tecopt_serve::{
    Client, ClientError, Engine, EngineConfig, Listener, Request, RetryPolicy, Server,
    ServerConfig, ServerReport, TecEvaluator,
};
use tecopt_units::{Amperes, Watts};

fn bench_system() -> Result<CoolingSystem, OptError> {
    let config = PackageConfig::hotspot41_like(4, 4)?;
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
}

/// Latencies (seconds) collected by one client worker, split by outcome.
#[derive(Default)]
struct ClientLog {
    ok: Vec<f64>,
    shed: Vec<f64>,
    other_errors: usize,
}

struct Scenario {
    name: &'static str,
    clients: usize,
    requests_per_client: usize,
    queue_capacity: usize,
    eval_workers: usize,
}

const SCENARIOS: [Scenario; 2] = [
    Scenario {
        name: "nominal",
        clients: 4,
        requests_per_client: 40,
        queue_capacity: 64,
        eval_workers: 2,
    },
    Scenario {
        name: "overload",
        clients: 8,
        requests_per_client: 16,
        queue_capacity: 2,
        eval_workers: 1,
    },
];

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Quantile of an already-sorted sample by nearest-rank.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn client_loop(scenario: &Scenario, addr: &str, who: usize, log: &Mutex<ClientLog>) {
    // No retries: every admission decision shows up in the log exactly
    // once, so shed counts are exact rather than retry-inflated.
    let mut client = Client::tcp(addr.to_string()).with_policy(RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(1),
        response_timeout: Duration::from_secs(60),
    });
    for i in 0..scenario.requests_per_client {
        // A fixed, deterministic current script per (client, index).
        let current = 0.5 + ((who * scenario.requests_per_client + i) % 32) as f64 * 0.01;
        let start = Instant::now();
        let outcome = client.request(
            Request::Steady {
                current: Amperes(current),
            },
            None,
        );
        let elapsed = start.elapsed().as_secs_f64();
        let mut log = lock(log);
        match outcome {
            Ok(_) => log.ok.push(elapsed),
            Err(ClientError::RetriesExhausted { last, .. }) if matches!(&*last, ClientError::Server { code, .. } if code == "overloaded") =>
            {
                log.shed.push(elapsed);
            }
            Err(_) => log.other_errors += 1,
        }
    }
}

fn run_scenario(scenario: &Scenario) -> Result<(String, ServerReport), String> {
    let system = bench_system().map_err(|e| format!("system setup failed: {e}"))?;
    let listener = Listener::bind_tcp("127.0.0.1:0").map_err(|e| format!("bind failed: {e}"))?;
    let addr = listener
        .local_addr()
        .ok_or("listener has no local address")?
        .to_string();
    let engine = Arc::new(Engine::new(
        TecEvaluator::new(system, CurrentSettings::default()),
        EngineConfig {
            queue_capacity: scenario.queue_capacity,
            ..EngineConfig::default()
        },
    ));
    let server = Server::new(
        listener,
        engine,
        ServerConfig {
            handlers: scenario.clients,
            eval_workers: scenario.eval_workers,
            poll_interval: Duration::from_millis(2),
            drain_timeout: Duration::from_secs(30),
        },
    );
    let shutdown = server.shutdown_token();

    let logs: Vec<Mutex<ClientLog>> = (0..scenario.clients)
        .map(|_| Mutex::new(ClientLog::default()))
        .collect();
    let report: Mutex<Option<ServerReport>> = Mutex::new(None);
    let remaining = AtomicUsize::new(scenario.clients);

    // Worker 0 hosts the whole server (which spins up its own pool);
    // workers 1..=clients each run one client script. The last client to
    // finish raises the shutdown token, which drains the server cleanly.
    let wall = Instant::now();
    let panics = service_workers(scenario.clients + 1, |w| {
        if w == 0 {
            *lock(&report) = Some(server.run());
        } else {
            client_loop(scenario, &addr, w - 1, &logs[w - 1]);
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                shutdown.cancel();
            }
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();
    if let Some(p) = panics.into_iter().flatten().next() {
        return Err(format!("bench worker panicked: {p}"));
    }
    let report = lock(&report).take().ok_or("server produced no report")?;

    let mut ok = Vec::new();
    let mut shed = Vec::new();
    let mut other_errors = 0usize;
    for log in &logs {
        let log = lock(log);
        ok.extend_from_slice(&log.ok);
        shed.extend_from_slice(&log.shed);
        other_errors += log.other_errors;
    }
    ok.sort_by(f64::total_cmp);
    shed.sort_by(f64::total_cmp);

    let total = scenario.clients * scenario.requests_per_client;
    if ok.len() + shed.len() + other_errors != total {
        return Err(format!(
            "lost requests: {} + {} + {other_errors} != {total}",
            ok.len(),
            shed.len()
        ));
    }
    if scenario.name == "nominal" && (ok.len() != total || !report.drained_cleanly) {
        return Err(format!(
            "nominal load must fully succeed: ok={}, drained={}",
            ok.len(),
            report.drained_cleanly
        ));
    }
    if scenario.name == "overload" && shed.is_empty() {
        return Err("overload scenario shed nothing; capacity is not starved".into());
    }

    let ms = 1e3;
    eprintln!(
        "[{}] ok={} shed={} errors={} p50={:.3} ms p99={:.3} ms shed_p99={:.3} ms wall={wall_s:.3} s",
        scenario.name,
        ok.len(),
        shed.len(),
        other_errors,
        quantile(&ok, 0.50) * ms,
        quantile(&ok, 0.99) * ms,
        quantile(&shed, 0.99) * ms,
    );

    let json = format!(
        "    {{\n      \"scenario\": \"{}\",\n      \"clients\": {},\n      \"requests_per_client\": {},\n      \"queue_capacity\": {},\n      \"eval_workers\": {},\n      \"ok\": {},\n      \"shed\": {},\n      \"other_errors\": {},\n      \"latency_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3} }},\n      \"shed_refusal_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3} }},\n      \"server\": {{ \"submitted\": {}, \"shed_overload\": {}, \"completed_ok\": {}, \"panics_contained\": {}, \"disconnects\": {}, \"drained_cleanly\": {} }},\n      \"wall_seconds\": {wall_s:.3}\n    }}",
        scenario.name,
        scenario.clients,
        scenario.requests_per_client,
        scenario.queue_capacity,
        scenario.eval_workers,
        ok.len(),
        shed.len(),
        other_errors,
        quantile(&ok, 0.50) * ms,
        quantile(&ok, 0.99) * ms,
        if shed.is_empty() { 0.0 } else { quantile(&shed, 0.50) * ms },
        if shed.is_empty() { 0.0 } else { quantile(&shed, 0.99) * ms },
        report.engine.submitted,
        report.engine.shed_overload,
        report.engine.completed_ok,
        report.engine.panics_contained,
        report.disconnects,
        report.drained_cleanly,
    );
    Ok((json, report))
}

fn main() -> Result<(), String> {
    let mut rows = Vec::new();
    for scenario in &SCENARIOS {
        let (json, _report) = run_scenario(scenario)?;
        rows.push(json);
    }
    println!(
        "{{\n  \"bench\": \"bench_pr5\",\n  \"description\": \"end-to-end tecopt-serve latency and load shedding over TCP loopback on a 4x4 hotspot41-like system; nominal = capacity-matched (every request must succeed), overload = starved queue (typed overloaded refusals, no retries); latencies are client-observed, nearest-rank percentiles\",\n  \"scenarios\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    );
    Ok(())
}
