//! Experiment E5: the thermal-runaway phenomenon. Sweeps the supply current
//! through and beyond `λ_m` on the Alpha deployment and prints the peak
//! temperature trajectory (divergence below `λ_m`, no steady state above).
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin runaway
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::runaway::demonstration_sweep;
use tecopt::{greedy_deploy, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};

fn main() {
    let base = alpha_system().expect("alpha system");
    let outcome =
        greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy deploy");
    let system = outcome.deployment().system().clone();
    let sweep = demonstration_sweep(&system).expect("sweep");
    println!(
        "deployment: {} TECs, lambda_m = {:.3} A",
        system.device_count(),
        sweep.limit.lambda().value()
    );
    println!("current_amps,fraction_of_lambda,peak_celsius,tec_power_watts");
    let lam = sweep.limit.lambda().value();
    for p in &sweep.points {
        match (p.peak, p.tec_power) {
            (Some(peak), Some(power)) => println!(
                "{:.3},{:.4},{:.2},{:.3}",
                p.current.value(),
                p.current.value() / lam,
                peak.value(),
                power.value()
            ),
            _ => println!(
                "{:.3},{:.4},RUNAWAY,-",
                p.current.value(),
                p.current.value() / lam
            ),
        }
    }
    let best = sweep.best().expect("finite samples");
    println!(
        "\nempirical optimum: {:.3} A -> {:.2} degC (divergence demonstrated: {})",
        best.current.value(),
        best.peak.expect("finite").value(),
        sweep.demonstrates_divergence()
    );
}
