//! PR-4 acceptance benchmark: the unsupervised parallel candidate sweep
//! (`par_map_init`, the PR-2 path) against the identical sweep routed
//! through the supervised runtime (`supervised_map` under an unbounded
//! `RunContext`: admission gate per item, per-item panic isolation) on
//! designer-style candidate sweeps at 8x8 .. 32x32 grids.
//!
//! The timed workload matches `bench_pr2`'s cached parallel sweep — fixed
//! probe currents, `lambda_m` bisection excluded — so the delta isolates
//! the supervision overhead, which the PR budgets at <= 2% on the 32x32
//! designer sweep. Emits JSON on stdout; the committed copy lives at
//! `BENCH_PR4.json`.

#![warn(clippy::unwrap_used)]

use std::time::Instant;

use tecopt::parallel::{par_map_init, worker_count};
use tecopt::supervise::{supervised_map, RunContext};
use tecopt::{CoolingSystem, OptError, PackageConfig, TecParams, TileIndex};
use tecopt_units::{Amperes, Watts};

/// Probe currents for every candidate — same set as `bench_pr2`.
const PROBE_CURRENTS: [f64; 3] = [0.5, 1.0, 2.0];

fn base_system(rows: usize, cols: usize) -> Result<CoolingSystem, OptError> {
    let config = PackageConfig::hotspot41_like(rows, cols)?;
    let mut powers = vec![Watts(0.05); rows * cols];
    powers[cols + 1] = Watts(0.6);
    powers[rows * cols / 2] = Watts(0.4);
    CoolingSystem::without_devices(&config, TecParams::superlattice_thin_film(), powers)
}

/// Designer-style candidate deployments — same set as `bench_pr2`.
fn candidates(rows: usize, cols: usize) -> Vec<Vec<TileIndex>> {
    let center = TileIndex::new(rows / 2, cols / 2);
    vec![
        vec![TileIndex::new(1, 1)],
        vec![center],
        vec![TileIndex::new(rows - 2, cols - 2)],
        vec![TileIndex::new(1, 1), center],
    ]
}

fn probe_candidate(base: &CoolingSystem, tiles: &[TileIndex]) -> Result<Vec<f64>, OptError> {
    let sys = base.with_tiles(tiles)?;
    let mut solver = sys.solver()?;
    PROBE_CURRENTS
        .iter()
        .map(|&i| Ok(solver.solve(Amperes(i))?.peak().value()))
        .collect()
}

/// The PR-2 baseline: candidates spread over worker threads with no
/// supervision layer.
fn unsupervised_sweep(
    base: &CoolingSystem,
    cands: &[Vec<TileIndex>],
) -> Result<Vec<f64>, OptError> {
    let results: Vec<Result<Vec<f64>, OptError>> = par_map_init(
        cands.to_vec(),
        || (),
        |(), tiles| probe_candidate(base, &tiles),
    );
    let mut peaks = Vec::with_capacity(cands.len() * PROBE_CURRENTS.len());
    for r in results {
        peaks.extend(r?);
    }
    Ok(peaks)
}

/// The same sweep through the supervised runtime: an unbounded context's
/// admission gate before every item claim plus per-item unwind isolation.
fn supervised_sweep(base: &CoolingSystem, cands: &[Vec<TileIndex>]) -> Result<Vec<f64>, OptError> {
    let ctx = RunContext::unbounded();
    let results = supervised_map(
        &ctx,
        cands.to_vec(),
        || (),
        |(), tiles| probe_candidate(base, &tiles),
    )
    .map_err(OptError::from)?;
    Ok(results.into_iter().flatten().collect())
}

fn run_grid(rows: usize, cols: usize, reps: usize) -> Result<String, OptError> {
    let base = base_system(rows, cols)?;
    let cands = candidates(rows, cols);
    let probe_count = cands.len() * PROBE_CURRENTS.len();
    let n = base.with_tiles(&cands[0])?.stamped().model().node_count();

    // Warm up both paths untimed (thread-pool spinup, page faults, CSR
    // conversion), then time the two sides back to back within each rep.
    // Run-to-run noise on a shared box dwarfs the true per-item overhead
    // (an atomic admission plus one catch_unwind per candidate), so the
    // headline number is the *median of the per-rep paired ratios* —
    // adjacent runs see the same machine state, and the median rejects
    // the scheduler outliers that a min-of-N keeps chasing.
    let unsup_peaks = unsupervised_sweep(&base, &cands)?;
    let sup_peaks = supervised_sweep(&base, &cands)?;
    let mut unsup_s = f64::INFINITY;
    let mut sup_s = f64::INFINITY;
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps.max(1) {
        // Alternate which side runs first: whichever sweep runs second in
        // a pair inherits the first's allocator/page state, a measurable
        // position effect at the 32x32 working-set size.
        let (ut, st) = if rep % 2 == 0 {
            let start = Instant::now();
            let u = unsupervised_sweep(&base, &cands)?;
            let ut = start.elapsed().as_secs_f64();
            assert_eq!(u, unsup_peaks);
            let start = Instant::now();
            let s = supervised_sweep(&base, &cands)?;
            let st = start.elapsed().as_secs_f64();
            assert_eq!(s, sup_peaks);
            (ut, st)
        } else {
            let start = Instant::now();
            let s = supervised_sweep(&base, &cands)?;
            let st = start.elapsed().as_secs_f64();
            assert_eq!(s, sup_peaks);
            let start = Instant::now();
            let u = unsupervised_sweep(&base, &cands)?;
            let ut = start.elapsed().as_secs_f64();
            assert_eq!(u, unsup_peaks);
            (ut, st)
        };
        unsup_s = unsup_s.min(ut);
        sup_s = sup_s.min(st);
        ratios.push(st / ut);
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };
    eprintln!("[{rows}x{cols}] unsupervised sweep (min): {unsup_s:.6} s");
    eprintln!("[{rows}x{cols}] supervised sweep (min):   {sup_s:.6} s");

    // Supervision must be invisible in the output: bit-identical peaks.
    assert_eq!(unsup_peaks.len(), sup_peaks.len());
    let identical = unsup_peaks
        .iter()
        .zip(&sup_peaks)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "supervised sweep diverged from unsupervised");

    let overhead = (median_ratio - 1.0) * 100.0;
    eprintln!("[{rows}x{cols}] supervision overhead (median paired ratio): {overhead:+.3}%");

    Ok(format!(
        "    {{\n      \"grid\": \"{rows}x{cols}\",\n      \"nodes\": {n},\n      \"candidates\": {},\n      \"probes\": {probe_count},\n      \"reps\": {reps},\n      \"unsupervised_seconds\": {unsup_s:.6},\n      \"supervised_seconds\": {sup_s:.6},\n      \"overhead_percent\": {overhead:.3},\n      \"bit_identical\": {identical}\n    }}",
        cands.len(),
    ))
}

fn main() -> Result<(), OptError> {
    let threads = worker_count();
    let mut rows = Vec::new();
    for (r, c, reps) in [(8usize, 8usize, 11usize), (16, 16, 11), (32, 32, 15)] {
        rows.push(run_grid(r, c, reps)?);
    }
    println!(
        "{{\n  \"bench\": \"bench_pr4\",\n  \"description\": \"unsupervised par_map_init candidate sweep vs the same sweep under supervised_map with an unbounded RunContext; fixed probe currents {PROBE_CURRENTS:?}, lambda_m bisection excluded; overhead target <= 2% on the 32x32 designer sweep\",\n  \"worker_threads\": {threads},\n  \"grids\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    );
    Ok(())
}
