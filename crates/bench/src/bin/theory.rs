//! Runs the executable statements of the paper's Lemmas 1–3 and
//! Theorems 1–3 (see `tecopt::theory`) on the deployed Alpha benchmark and
//! prints each verdict.
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin theory
//! ```

#![warn(clippy::unwrap_used)]

use tecopt::theory::check_all;
use tecopt::{greedy_deploy, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};

fn main() {
    let base = alpha_system().expect("alpha system");
    let outcome =
        greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy deploy");
    let system = outcome.deployment().system().clone();
    println!(
        "checking the paper's theory on the deployed Alpha system ({} TECs, {} nodes)\n",
        system.device_count(),
        system.stamped().model().node_count()
    );
    let reports = check_all(&system).expect("theory checks");
    let mut all_hold = true;
    for r in &reports {
        println!(
            "{:<10} {:<8} ({} witnesses) — {}",
            r.claim,
            if r.holds { "HOLDS" } else { "REFUTED" },
            r.witnesses,
            r.detail
        );
        all_hold &= r.holds;
    }
    println!(
        "\n{}",
        if all_hold {
            "every claim verified on this instance"
        } else {
            "A CLAIM WAS REFUTED — investigate"
        }
    );
    if !all_hold {
        std::process::exit(1);
    }
}
