//! Ablation experiments A1–A3 (see `DESIGN.md` §5):
//!
//! - **A1** — convexity-certificate tightness vs. the number of Theorem-4
//!   sub-ranges,
//! - **A2** — deployment strategies: greedy vs. full cover vs. covering the
//!   top-K highest-power tiles,
//! - **A3** — sensitivity of the runaway limit `λ_m` and the optimum to the
//!   contact conductances `g_c`/`g_h` (the paper singles these out as
//!   "playing an important role in the thermal runaway problem").
//!
//! ```text
//! cargo run --release -p tecopt-bench --bin ablations
//! ```

#![warn(clippy::unwrap_used)]

use std::time::Instant;
use tecopt::{
    certify_convexity, greedy_deploy, optimize_current, runaway_limit, ConvexitySettings,
    CoolingSystem, CurrentSettings, DeploySettings, TileIndex,
};
use tecopt_bench::{alpha_system, paper_package, paper_tec, THETA_LIMIT};
use tecopt_units::Watts;

fn main() {
    let base = alpha_system().expect("alpha system");
    let deployed = greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT))
        .expect("greedy")
        .deployment()
        .system()
        .clone();

    // --- A1: certificate vs sub-range count.
    println!("A1: convexity certificate vs sub-range count (Theorem 4)");
    println!("subranges,probes,certified,seconds");
    for m in [1usize, 2, 4, 8, 16, 32] {
        let t0 = Instant::now();
        let cert = certify_convexity(
            &deployed,
            ConvexitySettings {
                subranges: m,
                ..ConvexitySettings::default()
            },
        )
        .expect("certificate");
        println!(
            "{m},{},{},{:.2}",
            cert.probes,
            cert.is_certified(),
            t0.elapsed().as_secs_f64()
        );
    }

    // --- A2: deployment strategies.
    println!("\nA2: deployment strategy comparison on the Alpha benchmark");
    println!("strategy,devices,i_opt_amps,peak_celsius,p_tec_watts");
    let report = |label: &str, system: &CoolingSystem| {
        let opt = optimize_current(system, CurrentSettings::default()).expect("optimize");
        println!(
            "{label},{},{:.2},{:.2},{:.2}",
            system.device_count(),
            opt.current().value(),
            opt.state().peak().value(),
            opt.state().tec_power().value()
        );
    };
    report("greedy", &deployed);
    // Top-K densest tiles (K = greedy's device count): a natural heuristic
    // the greedy algorithm implicitly competes with.
    let k = deployed.device_count();
    let grid = base.config().grid().clone();
    let mut ranked: Vec<(TileIndex, Watts)> = grid
        .tiles()
        .zip(base.tile_powers().iter().copied())
        .collect();
    ranked.sort_by(|a, b| b.1.value().total_cmp(&a.1.value()));
    let top_k: Vec<TileIndex> = ranked.iter().take(k).map(|(t, _)| *t).collect();
    let top_k_system = base.with_tiles(&top_k).expect("top-k system");
    report("top_k_power", &top_k_system);
    let all: Vec<TileIndex> = grid.tiles().collect();
    let full = base.with_tiles(&all).expect("full cover");
    report("full_cover", &full);

    // --- A3: contact-conductance sweep.
    println!("\nA3: contact conductance sweep (g_c = g_h scaled)");
    println!("scale,g_contact_w_per_k,lambda_m_amps,i_opt_amps,peak_celsius");
    let config = paper_package().expect("package");
    let tiles = deployed.tec_tiles().to_vec();
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let params = paper_tec().with_contact_scale(scale).expect("params");
        let g = params.cold_contact().value();
        let system = CoolingSystem::new(&config, params, &tiles, base.tile_powers().to_vec())
            .expect("system");
        let lim = runaway_limit(&system, 1e-9).expect("limit");
        let opt = optimize_current(&system, CurrentSettings::default()).expect("optimize");
        println!(
            "{scale},{g:.4},{:.2},{:.2},{:.2}",
            lim.lambda().value(),
            opt.current().value(),
            opt.state().peak().value()
        );
    }
}
