//! Criterion bench for experiment E7: the paper's runtime claim ("for all
//! benchmarks, the execution time of our algorithm is less than 3 minutes").
//! Benchmarks the end-to-end deployment + current setting of a
//! representative hypothetical chip and the building blocks that dominate it.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt::{greedy_deploy, optimize_current, CurrentSettings, DeploySettings};
use tecopt_bench::{hypothetical_systems, THETA_LIMIT};
use tecopt_linalg::Cholesky;
use tecopt_units::Amperes;

fn bench_runtime(c: &mut Criterion) {
    let systems = hypothetical_systems().expect("hypothetical systems");
    let (_, hc01) = &systems[0];
    let deployed = greedy_deploy(hc01, DeploySettings::with_limit(THETA_LIMIT))
        .expect("greedy")
        .deployment()
        .system()
        .clone();
    let g = deployed.stamped().model().g_matrix().clone();
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.bench_function("hc01_greedy_deploy_end_to_end", |b| {
        b.iter(|| greedy_deploy(hc01, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy"))
    });
    group.bench_function("hc01_current_optimization_only", |b| {
        b.iter(|| optimize_current(&deployed, CurrentSettings::default()).expect("optimize"))
    });
    group.bench_function("steady_state_solve", |b| {
        b.iter(|| deployed.solve(Amperes(3.0)).expect("solve"))
    });
    group.bench_function("cholesky_factorization", |b| {
        b.iter(|| Cholesky::factor(&g).expect("factor"))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
