//! Criterion bench for experiment E7: the paper's runtime claim ("for all
//! benchmarks, the execution time of our algorithm is less than 3 minutes").
//! Benchmarks the end-to-end deployment + current setting of a
//! representative hypothetical chip and the building blocks that dominate it.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt::runaway::sweep_fractions;
use tecopt::{
    evaluate_deployments, greedy_deploy, optimize_current, CurrentSettings, DeploySettings,
    TileIndex,
};
use tecopt_bench::{hypothetical_systems, THETA_LIMIT};
use tecopt_linalg::Cholesky;
use tecopt_units::Amperes;

fn bench_runtime(c: &mut Criterion) {
    let systems = hypothetical_systems().expect("hypothetical systems");
    let (_, hc01) = &systems[0];
    let deployed = greedy_deploy(hc01, DeploySettings::with_limit(THETA_LIMIT))
        .expect("greedy")
        .deployment()
        .system()
        .clone();
    let g = deployed.stamped().model().g_matrix().clone();
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.bench_function("hc01_greedy_deploy_end_to_end", |b| {
        b.iter(|| greedy_deploy(hc01, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy"))
    });
    group.bench_function("hc01_current_optimization_only", |b| {
        b.iter(|| optimize_current(&deployed, CurrentSettings::default()).expect("optimize"))
    });
    group.bench_function("steady_state_solve", |b| {
        b.iter(|| deployed.solve(Amperes(3.0)).expect("solve"))
    });
    group.bench_function("cholesky_factorization", |b| {
        b.iter(|| Cholesky::factor(&g).expect("factor"))
    });
    group.finish();
}

/// PR-2 sweep benches: the parallelized fan-outs (candidate-deployment
/// evaluation, runaway fraction sweep) against their sequential
/// equivalents on the 12x12 HC01 system.
fn bench_parallel_sweeps(c: &mut Criterion) {
    let systems = hypothetical_systems().expect("hypothetical systems");
    let (_, hc01) = &systems[0];
    let candidates: Vec<Vec<TileIndex>> = vec![
        vec![TileIndex::new(5, 5)],
        vec![TileIndex::new(5, 6)],
        vec![TileIndex::new(6, 5)],
        vec![TileIndex::new(6, 6)],
        vec![TileIndex::new(5, 5), TileIndex::new(6, 6)],
        vec![TileIndex::new(5, 6), TileIndex::new(6, 5)],
    ];
    let deployed = hc01.with_tiles(&candidates[4]).expect("deploy");
    let fractions: Vec<f64> = (1..=24).map(|k| f64::from(k) / 20.0).collect();
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(3);
    group.bench_function("hc01_candidate_eval_parallel", |b| {
        b.iter(|| {
            evaluate_deployments(hc01, &candidates, CurrentSettings::default()).expect("eval")
        })
    });
    group.bench_function("hc01_candidate_eval_sequential", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|tiles| {
                    optimize_current(
                        &hc01.with_tiles(tiles).expect("deploy"),
                        CurrentSettings::default(),
                    )
                    .expect("optimize")
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("hc01_runaway_sweep_parallel", |b| {
        b.iter(|| sweep_fractions(&deployed, &fractions, 1e-9).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime, bench_parallel_sweeps);
criterion_main!(benches);
