//! Criterion bench for experiment E5: the `λ_m` Cholesky-probe bisection
//! (Theorem 1) and a steady-state solve near the runaway boundary.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt::{greedy_deploy, runaway_limit, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};
use tecopt_units::Amperes;

fn bench_runaway(c: &mut Criterion) {
    let base = alpha_system().expect("alpha system");
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy");
    let system = outcome.deployment().system().clone();
    let lim = runaway_limit(&system, 1e-9).expect("limit");
    let near = Amperes(lim.feasible().value() * 0.99);
    let mut group = c.benchmark_group("runaway");
    group.sample_size(10);
    group.bench_function("lambda_m_bisection", |b| {
        b.iter(|| runaway_limit(&system, 1e-9).expect("limit"))
    });
    group.bench_function("solve_near_limit", |b| {
        b.iter(|| system.solve(near).expect("solve"))
    });
    group.finish();
}

criterion_group!(benches, bench_runaway);
criterion_main!(benches);
