//! Criterion bench for ablation A1: the convexity-certificate cost as the
//! number of Theorem-4 sub-ranges grows (the paper's accuracy-vs-runtime
//! trade-off; certificate outcomes are printed by the `ablations` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tecopt::{certify_convexity, greedy_deploy, ConvexitySettings, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};

fn bench_subranges(c: &mut Criterion) {
    let base = alpha_system().expect("alpha system");
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy");
    let system = outcome.deployment().system().clone();
    let mut group = c.benchmark_group("ablation_subranges");
    group.sample_size(10);
    for m in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("certify", m), &m, |b, &m| {
            b.iter(|| {
                certify_convexity(
                    &system,
                    ConvexitySettings {
                        subranges: m,
                        ..ConvexitySettings::default()
                    },
                )
                .expect("certificate")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_subranges);
criterion_main!(benches);
