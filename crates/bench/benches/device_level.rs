//! Criterion bench for experiment E8: device-level relations (Eqs. 1–3)
//! and single-device system assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt::{CoolingSystem, TileIndex};
use tecopt_bench::{paper_package, paper_tec};
use tecopt_device::OperatingPoint;
use tecopt_units::{Amperes, Kelvin, Watts};

fn bench_device(c: &mut Criterion) {
    let tec = paper_tec();
    let op = OperatingPoint {
        current: Amperes(5.0),
        cold: Kelvin(350.0),
        hot: Kelvin(360.0),
    };
    let config = paper_package().expect("package");
    let powers = vec![Watts(0.1); config.grid().tile_count()];
    let mut group = c.benchmark_group("device_level");
    group.bench_function("flux_relations", |b| {
        b.iter(|| {
            (
                tec.cold_side_flux(op),
                tec.hot_side_flux(op),
                tec.input_power(op),
            )
        })
    });
    group.sample_size(20);
    group.bench_function("single_device_system_assembly", |b| {
        b.iter(|| {
            CoolingSystem::new(
                &config,
                paper_tec(),
                &[TileIndex::new(6, 6)],
                powers.clone(),
            )
            .expect("system")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
