//! Criterion bench for experiment E1: assembling and solving the fine-grid
//! reference model versus the compact model on the Alpha benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt_bench::alpha_system;
use tecopt_thermal::refined::{ReferenceModel, RefinementSettings};
use tecopt_units::Amperes;

fn bench_validation(c: &mut Criterion) {
    let base = alpha_system().expect("alpha system");
    let config = base.config().clone();
    let powers = base.tile_powers().to_vec();
    let reference = ReferenceModel::new(&config, RefinementSettings::default()).expect("reference");
    let mut group = c.benchmark_group("validation");
    group.sample_size(10);
    group.bench_function("compact_solve", |b| {
        b.iter(|| base.solve(Amperes(0.0)).expect("compact"))
    });
    group.bench_function("reference_solve", |b| {
        b.iter(|| reference.solve(&powers).expect("reference"))
    });
    group.bench_function("reference_assembly", |b| {
        b.iter(|| ReferenceModel::new(&config, RefinementSettings::default()).expect("assembly"))
    });
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
