//! Criterion bench for the linear-algebra kernels that dominate every
//! experiment: dense Cholesky factorization/solve at the compact-model
//! sizes, CG on the fine-grid systems, and the PR-2 backend comparison
//! (dense vs sparse `FactoredSystem`, plus the cached-workspace hot path)
//! on real paper-scale compact models.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tecopt::{CoolingSystem, PackageConfig, TecParams, TileIndex};
use tecopt_linalg::stieltjes::{random_stieltjes, seeded_rng, StieltjesSampler};
use tecopt_linalg::{
    conjugate_gradient, CgSettings, Cholesky, CsrMatrix, FactoredSystem, ResolvedBackend, Triplet,
};
use tecopt_units::{Amperes, Watts};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let a = random_stieltjes(
            StieltjesSampler {
                dim: n,
                density: 0.02,
                ..StieltjesSampler::default()
            },
            &mut seeded_rng(1),
        );
        group.bench_with_input(BenchmarkId::new("cholesky_factor", n), &n, |b, _| {
            b.iter(|| Cholesky::factor(&a).expect("spd"))
        });
        let chol = Cholesky::factor(&a).expect("spd");
        let rhs: Vec<f64> = (0..n).map(|k| (k as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| chol.solve(&rhs).expect("solve"))
        });
    }
    // CG on a 2-D Laplacian of fine-grid scale.
    let side = 100usize;
    let idx = |i: usize, j: usize| i * side + j;
    let mut trips = Vec::new();
    for i in 0..side {
        for j in 0..side {
            trips.push(Triplet::new(idx(i, j), idx(i, j), 4.01));
            if i > 0 {
                trips.push(Triplet::new(idx(i, j), idx(i - 1, j), -1.0));
            }
            if i + 1 < side {
                trips.push(Triplet::new(idx(i, j), idx(i + 1, j), -1.0));
            }
            if j > 0 {
                trips.push(Triplet::new(idx(i, j), idx(i, j - 1), -1.0));
            }
            if j + 1 < side {
                trips.push(Triplet::new(idx(i, j), idx(i, j + 1), -1.0));
            }
        }
    }
    let sparse = CsrMatrix::from_triplets(side * side, side * side, &trips).expect("laplacian");
    let b = vec![1.0; side * side];
    group.bench_function("cg_laplacian_10k", |bch| {
        bch.iter(|| conjugate_gradient(&sparse, &b, CgSettings::default()).expect("cg"))
    });
    group.finish();
}

/// Paper-style compact model on an `rows x cols` grid with a hotspot power
/// map and one TEC deployed — the same family the backend-equivalence
/// tests exercise, at bench scale.
fn paper_grid_system(rows: usize, cols: usize) -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(rows, cols).expect("package");
    let mut powers = vec![Watts(0.05); rows * cols];
    powers[cols + 1] = Watts(0.6);
    powers[rows * cols / 2] = Watts(0.4);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1)],
        powers,
    )
    .expect("system")
}

/// PR-2 backend comparison: factor-and-solve cost of dense Cholesky vs
/// sparse Jacobi-CG on the stamped `G` of 8x8 .. 32x32 paper grids, plus
/// the end-to-end cached-workspace solve (`CoolingSystem::solve` with the
/// `Auto` backend, factorization reused across iterations).
fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend");
    group.sample_size(3);
    group.measurement_time(Duration::from_millis(200));
    for (rows, cols) in [(8usize, 8usize), (16, 16), (32, 32)] {
        let system = paper_grid_system(rows, cols);
        let g = system.stamped().model().g_matrix().clone();
        let n = g.rows();
        let label = format!("{rows}x{cols}_n{n}");
        let rhs: Vec<f64> = (0..n)
            .map(|k| 0.1 + (k as f64 * 0.13).sin().abs())
            .collect();
        group.bench_with_input(BenchmarkId::new("dense_cholesky", &label), &n, |b, _| {
            b.iter(|| {
                FactoredSystem::factor(&g, ResolvedBackend::DenseCholesky)
                    .expect("pd")
                    .solve(&rhs)
                    .expect("solve")
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse_cg", &label), &n, |b, _| {
            b.iter(|| {
                FactoredSystem::factor(&g, ResolvedBackend::SparseCg(CgSettings::default()))
                    .expect("assemble")
                    .solve(&rhs)
                    .expect("solve")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("cached_workspace_solve", &label),
            &n,
            |b, _| b.iter(|| system.solve(Amperes(1.0)).expect("solve")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_backends);
criterion_main!(benches);
