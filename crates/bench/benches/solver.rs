//! Criterion bench for the linear-algebra kernels that dominate every
//! experiment: dense Cholesky factorization/solve at the compact-model
//! sizes and CG on the fine-grid systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tecopt_linalg::stieltjes::{random_stieltjes, seeded_rng, StieltjesSampler};
use tecopt_linalg::{conjugate_gradient, CgSettings, Cholesky, CsrMatrix, Triplet};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let a = random_stieltjes(
            StieltjesSampler {
                dim: n,
                density: 0.02,
                ..StieltjesSampler::default()
            },
            &mut seeded_rng(1),
        );
        group.bench_with_input(BenchmarkId::new("cholesky_factor", n), &n, |b, _| {
            b.iter(|| Cholesky::factor(&a).expect("spd"))
        });
        let chol = Cholesky::factor(&a).expect("spd");
        let rhs: Vec<f64> = (0..n).map(|k| (k as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| chol.solve(&rhs).expect("solve"))
        });
    }
    // CG on a 2-D Laplacian of fine-grid scale.
    let side = 100usize;
    let idx = |i: usize, j: usize| i * side + j;
    let mut trips = Vec::new();
    for i in 0..side {
        for j in 0..side {
            trips.push(Triplet::new(idx(i, j), idx(i, j), 4.01));
            if i > 0 {
                trips.push(Triplet::new(idx(i, j), idx(i - 1, j), -1.0));
            }
            if i + 1 < side {
                trips.push(Triplet::new(idx(i, j), idx(i + 1, j), -1.0));
            }
            if j > 0 {
                trips.push(Triplet::new(idx(i, j), idx(i, j - 1), -1.0));
            }
            if j + 1 < side {
                trips.push(Triplet::new(idx(i, j), idx(i, j + 1), -1.0));
            }
        }
    }
    let sparse = CsrMatrix::from_triplets(side * side, side * side, &trips).expect("laplacian");
    let b = vec![1.0; side * side];
    group.bench_function("cg_laplacian_10k", |bch| {
        bch.iter(|| conjugate_gradient(&sparse, &b, CgSettings::default()).expect("cg"))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
