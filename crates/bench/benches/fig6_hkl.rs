//! Criterion bench for experiment E3 (Fig. 6): evaluating one `h_·l(i)`
//! column of `H(i) = (G − i·D)⁻¹` (a factorization plus a solve) and the
//! `η, η′` pair behind the convexity machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt::{eta_and_derivative, greedy_deploy, h_column, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};
use tecopt_units::Amperes;

fn bench_fig6(c: &mut Criterion) {
    let base = alpha_system().expect("alpha system");
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy");
    let system = outcome.deployment().system().clone();
    let (cold, _) = system.stamped().junctions()[0];
    let mut group = c.benchmark_group("fig6_hkl");
    group.sample_size(20);
    group.bench_function("h_column", |b| {
        b.iter(|| h_column(&system, Amperes(3.0), cold).expect("h column"))
    });
    group.bench_function("eta_and_derivative", |b| {
        b.iter(|| eta_and_derivative(&system, Amperes(3.0)).expect("eta"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
