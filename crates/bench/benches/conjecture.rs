//! Criterion bench for experiment E6: Conjecture-1 verification throughput
//! (matrices per second at the dimensions the randomized campaign uses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tecopt::conjecture::randomized_campaign;

fn bench_conjecture(c: &mut Criterion) {
    let mut group = c.benchmark_group("conjecture");
    group.sample_size(10);
    for dim in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("campaign_10_matrices", dim),
            &dim,
            |b, &dim| b.iter(|| randomized_campaign(7, 10, dim).expect("campaign")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conjecture);
criterion_main!(benches);
