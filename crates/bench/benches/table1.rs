//! Criterion bench for experiment E2 (Table I): the full deployment +
//! current-setting pipeline on the Alpha-21364-like benchmark, plus the
//! full-cover baseline. The printable eleven-row table is produced by the
//! `table1` binary; this bench tracks the cost of its dominant row.

use criterion::{criterion_group, criterion_main, Criterion};
use tecopt::{full_cover, greedy_deploy, CurrentSettings, DeploySettings};
use tecopt_bench::{alpha_system, THETA_LIMIT};

fn bench_table1(c: &mut Criterion) {
    let base = alpha_system().expect("alpha system");
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("alpha_greedy_deploy", |b| {
        b.iter(|| greedy_deploy(&base, DeploySettings::with_limit(THETA_LIMIT)).expect("greedy"))
    });
    group.bench_function("alpha_full_cover", |b| {
        b.iter(|| full_cover(&base, CurrentSettings::default()).expect("full cover"))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
