//! Shared input-validation primitives for every public entry point of the
//! workspace.
//!
//! The solvers downstream run dense factorizations of `G − i·D`; a single
//! NaN, infinity, or sign-flipped parameter that slips through an entry
//! point surfaces hundreds of flops later as a misleading
//! `NotPositiveDefinite` — or worse, as a silently wrong temperature map.
//! Every layer therefore funnels its checks through this module so that
//! malformed input fails *at the boundary*, with a structured
//! [`ValidationError`] naming the offending quantity, instead of
//! garbage-in-garbage-out.
//!
//! The checks deliberately treat `NaN` as a violation of *every* constraint:
//! `NaN <= 0.0` is `false`, so the naive `if v <= 0.0 { reject }` pattern
//! this module replaces silently accepts NaN.
//!
//! ```
//! use tecopt_units::validate;
//!
//! assert!(validate::positive("width", 0.5).is_ok());
//! assert!(validate::positive("width", f64::NAN).is_err());
//! assert!(validate::positive("width", 0.0).is_err());
//! let err = validate::finite("power", f64::INFINITY).unwrap_err();
//! assert!(err.to_string().contains("power"));
//! ```

use core::fmt;

/// The constraint a value failed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Constraint {
    /// Must be finite (neither NaN nor ±∞).
    Finite,
    /// Must be finite and strictly positive.
    Positive,
    /// Must be finite and `≥ 0`.
    NonNegative,
    /// Must be finite and inside an open interval.
    OpenInterval {
        /// Exclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Must be a nonzero count.
    NonZeroCount,
}

impl Constraint {
    fn describe(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Finite => write!(f, "must be finite"),
            Constraint::Positive => write!(f, "must be a finite positive number"),
            Constraint::NonNegative => write!(f, "must be a finite nonnegative number"),
            Constraint::OpenInterval { lo, hi } => {
                write!(f, "must lie strictly inside ({lo}, {hi})")
            }
            Constraint::NonZeroCount => write!(f, "must be a nonzero count"),
        }
    }
}

/// A named quantity violated a validation constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Human-readable name of the quantity, e.g. `"tile power"`.
    pub what: String,
    /// The offending value (NaN-safe to store; only used for display).
    pub value: f64,
    /// Index of the offending element when a slice was validated.
    pub index: Option<usize>,
    /// The violated constraint.
    pub constraint: Constraint,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}] = {} ", self.what, i, self.value)?,
            None => write!(f, "{} = {} ", self.what, self.value)?,
        }
        self.constraint.describe(f)
    }
}

impl std::error::Error for ValidationError {}

/// Checks that `v` is finite, returning it on success.
pub fn finite(what: &str, v: f64) -> Result<f64, ValidationError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ValidationError {
            what: what.into(),
            value: v,
            index: None,
            constraint: Constraint::Finite,
        })
    }
}

/// Checks that `v` is finite and strictly positive, returning it on success.
pub fn positive(what: &str, v: f64) -> Result<f64, ValidationError> {
    // `v > 0.0` is false for NaN, so this rejects NaN without a separate test;
    // the explicit finiteness check still rejects +∞.
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(ValidationError {
            what: what.into(),
            value: v,
            index: None,
            constraint: Constraint::Positive,
        })
    }
}

/// Checks that `v` is finite and `≥ 0`, returning it on success.
pub fn non_negative(what: &str, v: f64) -> Result<f64, ValidationError> {
    if v >= 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(ValidationError {
            what: what.into(),
            value: v,
            index: None,
            constraint: Constraint::NonNegative,
        })
    }
}

/// Checks that `v` lies strictly inside `(lo, hi)`, returning it on success.
pub fn open_interval(what: &str, v: f64, lo: f64, hi: f64) -> Result<f64, ValidationError> {
    if v > lo && v < hi {
        Ok(v)
    } else {
        Err(ValidationError {
            what: what.into(),
            value: v,
            index: None,
            constraint: Constraint::OpenInterval { lo, hi },
        })
    }
}

/// Checks that every element of `vs` is finite.
pub fn finite_slice(what: &str, vs: &[f64]) -> Result<(), ValidationError> {
    for (i, &v) in vs.iter().enumerate() {
        if !v.is_finite() {
            return Err(ValidationError {
                what: what.into(),
                value: v,
                index: Some(i),
                constraint: Constraint::Finite,
            });
        }
    }
    Ok(())
}

/// Checks that every element of `vs` is finite and `≥ 0`.
pub fn non_negative_slice(what: &str, vs: &[f64]) -> Result<(), ValidationError> {
    for (i, &v) in vs.iter().enumerate() {
        if !(v >= 0.0 && v.is_finite()) {
            return Err(ValidationError {
                what: what.into(),
                value: v,
                index: Some(i),
                constraint: Constraint::NonNegative,
            });
        }
    }
    Ok(())
}

/// Checks that a count is nonzero, returning it on success.
pub fn non_zero(what: &str, n: usize) -> Result<usize, ValidationError> {
    if n == 0 {
        Err(ValidationError {
            what: what.into(),
            value: 0.0,
            index: None,
            constraint: Constraint::NonZeroCount,
        })
    } else {
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_rejects_nan_and_infinities() {
        assert_eq!(finite("x", 1.5).unwrap(), 1.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = finite("x", bad).unwrap_err();
            assert_eq!(e.constraint, Constraint::Finite);
        }
    }

    #[test]
    fn positive_rejects_zero_negative_and_non_finite() {
        assert!(positive("w", 1e-300).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(positive("w", bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn non_negative_accepts_zero() {
        assert!(non_negative("p", 0.0).is_ok());
        for bad in [-1e-300, f64::NAN, f64::INFINITY] {
            assert!(non_negative("p", bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn open_interval_excludes_endpoints_and_nan() {
        assert!(open_interval("f", 0.5, 0.0, 1.0).is_ok());
        for bad in [0.0, 1.0, -0.1, 1.1, f64::NAN] {
            assert!(open_interval("f", bad, 0.0, 1.0).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn slice_errors_carry_the_index() {
        let e = finite_slice("p", &[0.0, 1.0, f64::NAN]).unwrap_err();
        assert_eq!(e.index, Some(2));
        assert!(e.to_string().contains("p[2]"));
        let e = non_negative_slice("p", &[0.0, -3.0]).unwrap_err();
        assert_eq!(e.index, Some(1));
        assert!(finite_slice("p", &[]).is_ok());
    }

    #[test]
    fn display_names_the_quantity_and_rule() {
        let e = positive("die thickness", -2.0).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("die thickness"));
        assert!(msg.contains("positive"));
        assert!(non_zero("grid rows", 0).is_err());
        assert_eq!(non_zero("grid rows", 3).unwrap(), 3);
    }
}
