//! Typed physical quantities for the `tecopt` workspace.
//!
//! Every quantity is a transparent newtype over `f64` (SI units unless the
//! name says otherwise). The newtypes exist so that public APIs cannot mix up
//! a temperature with a power or a current with a conductance; numeric kernels
//! unwrap to raw `f64` via [`value`](Kelvin::value) at their boundary.
//!
//! Only physically meaningful arithmetic is implemented. For example a
//! [`Kelvin`] difference yields a temperature again (steady-state analysis
//! works with rises above an arbitrary reference), [`Watts`] divided by
//! [`Kelvin`] yields [`WattsPerKelvin`], and [`Amperes`] squared times
//! [`Ohms`] yields [`Watts`].
//!
//! ```
//! use tecopt_units::{Amperes, Celsius, Kelvin, Ohms, Watts};
//!
//! let ambient = Celsius(45.0).to_kelvin();
//! assert!((ambient.value() - 318.15).abs() < 1e-12);
//!
//! let joule: Watts = Amperes(6.0) * Amperes(6.0) * Ohms(3.0e-4);
//! assert!((joule.value() - 0.0108).abs() < 1e-15);
//!
//! let hotter = Kelvin(360.0);
//! assert!(hotter.to_celsius() > Celsius(85.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

pub mod validate;

pub use validate::ValidationError;

/// Offset between the Kelvin and Celsius scales.
pub const CELSIUS_OFFSET: f64 = 273.15;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw `f64` value in the quantity's base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns `true` if the value is finite (neither NaN nor ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $unit),
                    None => write!(f, "{} {}", self.0, $unit),
                }
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Temperature on the Celsius scale.
    Celsius,
    "°C"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Electrical current in amperes.
    Amperes,
    "A"
);
quantity!(
    /// Electrical resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Electrical potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Thermal conductance in watts per kelvin.
    WattsPerKelvin,
    "W/K"
);
quantity!(
    /// Thermal resistance in kelvin per watt.
    KelvinPerWatt,
    "K/W"
);
quantity!(
    /// Length in meters.
    Meters,
    "m"
);
quantity!(
    /// Area in square meters.
    SquareMeters,
    "m²"
);
quantity!(
    /// Thermal conductivity in watts per meter-kelvin.
    WattsPerMeterKelvin,
    "W/(m·K)"
);
quantity!(
    /// Seebeck coefficient in volts per kelvin.
    VoltsPerKelvin,
    "V/K"
);
quantity!(
    /// Heat-flux / power density in watts per square centimeter
    /// (the unit the paper reports power densities in).
    WattsPerSquareCentimeter,
    "W/cm²"
);

impl Kelvin {
    /// Converts to the Celsius scale.
    ///
    /// ```
    /// use tecopt_units::{Celsius, Kelvin};
    /// assert_eq!(Kelvin(373.15).to_celsius(), Celsius(100.0));
    /// ```
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - CELSIUS_OFFSET)
    }
}

impl Celsius {
    /// Converts to the Kelvin scale.
    ///
    /// ```
    /// use tecopt_units::{Celsius, Kelvin};
    /// assert_eq!(Celsius(0.0).to_kelvin(), Kelvin(273.15));
    /// ```
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + CELSIUS_OFFSET)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

impl Meters {
    /// Constructs a length from millimeters.
    ///
    /// ```
    /// use tecopt_units::Meters;
    /// assert_eq!(Meters::from_millimeters(6.0).value(), 0.006);
    /// ```
    #[inline]
    pub fn from_millimeters(mm: f64) -> Meters {
        Meters(mm * 1e-3)
    }

    /// Constructs a length from micrometers.
    #[inline]
    pub fn from_micrometers(um: f64) -> Meters {
        Meters(um * 1e-6)
    }

    /// This length expressed in millimeters.
    #[inline]
    pub fn to_millimeters(self) -> f64 {
        self.0 * 1e3
    }
}

impl Mul<Meters> for Meters {
    type Output = SquareMeters;
    #[inline]
    fn mul(self, rhs: Meters) -> SquareMeters {
        SquareMeters(self.0 * rhs.0)
    }
}

impl SquareMeters {
    /// This area expressed in square centimeters.
    #[inline]
    pub fn to_square_centimeters(self) -> f64 {
        self.0 * 1e4
    }
}

impl WattsPerSquareCentimeter {
    /// Power density of `power` spread uniformly over `area`.
    ///
    /// ```
    /// use tecopt_units::{SquareMeters, Watts, WattsPerSquareCentimeter};
    /// let d = WattsPerSquareCentimeter::from_power_over(Watts(0.5), SquareMeters(0.25e-6));
    /// assert!((d.value() - 200.0).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn from_power_over(power: Watts, area: SquareMeters) -> WattsPerSquareCentimeter {
        WattsPerSquareCentimeter(power.0 / area.to_square_centimeters())
    }

    /// Total power over `area` at this density.
    #[inline]
    pub fn power_over(self, area: SquareMeters) -> Watts {
        Watts(self.0 * area.to_square_centimeters())
    }
}

impl Mul<Kelvin> for WattsPerKelvin {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Kelvin) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Amperes> for Amperes {
    /// `i · i` — appears as `r·i²` in the Joule term; yields amps² which we
    /// immediately scale by a resistance, so the intermediate is represented
    /// as an `AmperesSquared`.
    type Output = AmperesSquared;
    #[inline]
    fn mul(self, rhs: Amperes) -> AmperesSquared {
        AmperesSquared(self.0 * rhs.0)
    }
}

/// Square of an electrical current, an intermediate in Joule-heating terms.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct AmperesSquared(pub f64);

impl AmperesSquared {
    /// Returns the raw value in A².
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Mul<Ohms> for AmperesSquared {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Amperes> for VoltsPerKelvin {
    /// Seebeck coefficient times current: the Peltier "conductance" `α·i`
    /// that couples heat flow to absolute temperature (units W/K).
    type Output = WattsPerKelvin;
    #[inline]
    fn mul(self, rhs: Amperes) -> WattsPerKelvin {
        WattsPerKelvin(self.0 * rhs.0)
    }
}

impl KelvinPerWatt {
    /// The reciprocal conductance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is zero.
    #[inline]
    pub fn to_conductance(self) -> WattsPerKelvin {
        assert!(self.0 != 0.0, "zero thermal resistance has no conductance");
        WattsPerKelvin(1.0 / self.0)
    }
}

impl WattsPerKelvin {
    /// The reciprocal resistance.
    ///
    /// # Panics
    ///
    /// Panics if the conductance is zero.
    #[inline]
    pub fn to_resistance(self) -> KelvinPerWatt {
        assert!(self.0 != 0.0, "zero thermal conductance has no resistance");
        KelvinPerWatt(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius(85.0);
        assert!((c.to_kelvin().to_celsius().value() - 85.0).abs() < 1e-12);
        let k = Kelvin(318.15);
        assert!((k.to_celsius().to_kelvin().value() - 318.15).abs() < 1e-12);
    }

    #[test]
    fn conversion_traits_match_methods() {
        let k: Kelvin = Celsius(20.0).into();
        assert_eq!(k, Celsius(20.0).to_kelvin());
        let c: Celsius = Kelvin(300.0).into();
        assert_eq!(c, Kelvin(300.0).to_celsius());
    }

    #[test]
    fn joule_heating_units() {
        let p = Amperes(2.0) * Amperes(2.0) * Ohms(0.5);
        assert_eq!(p, Watts(2.0));
    }

    #[test]
    fn peltier_conductance_units() {
        let g = VoltsPerKelvin(6.0e-4) * Amperes(10.0);
        assert!((g.value() - 6.0e-3).abs() < 1e-15);
        let q = g * Kelvin(350.0);
        assert!((q.value() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn resistance_conductance_reciprocal() {
        let r = KelvinPerWatt(0.1);
        assert!((r.to_conductance().value() - 10.0).abs() < 1e-12);
        assert!((r.to_conductance().to_resistance().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero thermal resistance")]
    fn zero_resistance_panics() {
        let _ = KelvinPerWatt(0.0).to_conductance();
    }

    #[test]
    fn length_constructors() {
        assert!((Meters::from_millimeters(0.5).value() - 5e-4).abs() < 1e-18);
        assert!((Meters::from_micrometers(8.0).value() - 8e-6).abs() < 1e-18);
        assert!((Meters(0.006).to_millimeters() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn area_and_density() {
        let tile = Meters::from_millimeters(0.5);
        let area = tile * tile;
        assert!((area.to_square_centimeters() - 0.0025).abs() < 1e-15);
        let d = WattsPerSquareCentimeter::from_power_over(Watts(0.706), area);
        assert!((d.value() - 282.4).abs() < 1e-9);
        assert!((d.power_over(area).value() - 0.706).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit_and_precision() {
        assert_eq!(format!("{:.1}", Celsius(91.84)), "91.8 °C");
        assert_eq!(format!("{:.2}", Watts(1.306)), "1.31 W");
        assert_eq!(format!("{}", Amperes(6.0)), "6 A");
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Watts(1.0) + Watts(2.0);
        assert_eq!(a, Watts(3.0));
        assert_eq!(a - Watts(0.5), Watts(2.5));
        assert_eq!(-a, Watts(-3.0));
        assert_eq!(a * 2.0, Watts(6.0));
        assert_eq!(2.0 * a, Watts(6.0));
        assert_eq!(a / 2.0, Watts(1.5));
        assert!((a / Watts(1.5) - 2.0).abs() < 1e-15);
        assert!(Watts(2.0) > Watts(1.0));
        assert_eq!(Watts(2.0).max(Watts(1.0)), Watts(2.0));
        assert_eq!(Watts(2.0).min(Watts(1.0)), Watts(1.0));
        let total: Watts = [Watts(1.0), Watts(2.5)].into_iter().sum();
        assert_eq!(total, Watts(3.5));
    }

    #[test]
    fn accumulating_assign_ops() {
        let mut w = Watts(1.0);
        w += Watts(0.5);
        w -= Watts(0.25);
        assert_eq!(w, Watts(1.25));
    }

    #[test]
    fn abs_finite_zero() {
        assert_eq!(Watts(-2.0).abs(), Watts(2.0));
        assert!(Watts(1.0).is_finite());
        assert!(!Watts(f64::INFINITY).is_finite());
        assert_eq!(Watts::ZERO, Watts(0.0));
    }
}
