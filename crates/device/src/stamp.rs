//! Stamping TEC devices into the compact thermal network.
//!
//! This module realizes Sec. IV.B–C of the paper: every deployed device
//! replaces its tile's TIM node with a cold/hot node pair (the passive part,
//! delegated to [`CompactModel::with_two_ports`]), and contributes the
//! *active* terms of Eq. 4–5:
//!
//! - the diagonal Peltier matrix `D` with `+α` at hot nodes and `−α` at cold
//!   nodes, so that `(G − i·D)` gains `+α·i` at cold nodes (heat absorption)
//!   and `−α·i` at hot nodes (heat release), and
//! - Joule sources `r·i²/2` at both nodes of every device in the power
//!   vector `p(i)`.

use crate::{DeviceError, TecParams};
use tecopt_linalg::DenseMatrix;
use tecopt_thermal::{CompactModel, PackageConfig, ThermalError, TileIndex};
use tecopt_units::{Amperes, Kelvin, Watts};

/// A compact thermal model with a set of TEC devices stamped in: the
/// `(G, D, p(i))` triple of the paper's Eq. 4, ready for the optimization
/// layer.
///
/// ```
/// use tecopt_device::{StampedSystem, TecParams};
/// use tecopt_thermal::{PackageConfig, TileIndex};
/// use tecopt_units::{Amperes, Watts};
///
/// # fn main() -> Result<(), tecopt_device::DeviceError> {
/// let config = PackageConfig::hotspot41_like(4, 4)?;
/// let system = StampedSystem::new(
///     &config,
///     TecParams::superlattice_thin_film(),
///     &[TileIndex::new(1, 1)],
/// )?;
/// let m = system.system_matrix(Amperes(2.0))?;
/// assert_eq!(m.rows(), system.model().node_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StampedSystem {
    model: CompactModel,
    params: TecParams,
    tiles: Vec<TileIndex>,
    /// Diagonal of `D`: `+α` at hot (upper) nodes, `−α` at cold (lower).
    d_diagonal: Vec<f64>,
    /// Node indices receiving `r·i²/2` Joule sources (hot and cold of every
    /// device).
    joule_nodes: Vec<usize>,
    /// `(cold, hot)` node indices per deployed tile, in `tiles` order.
    junctions: Vec<(usize, usize)>,
}

impl StampedSystem {
    /// Builds the package model with TEC devices on the given tiles.
    ///
    /// An empty `tiles` slice yields the passive system (`D = 0`), which the
    /// deployment algorithm uses as its starting point.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError`]s from model assembly (out-of-bounds or
    /// duplicate tiles, invalid conductances).
    pub fn new(
        config: &PackageConfig,
        params: TecParams,
        tiles: &[TileIndex],
    ) -> Result<StampedSystem, DeviceError> {
        let spec = params.two_port_spec();
        let splices: Vec<(TileIndex, _)> = tiles.iter().map(|t| (*t, spec)).collect();
        let model = CompactModel::with_two_ports(config, &splices)?;
        let n = model.node_count();
        let mut d_diagonal = vec![0.0; n];
        let mut joule_nodes = Vec::with_capacity(2 * tiles.len());
        let mut junctions = Vec::with_capacity(tiles.len());
        let alpha = params.seebeck().value();
        // `two_ports()` returns tiles in grid order; re-key by tile so the
        // `junctions` vector matches the caller's `tiles` order.
        let by_tile: std::collections::HashMap<TileIndex, _> =
            model.two_ports().into_iter().collect();
        for t in tiles {
            let tp = by_tile[t];
            let cold = tp.lower.index();
            let hot = tp.upper.index();
            d_diagonal[hot] = alpha;
            d_diagonal[cold] = -alpha;
            joule_nodes.push(cold);
            joule_nodes.push(hot);
            junctions.push((cold, hot));
        }
        Ok(StampedSystem {
            model,
            params,
            tiles: tiles.to_vec(),
            d_diagonal,
            joule_nodes,
            junctions,
        })
    }

    /// The underlying compact model (provides `G` and node metadata).
    pub fn model(&self) -> &CompactModel {
        &self.model
    }

    /// Device parameters shared by all deployed TECs.
    pub fn params(&self) -> &TecParams {
        &self.params
    }

    /// Tiles covered by TEC devices, in deployment order.
    pub fn tiles(&self) -> &[TileIndex] {
        &self.tiles
    }

    /// Number of deployed devices (`#TECs` of Table I).
    pub fn device_count(&self) -> usize {
        self.tiles.len()
    }

    /// Diagonal of the Peltier matrix `D` (Eq. 5).
    pub fn d_diagonal(&self) -> &[f64] {
        &self.d_diagonal
    }

    /// Node indices carrying Joule sources (`HOT ∪ CLD` of the paper).
    pub fn joule_nodes(&self) -> &[usize] {
        &self.joule_nodes
    }

    /// `(cold, hot)` node index pairs per device, in `tiles()` order.
    pub fn junctions(&self) -> &[(usize, usize)] {
        &self.junctions
    }

    /// The system matrix `G − i·D`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NegativeCurrent`] for `i < 0`.
    pub fn system_matrix(&self, current: Amperes) -> Result<DenseMatrix, DeviceError> {
        let i = nonnegative(current)?;
        let mut m = self.model.g_matrix().clone();
        m.add_scaled_diagonal(&self.d_diagonal, -i)
            .map_err(ThermalError::from)?;
        Ok(m)
    }

    /// The power vector `p(i)`: ambient injection, silicon dissipation, and
    /// `r·i²/2` at every device junction.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NegativeCurrent`] for `i < 0` and propagates
    /// power-length mismatches.
    pub fn power_vector(
        &self,
        silicon_powers: &[Watts],
        current: Amperes,
    ) -> Result<Vec<f64>, DeviceError> {
        let i = nonnegative(current)?;
        let mut p = self.model.power_vector(silicon_powers)?;
        let joule = 0.5 * self.params.resistance().value() * i * i;
        for &k in &self.joule_nodes {
            p[k] += joule;
        }
        Ok(p)
    }

    /// Builds a reusable solve workspace for this system and power profile.
    ///
    /// The workspace assembles `G` and the base power vector `p(0)` **once**;
    /// every subsequent operating point is reached by overwriting the few
    /// diagonal entries `D` touches and the Joule entries of `p` in place —
    /// `O(#devices)` per probe instead of the `O(n²)` clone-and-restamp of
    /// [`StampedSystem::system_matrix`]. This is what makes current sweeps
    /// (λ_m bisection, golden section, designer candidate evaluation)
    /// allocation-free between probes.
    ///
    /// # Errors
    ///
    /// Propagates power-length mismatches from the thermal layer.
    pub fn solve_workspace(&self, silicon_powers: &[Watts]) -> Result<SolveWorkspace, DeviceError> {
        let matrix = self.model.g_matrix().clone();
        let base_power = self.model.power_vector(silicon_powers)?;
        // Only nodes with a nonzero D entry ever change in the matrix.
        let shift_nodes: Vec<usize> = self
            .d_diagonal
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != 0.0)
            .map(|(k, _)| k)
            .collect();
        let base_diag: Vec<f64> = shift_nodes.iter().map(|&k| matrix[(k, k)]).collect();
        let shift_d: Vec<f64> = shift_nodes.iter().map(|&k| self.d_diagonal[k]).collect();
        let power = base_power.clone();
        Ok(SolveWorkspace {
            matrix,
            base_diag,
            shift_nodes,
            shift_d,
            base_power,
            power,
            joule_nodes: self.joule_nodes.clone(),
            half_resistance: 0.5 * self.params.resistance().value(),
            current: 0.0,
        })
    }

    /// The rank-k structure of the placement: which nodes the deployed
    /// devices perturb and by how much per ampere — `A(i) = G + Σ_k
    /// (−i·d_k)·e_k·e_kᵀ` over exactly these nodes. This is the handle the
    /// solver layer feeds to `tecopt_linalg::UpdatableFactor` so that
    /// retargeting the supply current costs a rank-k correction instead of
    /// a fresh factorization.
    pub fn placement_delta(&self) -> PlacementDelta {
        let (nodes, per_ampere): (Vec<usize>, Vec<f64>) = self
            .d_diagonal
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != 0.0)
            .map(|(k, &d)| (k, d))
            .unzip();
        PlacementDelta { nodes, per_ampere }
    }

    /// Total electrical input power of the deployed devices given a solved
    /// temperature field: `Σ (r·i² + α·i·(θ_hot − θ_cold))` (Eq. 3) — the
    /// `P_TEC` column of Table I.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NegativeCurrent`] for `i < 0`.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not cover all nodes.
    pub fn input_power(&self, temps: &[Kelvin], current: Amperes) -> Result<Watts, DeviceError> {
        assert!(
            temps.len() == self.model.node_count(),
            "temperature vector length"
        );
        let i = nonnegative(current)?;
        let r = self.params.resistance().value();
        let a = self.params.seebeck().value();
        let mut total = 0.0;
        for &(cold, hot) in &self.junctions {
            let delta = temps[hot].value() - temps[cold].value();
            total += r * i * i + a * i * delta;
        }
        Ok(Watts(total))
    }
}

/// A preassembled `(G − i·D, p(i))` pair that is retargeted to a new supply
/// current in `O(#devices)` — see [`StampedSystem::solve_workspace`].
///
/// The matrix produced for a given current is bit-identical to the one
/// [`StampedSystem::system_matrix`] assembles from scratch, so solver
/// results are unchanged; only the per-probe cost drops.
#[derive(Debug, Clone)]
pub struct SolveWorkspace {
    matrix: DenseMatrix,
    /// Unshifted `G` diagonal values at `shift_nodes`, in the same order.
    base_diag: Vec<f64>,
    /// Nodes where `D` is nonzero (hot/cold junctions).
    shift_nodes: Vec<usize>,
    /// `D` values at `shift_nodes`.
    shift_d: Vec<f64>,
    /// `p(0)`: ambient injection plus silicon dissipation.
    base_power: Vec<f64>,
    /// `p(i)` for the current operating point.
    power: Vec<f64>,
    joule_nodes: Vec<usize>,
    half_resistance: f64,
    current: f64,
}

impl SolveWorkspace {
    /// Retargets the workspace to supply current `i`: overwrites the shifted
    /// diagonal entries with `g_kk − i·d_k` and rebuilds the Joule terms of
    /// `p(i)` from the base power vector.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NegativeCurrent`] for a negative or non-finite
    /// current (the workspace is left at its previous operating point).
    pub fn set_current(&mut self, current: Amperes) -> Result<(), DeviceError> {
        let i = nonnegative(current)?;
        for ((&k, &g_kk), &d_k) in self
            .shift_nodes
            .iter()
            .zip(&self.base_diag)
            .zip(&self.shift_d)
        {
            self.matrix[(k, k)] = g_kk - i * d_k;
        }
        self.power.copy_from_slice(&self.base_power);
        let joule = self.half_resistance * i * i;
        for &k in &self.joule_nodes {
            self.power[k] += joule;
        }
        self.current = i;
        Ok(())
    }

    /// The system matrix `G − i·D` at the last-set current.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }

    /// The power vector `p(i)` at the last-set current.
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// The current the workspace is presently stamped for.
    pub fn current(&self) -> Amperes {
        Amperes(self.current)
    }

    /// Matrix dimension (node count).
    pub fn dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Nodes whose diagonal entries depend on the current (the nonzero
    /// support of `D`), with their `D` values — what a sparse mirror needs
    /// to stay in sync via `CsrMatrix::set_diagonal_entry`.
    pub fn shifted_entries(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.shift_nodes
            .iter()
            .zip(&self.base_diag)
            .zip(&self.shift_d)
            .map(move |((&k, &g_kk), &d_k)| (k, g_kk - self.current * d_k))
    }

    /// The placement's rank-k structure as seen by this workspace — same
    /// data as [`StampedSystem::placement_delta`], recoverable without the
    /// stamped system in hand.
    pub fn placement_delta(&self) -> PlacementDelta {
        PlacementDelta {
            nodes: self.shift_nodes.clone(),
            per_ampere: self.shift_d.clone(),
        }
    }

    /// FNV-1a fingerprint of the *structure* this workspace assembles:
    /// dimension, shifted nodes, their `D` values, and the unshifted base
    /// diagonal. Two workspaces with equal fingerprints stamp the same
    /// matrix family `i ↦ G − i·D` (up to the off-diagonal entries, which
    /// are fixed by the model the workspace was built from); two different
    /// placements virtually always differ. Solver caches fold this into
    /// their key so a factor produced for one matrix lineage can never be
    /// replayed for another — see the PR-7 cache-poisoning regression
    /// tests.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        let mut eat = |bits: u64| {
            for b in bits.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.matrix.rows() as u64);
        eat(self.shift_nodes.len() as u64);
        for &k in &self.shift_nodes {
            eat(k as u64);
        }
        for &d in &self.shift_d {
            eat(d.to_bits());
        }
        for &g in &self.base_diag {
            eat(g.to_bits());
        }
        h
    }
}

/// The structured rank-k perturbation a TEC placement induces on the
/// passive conductance matrix `G`.
///
/// A placement touches only its junction nodes: at supply current `i` the
/// system matrix is `G + Σ_k δ_k(i)·e_k·e_kᵀ` with `δ_k(i) = −i·d_k` (Eq. 4
/// restricted to the nonzero support of `D`). [`PlacementDelta::deltas_at`]
/// materializes the `(node, δ)` pairs for one operating point in the exact
/// form `tecopt_linalg::DiagonalUpdate` consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementDelta {
    /// Junction nodes in ascending order.
    nodes: Vec<usize>,
    /// `D` diagonal values at `nodes`: `+α` hot, `−α` cold.
    per_ampere: Vec<f64>,
}

impl PlacementDelta {
    /// The perturbed nodes (ascending: the nonzero support of `D`).
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Rank of the perturbation (`2 × #devices`).
    pub fn rank(&self) -> usize {
        self.nodes.len()
    }

    /// `D` values per node: the per-ampere diagonal shift is `−d_k`.
    pub fn per_ampere(&self) -> &[f64] {
        &self.per_ampere
    }

    /// The `(node, δ_k)` pairs at supply current `i`: `δ_k = −i·d_k`,
    /// relative to the passive matrix `G`.
    pub fn deltas_at(&self, current: Amperes) -> Vec<(usize, f64)> {
        let i = current.value();
        self.nodes
            .iter()
            .zip(&self.per_ampere)
            .map(|(&k, &d)| (k, -i * d))
            .collect()
    }
}

fn nonnegative(current: Amperes) -> Result<f64, DeviceError> {
    let i = current.value();
    if i < 0.0 || !i.is_finite() {
        return Err(DeviceError::NegativeCurrent { value: i });
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecopt_linalg::Cholesky;

    fn config() -> PackageConfig {
        PackageConfig::hotspot41_like(4, 4).unwrap()
    }

    fn system(tiles: &[TileIndex]) -> StampedSystem {
        StampedSystem::new(&config(), TecParams::superlattice_thin_film(), tiles).unwrap()
    }

    #[test]
    fn passive_system_has_zero_d() {
        let s = system(&[]);
        assert_eq!(s.device_count(), 0);
        assert!(s.d_diagonal().iter().all(|&x| x == 0.0));
        assert!(s.joule_nodes().is_empty());
        let m = s.system_matrix(Amperes(10.0)).unwrap();
        assert_eq!(m, *s.model().g_matrix());
    }

    #[test]
    fn d_has_signed_alpha_at_junctions() {
        let tiles = [TileIndex::new(0, 0), TileIndex::new(2, 3)];
        let s = system(&tiles);
        let alpha = s.params().seebeck().value();
        assert_eq!(s.device_count(), 2);
        assert_eq!(s.junctions().len(), 2);
        let nonzero: Vec<f64> = s
            .d_diagonal()
            .iter()
            .copied()
            .filter(|&x| x != 0.0)
            .collect();
        assert_eq!(nonzero.len(), 4);
        for &(cold, hot) in s.junctions() {
            assert_eq!(s.d_diagonal()[cold], -alpha);
            assert_eq!(s.d_diagonal()[hot], alpha);
        }
    }

    #[test]
    fn joule_power_enters_both_junction_nodes() {
        let s = system(&[TileIndex::new(1, 1)]);
        let powers = vec![Watts(0.0); 16];
        let i = Amperes(4.0);
        let p0 = s.power_vector(&powers, Amperes(0.0)).unwrap();
        let p4 = s.power_vector(&powers, i).unwrap();
        let joule = 0.5 * s.params().resistance().value() * 16.0;
        let mut diffs = 0;
        for k in 0..p0.len() {
            let d = p4[k] - p0[k];
            if d != 0.0 {
                assert!((d - joule).abs() < 1e-15);
                diffs += 1;
            }
        }
        assert_eq!(diffs, 2);
    }

    #[test]
    fn moderate_current_cools_the_covered_tile() {
        // End-to-end sanity: solving (G - iD) theta = p(i) with a moderate
        // current lowers the hotspot temperature relative to i = 0.
        let cfg = config();
        let tile = TileIndex::new(1, 1);
        let s = StampedSystem::new(&cfg, TecParams::superlattice_thin_film(), &[tile]).unwrap();
        let mut powers = vec![Watts(0.0); 16];
        powers[5] = Watts(0.7);
        let solve = |i: Amperes| -> f64 {
            let m = s.system_matrix(i).unwrap();
            let p = s.power_vector(&powers, i).unwrap();
            let theta = Cholesky::factor(&m).unwrap().solve(&p).unwrap();
            let temps: Vec<Kelvin> = theta.into_iter().map(Kelvin).collect();
            s.model().peak_silicon_temperature(&temps).value()
        };
        let t0 = solve(Amperes(0.0));
        let t3 = solve(Amperes(3.0));
        assert!(t3 < t0, "3 A should cool the hotspot: {t3} !< {t0}");
    }

    #[test]
    fn excessive_current_heats_instead() {
        // Far beyond the optimum, Joule heating and Peltier work dominate.
        let cfg = config();
        let tile = TileIndex::new(1, 1);
        let s = StampedSystem::new(&cfg, TecParams::superlattice_thin_film(), &[tile]).unwrap();
        let mut powers = vec![Watts(0.0); 16];
        powers[5] = Watts(0.7);
        let peak_at = |i: Amperes| -> Option<f64> {
            let m = s.system_matrix(i).unwrap();
            let p = s.power_vector(&powers, i).unwrap();
            let chol = Cholesky::factor(&m).ok()?;
            let theta = chol.solve(&p).unwrap();
            let temps: Vec<Kelvin> = theta.into_iter().map(Kelvin).collect();
            Some(s.model().peak_silicon_temperature(&temps).value())
        };
        let t0 = peak_at(Amperes(0.0)).unwrap();
        // Either the factorization fails (past runaway) or the peak exceeds
        // the uncooled peak.
        match peak_at(Amperes(60.0)) {
            None => {}
            Some(t60) => assert!(t60 > t0, "60 A should overheat: {t60} !> {t0}"),
        }
    }

    #[test]
    fn input_power_positive_and_grows_with_current() {
        let cfg = config();
        let s = StampedSystem::new(
            &cfg,
            TecParams::superlattice_thin_film(),
            &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        )
        .unwrap();
        let powers = vec![Watts(0.2); 16];
        let measure = |i: Amperes| -> Watts {
            let m = s.system_matrix(i).unwrap();
            let p = s.power_vector(&powers, i).unwrap();
            let theta = Cholesky::factor(&m).unwrap().solve(&p).unwrap();
            let temps: Vec<Kelvin> = theta.into_iter().map(Kelvin).collect();
            s.input_power(&temps, i).unwrap()
        };
        let p1 = measure(Amperes(1.0));
        let p5 = measure(Amperes(5.0));
        assert!(p1.value() > 0.0);
        assert!(p5 > p1);
    }

    #[test]
    fn workspace_matches_fresh_stamping_bit_for_bit() {
        let s = system(&[TileIndex::new(1, 1), TileIndex::new(2, 3)]);
        let powers = vec![Watts(0.1); 16];
        let mut ws = s.solve_workspace(&powers).unwrap();
        // Visit currents out of order to exercise in-place re-stamping.
        for i in [0.0, 3.5, 1.25, 3.5, 0.0, 7.0] {
            ws.set_current(Amperes(i)).unwrap();
            let m = s.system_matrix(Amperes(i)).unwrap();
            let p = s.power_vector(&powers, Amperes(i)).unwrap();
            assert_eq!(ws.matrix().as_slice(), m.as_slice(), "matrix at i = {i}");
            assert_eq!(ws.power(), &p[..], "power at i = {i}");
            assert_eq!(ws.current(), Amperes(i));
        }
        assert_eq!(ws.dim(), s.model().node_count());
        // Shifted entries cover exactly the junction nodes.
        let shifted: Vec<usize> = ws.shifted_entries().map(|(k, _)| k).collect();
        assert_eq!(shifted.len(), 4);
        for &(cold, hot) in s.junctions() {
            assert!(shifted.contains(&cold) && shifted.contains(&hot));
        }
    }

    #[test]
    fn placement_delta_reproduces_the_stamped_matrix() {
        let s = system(&[TileIndex::new(1, 1), TileIndex::new(2, 3)]);
        let delta = s.placement_delta();
        assert_eq!(delta.rank(), 4);
        assert_eq!(delta.nodes().len(), delta.per_ampere().len());
        assert!(delta.nodes().windows(2).all(|w| w[0] < w[1]));
        // G plus the structured deltas equals the stamped G - iD exactly.
        let i = Amperes(2.5);
        let mut rebuilt = s.model().g_matrix().clone();
        for (k, d) in delta.deltas_at(i) {
            rebuilt[(k, k)] += d;
        }
        let stamped = s.system_matrix(i).unwrap();
        assert_eq!(rebuilt.as_slice(), stamped.as_slice());
        // The workspace view agrees with the stamped-system view.
        let ws = s.solve_workspace(&[Watts(0.1); 16]).unwrap();
        assert_eq!(ws.placement_delta(), delta);
        // Passive system: empty perturbation.
        assert_eq!(system(&[]).placement_delta().rank(), 0);
    }

    #[test]
    fn structural_fingerprint_separates_placements_and_is_stable() {
        let a = system(&[TileIndex::new(1, 1)]);
        let b = system(&[TileIndex::new(2, 2)]);
        let powers = vec![Watts(0.1); 16];
        let fa = a.solve_workspace(&powers).unwrap().structural_fingerprint();
        let fb = b.solve_workspace(&powers).unwrap().structural_fingerprint();
        assert_ne!(fa, fb, "different placements must fingerprint apart");
        // Deterministic across rebuilds and invariant under set_current.
        let mut ws = a.solve_workspace(&powers).unwrap();
        assert_eq!(ws.structural_fingerprint(), fa);
        ws.set_current(Amperes(3.0)).unwrap();
        assert_eq!(ws.structural_fingerprint(), fa);
    }

    #[test]
    fn workspace_rejects_negative_current_and_keeps_state() {
        let s = system(&[TileIndex::new(1, 1)]);
        let mut ws = s.solve_workspace(&[Watts(0.1); 16]).unwrap();
        ws.set_current(Amperes(2.0)).unwrap();
        assert!(matches!(
            ws.set_current(Amperes(-1.0)),
            Err(DeviceError::NegativeCurrent { .. })
        ));
        assert_eq!(ws.current(), Amperes(2.0));
    }

    #[test]
    fn negative_current_rejected() {
        let s = system(&[TileIndex::new(0, 0)]);
        assert!(matches!(
            s.system_matrix(Amperes(-1.0)),
            Err(DeviceError::NegativeCurrent { .. })
        ));
        assert!(s.power_vector(&[Watts(0.0); 16], Amperes(-1.0)).is_err());
    }

    #[test]
    fn invalid_tiles_propagate_thermal_errors() {
        let err = StampedSystem::new(
            &config(),
            TecParams::superlattice_thin_film(),
            &[TileIndex::new(9, 9)],
        )
        .unwrap_err();
        assert!(matches!(err, DeviceError::Thermal(_)));
    }
}
