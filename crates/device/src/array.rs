//! Electrical aggregation of multiple devices.
//!
//! The paper's cooling system wires every deployed TEC "electrically in
//! series and thermally in parallel" (Fig. 1(b)) behind a single extra
//! package pin, so all devices share one supply current. This module
//! answers the electrical questions about such a chain: terminal voltage,
//! total input power and the pin-level operating point.

use crate::{DeviceError, OperatingPoint, TecParams};
use tecopt_units::{Amperes, Volts, Watts};

/// A series-connected chain of identical TEC devices sharing one supply
/// current.
///
/// ```
/// use tecopt_device::{OperatingPoint, TecArray, TecParams};
/// use tecopt_units::{Amperes, Kelvin};
///
/// # fn main() -> Result<(), tecopt_device::DeviceError> {
/// let array = TecArray::new(TecParams::superlattice_thin_film(), 16)?;
/// let op = OperatingPoint { current: Amperes(6.0), cold: Kelvin(353.0), hot: Kelvin(363.0) };
/// let total = array.input_power(&[op; 16])?;
/// assert!(total.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TecArray {
    params: TecParams,
    count: usize,
}

impl TecArray {
    /// Creates an array of `count` identical devices.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyArray`] if `count` is zero.
    pub fn new(params: TecParams, count: usize) -> Result<TecArray, DeviceError> {
        if count == 0 {
            return Err(DeviceError::EmptyArray);
        }
        Ok(TecArray { params, count })
    }

    /// Device parameters.
    pub fn params(&self) -> &TecParams {
        &self.params
    }

    /// Number of devices in the chain.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total series resistance of the chain.
    pub fn series_resistance(&self) -> tecopt_units::Ohms {
        self.params.resistance() * self.count as f64
    }

    /// Terminal voltage of the chain at per-device operating points:
    /// each device contributes `i·r + α·Δθ` (ohmic plus Seebeck back-EMF).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OperatingPointCount`] unless exactly one
    /// operating point per device is supplied, all with the same current.
    pub fn terminal_voltage(&self, ops: &[OperatingPoint]) -> Result<Volts, DeviceError> {
        self.check_ops(ops)?;
        let r = self.params.resistance().value();
        let a = self.params.seebeck().value();
        let v = ops
            .iter()
            .map(|op| op.current.value() * r + a * op.delta().value())
            .sum();
        Ok(Volts(v))
    }

    /// Total electrical input power of the chain (sum of Eq. 3 over
    /// devices) — the `P_TEC` column of Table I.
    ///
    /// # Errors
    ///
    /// Same contract as [`TecArray::terminal_voltage`].
    pub fn input_power(&self, ops: &[OperatingPoint]) -> Result<Watts, DeviceError> {
        self.check_ops(ops)?;
        Ok(ops.iter().map(|op| self.params.input_power(*op)).sum())
    }

    /// Net heat removed from the die side by the whole array (sum of cold
    /// side fluxes).
    ///
    /// # Errors
    ///
    /// Same contract as [`TecArray::terminal_voltage`].
    pub fn total_cold_side_flux(&self, ops: &[OperatingPoint]) -> Result<Watts, DeviceError> {
        self.check_ops(ops)?;
        Ok(ops.iter().map(|op| self.params.cold_side_flux(*op)).sum())
    }

    fn check_ops(&self, ops: &[OperatingPoint]) -> Result<(), DeviceError> {
        if ops.len() != self.count {
            return Err(DeviceError::OperatingPointCount {
                expected: self.count,
                actual: ops.len(),
            });
        }
        let i0 = ops[0].current;
        if ops.iter().any(|op| op.current != i0) {
            return Err(DeviceError::MixedCurrents);
        }
        Ok(())
    }

    /// The shared supply current implied by a set of operating points.
    ///
    /// # Errors
    ///
    /// Same contract as [`TecArray::terminal_voltage`].
    pub fn shared_current(&self, ops: &[OperatingPoint]) -> Result<Amperes, DeviceError> {
        self.check_ops(ops)?;
        Ok(ops[0].current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecopt_units::Kelvin;

    fn array(n: usize) -> TecArray {
        TecArray::new(TecParams::superlattice_thin_film(), n).unwrap()
    }

    fn op(i: f64, c: f64, h: f64) -> OperatingPoint {
        OperatingPoint {
            current: Amperes(i),
            cold: Kelvin(c),
            hot: Kelvin(h),
        }
    }

    #[test]
    fn empty_array_rejected() {
        assert!(matches!(
            TecArray::new(TecParams::superlattice_thin_film(), 0),
            Err(DeviceError::EmptyArray)
        ));
    }

    #[test]
    fn series_resistance_scales() {
        let a = array(16);
        assert!(
            (a.series_resistance().value() - 16.0 * a.params().resistance().value()).abs() < 1e-15
        );
    }

    #[test]
    fn voltage_power_consistency() {
        // With identical junction temperatures, P = V·I exactly.
        let a = array(4);
        let ops = [op(6.0, 350.0, 362.0); 4];
        let v = a.terminal_voltage(&ops).unwrap();
        let p = a.input_power(&ops).unwrap();
        assert!((v.value() * 6.0 - p.value()).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_and_currents_rejected() {
        let a = array(3);
        assert!(matches!(
            a.input_power(&[op(1.0, 350.0, 351.0); 2]),
            Err(DeviceError::OperatingPointCount {
                expected: 3,
                actual: 2
            })
        ));
        let mixed = [
            op(1.0, 350.0, 351.0),
            op(2.0, 350.0, 351.0),
            op(1.0, 350.0, 351.0),
        ];
        assert!(matches!(
            a.terminal_voltage(&mixed),
            Err(DeviceError::MixedCurrents)
        ));
    }

    #[test]
    fn total_flux_sums_devices() {
        let a = array(2);
        let ops = [op(5.0, 350.0, 355.0), op(5.0, 356.0, 360.0)];
        let total = a.total_cold_side_flux(&ops).unwrap();
        let sum = a.params().cold_side_flux(ops[0]) + a.params().cold_side_flux(ops[1]);
        assert!((total.value() - sum.value()).abs() < 1e-12);
        assert_eq!(a.shared_current(&ops).unwrap(), Amperes(5.0));
    }
}
