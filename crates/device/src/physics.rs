//! Device-level thermoelectric relations (Eqs. 1–3 of the paper).
//!
//! These closed forms describe one device in isolation, given its junction
//! temperatures; the network model in `tecopt-thermal`/`tecopt` couples the
//! junctions to the package instead of prescribing them. The isolated
//! relations remain useful for parameter sanity checks (experiment E8) and
//! for classical quantities like the COP and the maximum temperature
//! differential.

use crate::TecParams;
use tecopt_units::{Amperes, Kelvin, Watts};

/// Operating state of a single device: supply current and junction
/// temperatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply current `i`.
    pub current: Amperes,
    /// Cold-junction absolute temperature `θ_c`.
    pub cold: Kelvin,
    /// Hot-junction absolute temperature `θ_h`.
    pub hot: Kelvin,
}

impl OperatingPoint {
    /// Junction temperature difference `Δθ = θ_h − θ_c`.
    pub fn delta(&self) -> Kelvin {
        self.hot - self.cold
    }
}

impl TecParams {
    /// Heat flux absorbed at the cold side (Eq. 1):
    /// `q_c = α·i·θ_c − r·i²/2 − κ·(θ_h − θ_c)`.
    ///
    /// ```
    /// use tecopt_device::{OperatingPoint, TecParams};
    /// use tecopt_units::{Amperes, Kelvin};
    ///
    /// let tec = TecParams::superlattice_thin_film();
    /// let op = OperatingPoint { current: Amperes(5.0), cold: Kelvin(350.0), hot: Kelvin(355.0) };
    /// // Pumping against a small gradient absorbs net heat.
    /// assert!(tec.cold_side_flux(op).value() > 0.0);
    /// ```
    pub fn cold_side_flux(&self, op: OperatingPoint) -> Watts {
        let i = op.current.value();
        let peltier = self.seebeck().value() * i * op.cold.value();
        let joule = 0.5 * self.resistance().value() * i * i;
        let leak = self.conductance().value() * op.delta().value();
        Watts(peltier - joule - leak)
    }

    /// Heat flux released at the hot side (Eq. 2):
    /// `q_h = α·i·θ_h + r·i²/2 − κ·(θ_h − θ_c)`.
    pub fn hot_side_flux(&self, op: OperatingPoint) -> Watts {
        let i = op.current.value();
        let peltier = self.seebeck().value() * i * op.hot.value();
        let joule = 0.5 * self.resistance().value() * i * i;
        let leak = self.conductance().value() * op.delta().value();
        Watts(peltier + joule - leak)
    }

    /// Electrical input power (Eq. 3): `p = q_h − q_c = r·i² + α·i·Δθ`.
    ///
    /// In steady state this power is converted to heat inside the package —
    /// the root cause of the full-cover swing loss in Table I.
    pub fn input_power(&self, op: OperatingPoint) -> Watts {
        let i = op.current.value();
        Watts(self.resistance().value() * i * i + self.seebeck().value() * i * op.delta().value())
    }

    /// Coefficient of performance `COP = q_c / p`, or `None` when no
    /// electrical power is drawn (`i = 0`).
    ///
    /// A COP of zero marks the runaway boundary: "λ_m represents the input
    /// current level which causes the active cooling system to have zero
    /// heat pumping capability … this occurs when the coefficient of
    /// performance of the thermoelectric cooler becomes zero" (Sec. V.C.1).
    pub fn cop(&self, op: OperatingPoint) -> Option<f64> {
        let p = self.input_power(op).value();
        if p <= 0.0 {
            return None;
        }
        Some(self.cold_side_flux(op).value() / p)
    }

    /// Current maximizing the cold-side flux at fixed junction temperatures:
    /// `i* = α·θ_c / r` (zero of `∂q_c/∂i`).
    pub fn max_flux_current(&self, cold: Kelvin) -> Amperes {
        Amperes(self.seebeck().value() * cold.value() / self.resistance().value())
    }

    /// The cold-side flux at [`TecParams::max_flux_current`]:
    /// `q_c,max = α²·θ_c²/(2r) − κ·Δθ`.
    pub fn max_cold_side_flux(&self, cold: Kelvin, delta: Kelvin) -> Watts {
        let a = self.seebeck().value();
        Watts(
            0.5 * a * a * cold.value() * cold.value() / self.resistance().value()
                - self.conductance().value() * delta.value(),
        )
    }

    /// Maximum sustainable junction differential (where `q_c,max = 0`):
    /// `Δθ_max = Z·θ_c²/2` with `Z = α²/(r·κ)` — the classical
    /// thermoelectric limit.
    pub fn max_temperature_difference(&self, cold: Kelvin) -> Kelvin {
        Kelvin(0.5 * self.figure_of_merit_z() * cold.value() * cold.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tec() -> TecParams {
        TecParams::superlattice_thin_film()
    }

    fn op(i: f64, c: f64, h: f64) -> OperatingPoint {
        OperatingPoint {
            current: Amperes(i),
            cold: Kelvin(c),
            hot: Kelvin(h),
        }
    }

    #[test]
    fn energy_conservation_qh_minus_qc_is_input_power() {
        let t = tec();
        for (i, c, h) in [
            (2.0, 340.0, 350.0),
            (7.5, 355.0, 370.0),
            (0.0, 350.0, 360.0),
        ] {
            let o = op(i, c, h);
            let lhs = t.hot_side_flux(o) - t.cold_side_flux(o);
            let rhs = t.input_power(o);
            assert!((lhs.value() - rhs.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_current_is_pure_conduction() {
        let t = tec();
        let o = op(0.0, 350.0, 360.0);
        let qc = t.cold_side_flux(o);
        // Heat leaks backwards from hot to cold: negative absorbed flux.
        assert!((qc.value() + t.conductance().value() * 10.0).abs() < 1e-12);
        assert_eq!(t.input_power(o), Watts(0.0));
        assert!(t.cop(o).is_none());
    }

    #[test]
    fn max_flux_current_is_stationary_point() {
        let t = tec();
        let c = Kelvin(350.0);
        let i_star = t.max_flux_current(c);
        let h = Kelvin(352.0);
        let eps = 1e-3;
        let q0 = t
            .cold_side_flux(op(i_star.value(), c.value(), h.value()))
            .value();
        let qp = t
            .cold_side_flux(op(i_star.value() + eps, c.value(), h.value()))
            .value();
        let qm = t
            .cold_side_flux(op(i_star.value() - eps, c.value(), h.value()))
            .value();
        assert!(q0 >= qp && q0 >= qm, "q_c not maximal at i* = {i_star}");
    }

    #[test]
    fn max_flux_formula_matches_direct_evaluation() {
        let t = tec();
        let c = Kelvin(350.0);
        let d = Kelvin(5.0);
        let i_star = t.max_flux_current(c);
        let direct = t.cold_side_flux(op(i_star.value(), c.value(), c.value() + d.value()));
        let formula = t.max_cold_side_flux(c, d);
        assert!((direct.value() - formula.value()).abs() < 1e-10);
    }

    #[test]
    fn max_delta_matches_chowdhury_scale() {
        // The on-demand cooling swing reported for the superlattice coolers
        // is 5.4-9.6 K in-package; the *material-level* adiabatic limit
        // delta_max = Z*theta^2/2 = ZT*theta/2 must comfortably exceed that.
        // At the preset's ZT ~ 3.3 the formula gives ~580 K — far beyond
        // anything a real junction sustains (the linear model ignores the
        // temperature dependence of the material), but in the model the
        // reachable swing is clipped by the contact conductances, which the
        // stamped-system tests verify.
        let t = tec();
        let dmax = t.max_temperature_difference(Kelvin(350.0));
        assert!(
            dmax.value() > 20.0 && dmax.value() < 800.0,
            "delta_max = {dmax} outside the modeled superlattice range"
        );
    }

    #[test]
    fn cop_decreases_with_current_beyond_optimum() {
        let t = tec();
        let c = 350.0;
        let h = 352.0;
        let i_star = t.max_flux_current(Kelvin(c)).value();
        let cop_mid = t.cop(op(0.3 * i_star, c, h)).unwrap();
        let cop_high = t.cop(op(1.5 * i_star, c, h)).unwrap();
        assert!(cop_mid > cop_high);
    }

    #[test]
    fn pumping_against_gradient_needs_current() {
        let t = tec();
        // Large gradient, no current: flux is negative (leak).
        assert!(t.cold_side_flux(op(0.0, 330.0, 370.0)).value() < 0.0);
        // Moderate current rescues it.
        let i = 0.5 * t.max_flux_current(Kelvin(330.0)).value();
        assert!(t.cold_side_flux(op(i, 330.0, 370.0)).value() > 0.0);
    }

    #[test]
    fn operating_point_delta() {
        let o = op(1.0, 340.0, 355.0);
        assert!((o.delta().value() - 15.0).abs() < 1e-12);
    }
}
