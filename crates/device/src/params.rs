use crate::DeviceError;
use tecopt_thermal::TwoPortSpec;
use tecopt_units::{Amperes, Kelvin, Meters, Ohms, SquareMeters, VoltsPerKelvin, WattsPerKelvin};

/// Lumped physical parameters of one thin-film TEC device.
///
/// The device model follows Sec. III.A of the paper: a Seebeck coefficient
/// `α`, an electrical resistance `r` and a thermal conductance `κ` fully
/// characterize the active behaviour (Eqs. 1–3); two contact conductances
/// `g_c`, `g_h` couple the cold/hot faces into the package (Fig. 4). The
/// paper notes these contact legs "end up playing an important role in the
/// thermal runaway problem".
///
/// ```
/// use tecopt_device::TecParams;
///
/// let tec = TecParams::superlattice_thin_film();
/// // Physically plausible figure of merit for a Bi2Te3 superlattice.
/// let zt = tec.figure_of_merit_zt(tecopt_units::Kelvin(350.0));
/// assert!(zt > 0.3 && zt < 3.6, "ZT = {zt}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TecParams {
    seebeck: VoltsPerKelvin,
    resistance: Ohms,
    conductance: WattsPerKelvin,
    cold_contact: WattsPerKelvin,
    hot_contact: WattsPerKelvin,
    side: Meters,
}

impl TecParams {
    /// Creates a parameter set after validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any value is nonpositive
    /// or non-finite.
    pub fn new(
        seebeck: VoltsPerKelvin,
        resistance: Ohms,
        conductance: WattsPerKelvin,
        cold_contact: WattsPerKelvin,
        hot_contact: WattsPerKelvin,
        side: Meters,
    ) -> Result<TecParams, DeviceError> {
        let checks: [(f64, &str); 6] = [
            (seebeck.value(), "seebeck coefficient"),
            (resistance.value(), "electrical resistance"),
            (conductance.value(), "thermal conductance"),
            (cold_contact.value(), "cold contact conductance"),
            (hot_contact.value(), "hot contact conductance"),
            (side.value(), "lateral side"),
        ];
        for (v, what) in checks {
            tecopt_units::validate::positive(what, v)?;
        }
        Ok(TecParams {
            seebeck,
            resistance,
            conductance,
            cold_contact,
            hot_contact,
            side,
        })
    }

    /// The super-lattice thin-film device the paper's experiments use
    /// (after Chowdhury et al., Nature Nanotechnology 2009).
    ///
    /// Derivation of the lumped values (documented per `DESIGN.md` §2 and
    /// `EXPERIMENTS.md`): 0.5 mm × 0.5 mm lateral footprint (a 7×7 array
    /// measures ~3.5 mm × 3.5 mm); ~8 µm Bi₂Te₃/Sb₂Te₃ superlattice with
    /// film conductivity ~1.2 W/(m·K) giving `κ = k·A/t ≈ 0.0375 W/K`;
    /// module Seebeck coefficient 1.0 mV/K (≈2 series couples of the
    /// ~0.45 mV/K superlattice material) and resistance 2.8 mΩ. The implied
    /// material figure of merit `ZT = α²θ/(r·κ) ≈ 3.3` at 350 K sits at the
    /// optimistic end of the superlattice claims (Venkatasubramanian et al.
    /// report ZT ≈ 2.4 at 300 K; Chowdhury et al. build on those films) —
    /// most of that margin is consumed by the deliberately conservative
    /// contact conductances of 0.022 W/K per face (~1.1×10⁻⁵ K·m²/W
    /// interface resistivity), which make the *system-level* COP low, as in
    /// the paper's measurements. Calibrated so Table I reproduces:
    /// I_opt ≈ 3–7 A, P_TEC ≈ 1–4 W, greedy deployments of a handful of
    /// devices, and a positive full-cover swing loss on every benchmark.
    // The preset constants are fixed and positive; `new` accepts them.
    #[allow(clippy::expect_used)]
    pub fn superlattice_thin_film() -> TecParams {
        TecParams::new(
            VoltsPerKelvin(1.0e-3),
            Ohms(2.8e-3),
            WattsPerKelvin(0.0375),
            WattsPerKelvin(0.022),
            WattsPerKelvin(0.022),
            Meters::from_millimeters(0.5),
        )
        .expect("preset parameters are valid")
    }

    /// Seebeck coefficient `α` of the device.
    pub fn seebeck(&self) -> VoltsPerKelvin {
        self.seebeck
    }

    /// Electrical resistance `r`.
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// Hot-to-cold thermal conductance `κ`.
    pub fn conductance(&self) -> WattsPerKelvin {
        self.conductance
    }

    /// Cold-face contact conductance `g_c`.
    pub fn cold_contact(&self) -> WattsPerKelvin {
        self.cold_contact
    }

    /// Hot-face contact conductance `g_h`.
    pub fn hot_contact(&self) -> WattsPerKelvin {
        self.hot_contact
    }

    /// Lateral side length (devices are square; one device covers one die
    /// tile in the paper's tiling).
    pub fn side(&self) -> Meters {
        self.side
    }

    /// Device footprint area.
    pub fn area(&self) -> SquareMeters {
        self.side * self.side
    }

    /// Thermoelectric figure of merit `Z = α²/(r·κ)` in 1/K.
    pub fn figure_of_merit_z(&self) -> f64 {
        let a = self.seebeck.value();
        a * a / (self.resistance.value() * self.conductance.value())
    }

    /// Dimensionless figure of merit `ZT` at absolute temperature `theta`.
    pub fn figure_of_merit_zt(&self, theta: Kelvin) -> f64 {
        self.figure_of_merit_z() * theta.value()
    }

    /// The passive two-port element this device stamps into the TIM layer:
    /// `g_c` — `κ` — `g_h` (Fig. 4 without the current-dependent terms).
    pub fn two_port_spec(&self) -> TwoPortSpec {
        TwoPortSpec {
            lower_contact: self.cold_contact,
            mid: self.conductance,
            upper_contact: self.hot_contact,
        }
    }

    /// Returns a copy with both contact conductances scaled by `factor`
    /// (used by the contact-resistance ablation experiment).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the factor is
    /// nonpositive.
    pub fn with_contact_scale(&self, factor: f64) -> Result<TecParams, DeviceError> {
        TecParams::new(
            self.seebeck,
            self.resistance,
            self.conductance,
            self.cold_contact * factor,
            self.hot_contact * factor,
            self.side,
        )
    }

    /// Returns a copy with a different Seebeck coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for nonpositive values.
    pub fn with_seebeck(&self, seebeck: VoltsPerKelvin) -> Result<TecParams, DeviceError> {
        TecParams::new(
            seebeck,
            self.resistance,
            self.conductance,
            self.cold_contact,
            self.hot_contact,
            self.side,
        )
    }

    /// Returns a copy with a different electrical resistance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for nonpositive values.
    pub fn with_resistance(&self, resistance: Ohms) -> Result<TecParams, DeviceError> {
        TecParams::new(
            self.seebeck,
            resistance,
            self.conductance,
            self.cold_contact,
            self.hot_contact,
            self.side,
        )
    }

    /// The Peltier "conductance" `α·i` entering the network model at a given
    /// supply current.
    pub fn peltier_conductance(&self, current: Amperes) -> WattsPerKelvin {
        self.seebeck * current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_self_consistent() {
        let t = TecParams::superlattice_thin_film();
        assert!((t.side().to_millimeters() - 0.5).abs() < 1e-12);
        assert!((t.area().to_square_centimeters() - 0.0025).abs() < 1e-12);
        let z = t.figure_of_merit_z();
        assert!((z * 350.0 - t.figure_of_merit_zt(Kelvin(350.0))).abs() < 1e-12);
        // kappa = k A / t for 1.2 W/mK over 8 um.
        assert!((t.conductance().value() - 1.2 * 0.25e-6 / 8e-6).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let t = TecParams::superlattice_thin_film();
        assert!(matches!(
            TecParams::new(
                VoltsPerKelvin(0.0),
                t.resistance(),
                t.conductance(),
                t.cold_contact(),
                t.hot_contact(),
                t.side()
            ),
            Err(DeviceError::InvalidParameter { .. })
        ));
        assert!(t.with_contact_scale(-1.0).is_err());
        assert!(t.with_seebeck(VoltsPerKelvin(f64::NAN)).is_err());
        assert!(t.with_resistance(Ohms(-1.0)).is_err());
    }

    #[test]
    fn contact_scaling() {
        let t = TecParams::superlattice_thin_film();
        let scaled = t.with_contact_scale(2.0).unwrap();
        assert!((scaled.cold_contact().value() - 2.0 * t.cold_contact().value()).abs() < 1e-15);
        assert!((scaled.hot_contact().value() - 2.0 * t.hot_contact().value()).abs() < 1e-15);
        // Everything else unchanged.
        assert_eq!(scaled.seebeck(), t.seebeck());
        assert_eq!(scaled.resistance(), t.resistance());
    }

    #[test]
    fn two_port_spec_matches_fields() {
        let t = TecParams::superlattice_thin_film();
        let s = t.two_port_spec();
        assert_eq!(s.lower_contact, t.cold_contact());
        assert_eq!(s.mid, t.conductance());
        assert_eq!(s.upper_contact, t.hot_contact());
    }

    #[test]
    fn peltier_conductance_scales_with_current() {
        let t = TecParams::superlattice_thin_film();
        let g1 = t.peltier_conductance(Amperes(1.0));
        let g5 = t.peltier_conductance(Amperes(5.0));
        assert!((g5.value() - 5.0 * g1.value()).abs() < 1e-15);
    }
}
