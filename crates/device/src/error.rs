use core::fmt;
use tecopt_thermal::ThermalError;

/// Errors produced by the TEC device layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A physical parameter is nonpositive or non-finite.
    InvalidParameter {
        /// Which parameter.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A [`TecArray`](crate::TecArray) needs at least one device.
    EmptyArray,
    /// Wrong number of per-device operating points supplied.
    OperatingPointCount {
        /// Devices in the array.
        expected: usize,
        /// Operating points supplied.
        actual: usize,
    },
    /// Series-connected devices must share one supply current.
    MixedCurrents,
    /// Supply currents are nonnegative by construction (the devices are
    /// polarized for cooling).
    NegativeCurrent {
        /// The offending current in amperes.
        value: f64,
    },
    /// An underlying thermal-model operation failed.
    Thermal(ThermalError),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter { what, value } => {
                write!(f, "invalid device parameter: {what} = {value}")
            }
            DeviceError::EmptyArray => write!(f, "a TEC array needs at least one device"),
            DeviceError::OperatingPointCount { expected, actual } => {
                write!(f, "expected {expected} operating points, got {actual}")
            }
            DeviceError::MixedCurrents => {
                write!(f, "series-connected devices must share one supply current")
            }
            DeviceError::NegativeCurrent { value } => {
                write!(f, "supply current must be nonnegative, got {value} A")
            }
            DeviceError::Thermal(e) => write!(f, "thermal model failure: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Thermal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for DeviceError {
    fn from(e: ThermalError) -> DeviceError {
        DeviceError::Thermal(e)
    }
}

impl From<tecopt_units::ValidationError> for DeviceError {
    fn from(e: tecopt_units::ValidationError) -> DeviceError {
        DeviceError::InvalidParameter {
            what: match e.index {
                Some(i) => format!("{}[{i}]", e.what),
                None => e.what,
            },
            value: e.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DeviceError::EmptyArray.to_string().contains("at least one"));
        assert!(DeviceError::MixedCurrents.to_string().contains("share"));
        assert!(DeviceError::NegativeCurrent { value: -1.0 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn source_chains_to_thermal() {
        use std::error::Error;
        let e = DeviceError::Thermal(ThermalError::InvalidConfig("x".into()));
        assert!(e.source().is_some());
        assert!(DeviceError::EmptyArray.source().is_none());
    }
}
