//! Thin-film thermoelectric cooler (TEC) device physics and thermal-network
//! stamping.
//!
//! A TEC device is a pair of dissimilar semiconductor strips connected
//! electrically in series and thermally in parallel; driving a current `i`
//! through it pumps heat from the cold side to the hot side (Peltier effect)
//! at the cost of Joule heating `r·i²` and back-conduction `κ·Δθ`
//! (Sec. III.A of the paper, Eqs. 1–3).
//!
//! - [`TecParams`] — lumped device parameters with the
//!   [`superlattice_thin_film`](TecParams::superlattice_thin_film) preset
//!   used throughout the paper's experiments,
//! - [`OperatingPoint`] and the flux/COP methods — the isolated-device
//!   relations (Eqs. 1–3),
//! - [`TecArray`] — electrical aggregation of series-connected devices
//!   behind a single package pin (Fig. 1(b)),
//! - [`StampedSystem`] — a package model with devices spliced into the TIM
//!   layer, exposing the `(G, D, p(i))` triple consumed by the optimizer.
//!
//! ```
//! use tecopt_device::{OperatingPoint, TecParams};
//! use tecopt_units::{Amperes, Kelvin};
//!
//! let tec = TecParams::superlattice_thin_film();
//! let op = OperatingPoint {
//!     current: Amperes(5.0),
//!     cold: Kelvin(350.0),
//!     hot: Kelvin(356.0),
//! };
//! let qc = tec.cold_side_flux(op);
//! let p = tec.input_power(op);
//! assert!(qc.value() > 0.0 && p.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

mod array;
mod error;
mod params;
mod physics;
mod stamp;

pub use array::TecArray;
pub use error::DeviceError;
pub use params::TecParams;
pub use physics::OperatingPoint;
pub use stamp::{PlacementDelta, SolveWorkspace, StampedSystem};
