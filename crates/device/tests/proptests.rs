//! Property-based tests for the TEC device layer.

use proptest::prelude::*;
use tecopt_device::{OperatingPoint, StampedSystem, TecParams};
use tecopt_thermal::{PackageConfig, TileIndex};
use tecopt_units::{Amperes, Kelvin, Watts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// First law at the device: q_h − q_c = p_in for every operating point
    /// (Eqs. 1–3 are consistent by construction; this pins the code to it).
    #[test]
    fn device_energy_conservation(
        i in 0.0f64..20.0,
        cold in 250.0f64..400.0,
        dt in -30.0f64..60.0,
    ) {
        let tec = TecParams::superlattice_thin_film();
        let op = OperatingPoint {
            current: Amperes(i),
            cold: Kelvin(cold),
            hot: Kelvin(cold + dt),
        };
        let lhs = tec.hot_side_flux(op).value() - tec.cold_side_flux(op).value();
        let rhs = tec.input_power(op).value();
        prop_assert!((lhs - rhs).abs() < 1e-10 * rhs.abs().max(1.0));
    }

    /// The COP never exceeds the device's own pumping identity: when
    /// defined, q_c = COP · p_in.
    #[test]
    fn cop_identity(i in 0.5f64..15.0, dt in 1.0f64..40.0) {
        let tec = TecParams::superlattice_thin_film();
        let op = OperatingPoint {
            current: Amperes(i),
            cold: Kelvin(350.0),
            hot: Kelvin(350.0 + dt),
        };
        if let Some(cop) = tec.cop(op) {
            let back = cop * tec.input_power(op).value();
            prop_assert!((back - tec.cold_side_flux(op).value()).abs() < 1e-9);
        }
    }

    /// Stamped D diagonals always pair +alpha (hot) with -alpha (cold) and
    /// sum to zero.
    #[test]
    fn stamped_d_is_balanced(pick in proptest::collection::btree_set(0usize..16, 1..6)) {
        let config = PackageConfig::hotspot41_like(4, 4).unwrap();
        let tiles: Vec<TileIndex> = pick
            .into_iter()
            .map(|k| TileIndex::new(k / 4, k % 4))
            .collect();
        let s = StampedSystem::new(
            &config,
            TecParams::superlattice_thin_film(),
            &tiles,
        ).unwrap();
        let d = s.d_diagonal();
        let sum: f64 = d.iter().sum();
        prop_assert!(sum.abs() < 1e-15);
        let nonzero = d.iter().filter(|&&x| x != 0.0).count();
        prop_assert_eq!(nonzero, 2 * tiles.len());
    }

    /// The power vector grows quadratically with current at the junctions
    /// and nowhere else.
    #[test]
    fn joule_scaling(i in 0.1f64..10.0) {
        let config = PackageConfig::hotspot41_like(4, 4).unwrap();
        let s = StampedSystem::new(
            &config,
            TecParams::superlattice_thin_film(),
            &[TileIndex::new(2, 2)],
        ).unwrap();
        let powers = vec![Watts(0.0); 16];
        let p0 = s.power_vector(&powers, Amperes(0.0)).unwrap();
        let p1 = s.power_vector(&powers, Amperes(i)).unwrap();
        let p2 = s.power_vector(&powers, Amperes(2.0 * i)).unwrap();
        for k in 0..p0.len() {
            let d1 = p1[k] - p0[k];
            let d2 = p2[k] - p0[k];
            // Quadratic: doubling the current quadruples the Joule term.
            prop_assert!((d2 - 4.0 * d1).abs() < 1e-12 * d1.abs().max(1e-12));
        }
    }
}
