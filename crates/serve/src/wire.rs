//! The line-framed wire protocol and its dependency-free codec.
//!
//! One frame is one `\n`-terminated UTF-8 line of space-separated fields.
//! Floating-point payloads travel as the bit-exact 16-digit hex encoding
//! of `tecopt::supervise` (`hex_f64`), so a value decodes to the same
//! bits it was encoded from — responses are reproducible across the wire.
//!
//! ```text
//! client:  req <key|-> <deadline_ms|-> steady <current>
//!          req <key|-> <deadline_ms|-> runaway <lambda_tol> <f1> [<f2> ...]
//!          req <key|-> <deadline_ms|-> designer <r:c[,r:c...][;r:c...]>
//! server:  ok  <key|-> <body...>
//!          err <key|-> <code> <message...>
//! fleet:   ping <nonce>                 -> pong <nonce>   (health checks)
//!          #repl <req_fp> <body_fp> <key> ok - <body...>  (one-way)
//! ```
//!
//! `#`-prefixed frames are **one-way extension frames**: a peer never
//! replies to them, and silently ignores any it does not understand —
//! an old shard keeps its connection alive when a newer peer sends tags
//! it has never heard of (forward compatibility for the fleet tier).
//!
//! Robustness properties enforced here:
//!
//! - frames are capped at [`MAX_FRAME_LEN`] bytes — a peer streaming
//!   garbage cannot grow a buffer without bound;
//! - request cardinalities are capped ([`MAX_SWEEP_FRACTIONS`],
//!   [`MAX_CANDIDATES`], [`MAX_TILES_PER_CANDIDATE`]) before any work is
//!   admitted;
//! - every malformed input decodes to a typed
//!   [`ServeError::DecodeError`], never a panic — including torn frames,
//!   non-UTF-8 bytes, and NaN smuggled into a sweep plan.

use crate::error::ServeError;
use tecopt::runaway::SweepPoint;
use tecopt::supervise::{fingerprint, hex_f64, parse_hex_f64};
use tecopt::transient::ControllerSpec;
use tecopt::{CandidateScore, EnvelopeSettings, TileIndex};
use tecopt_explore::{ParetoPoint, Placement};
use tecopt_units::{Amperes, Celsius, Watts};

/// Hard cap on one frame, bytes, terminator included. Large enough for a
/// designer sweep over a 32×32 grid; small enough that a hostile peer
/// cannot balloon server memory.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Most sample fractions one runaway-sweep request may carry.
pub const MAX_SWEEP_FRACTIONS: usize = 4096;

/// Most candidate deployments one designer-sweep request may carry.
pub const MAX_CANDIDATES: usize = 1024;

/// Most tiles one candidate deployment may carry.
pub const MAX_TILES_PER_CANDIDATE: usize = 4096;

/// Most workload segments one transient request may carry.
pub const MAX_SCHEDULE_SEGMENTS: usize = 256;

/// Most tile powers one workload segment may carry.
pub const MAX_TILES_PER_SEGMENT: usize = 4096;

/// Most timesteps one transient request may imply (`Σ ceil(duration/dt)`),
/// checked at decode so an admitted frame can never demand unbounded work.
pub const MAX_TRANSIENT_STEPS: usize = 200_000;

/// Most values one explore scale axis (thickness / contact) may carry.
pub const MAX_EXPLORE_SCALES: usize = 64;

/// Most placements one explore request may carry.
pub const MAX_EXPLORE_PLACEMENTS: usize = 256;

/// Most candidates one explore request may imply (the product of its
/// axes), checked at decode so an admitted frame can never demand
/// unbounded work.
pub const MAX_EXPLORE_CANDIDATES: usize = 100_000;

/// Most Pareto points one explore response may carry — chosen so the
/// worst-case encoded response always fits one frame. Each point encodes
/// to 68 bytes (`␣id:current:peak:power`, four 16-hex-digit fields), and
/// the frame overhead tops out near 350 bytes (`#repl` replication prefix
/// with two digests, a 128-char key, the `ok <key> explore` prefix, five
/// counts and the terminator), so `896 × 68 + 350 < 64 KiB` holds with
/// margin — [`encode_response`] can never produce an explore frame that
/// `decode_response`, the server reader, or the client reader rejects.
/// Larger fronts are truncated at encode time in canonical (deterministic)
/// order, with the untruncated size reported in the `front_total` field.
pub const MAX_EXPLORE_FRONT: usize = 896;

/// One evaluation request, as admitted by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A single steady-state solve `(G − i·D)·θ = p(i)` at one current.
    Steady {
        /// The supply current to solve at.
        current: Amperes,
    },
    /// A λ_m-relative runaway sweep (the paper's Sec. V.C.1 demonstration).
    Runaway {
        /// Relative tolerance of the λ_m bisection.
        lambda_tolerance: f64,
        /// Sample currents as fractions of λ_m (may exceed 1).
        fractions: Vec<f64>,
    },
    /// A designer sweep scoring candidate deployments, each with its own
    /// optimized current (checkpointable; see DESIGN.md §12).
    Designer {
        /// Candidate deployments, each a set of tiles.
        candidates: Vec<Vec<TileIndex>>,
    },
    /// A safety-enveloped transient trace playback (checkpointable; see
    /// DESIGN.md §14).
    Transient {
        /// Backward-Euler timestep, seconds.
        dt: f64,
        /// Peak-temperature threshold for the violation-fraction summary.
        limit: Celsius,
        /// Safety-envelope tuning applied around the controller.
        envelope: EnvelopeSettings,
        /// The current-control policy to play the trace under.
        controller: ControllerSpec,
        /// Piecewise-constant workload: `(duration_seconds, tile_powers)`.
        schedule: Vec<(f64, Vec<Watts>)>,
    },
    /// A crash-safe design-space exploration (ledger-checkpointable; see
    /// DESIGN.md §18). The grid is the cross product of the three axes.
    Explore {
        /// The feasibility target every candidate is judged against.
        theta_limit: Celsius,
        /// Film thickness scales relative to the base device.
        thickness_scales: Vec<f64>,
        /// Contact conductance scales relative to the base device.
        contact_scales: Vec<f64>,
        /// Device placements (fixed masks and/or greedy deployment).
        placements: Vec<Placement>,
    },
}

/// The successful result of one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of [`Request::Steady`].
    Steady {
        /// Peak silicon temperature at the requested current.
        peak: Celsius,
        /// Electrical power drawn by the TECs.
        tec_power: Watts,
    },
    /// Result of [`Request::Runaway`].
    Runaway {
        /// The computed runaway limit λ_m.
        lambda: Amperes,
        /// Samples in ascending current order.
        points: Vec<SweepPoint>,
    },
    /// Result of [`Request::Designer`].
    Designer {
        /// One score per candidate, input order preserved.
        scores: Vec<CandidateScore>,
    },
    /// Result of [`Request::Transient`]: the trace summary.
    Transient {
        /// Timesteps simulated.
        steps: usize,
        /// Hottest recorded peak temperature.
        peak: Celsius,
        /// Fraction of samples whose peak exceeded the request's limit.
        violation_fraction: f64,
        /// Electrical energy the TEC array consumed, joules.
        tec_energy_joules: f64,
        /// Envelope violations latched over the run.
        envelope_events: usize,
        /// Whether the envelope's trip latch ever engaged.
        tripped: bool,
        /// Implicit solves issued (all with `i < λ_m`, by the guard).
        solves: u64,
    },
    /// Result of [`Request::Explore`]: ledger-total counts and the
    /// deterministic Pareto front, bit-identical across resume cycles and
    /// shard handoffs.
    Explore {
        /// Candidates fully evaluated (feasible or not).
        evaluated: usize,
        /// Candidates rejected by the analytical first cut.
        pruned: usize,
        /// Evaluated candidates that met the temperature limit.
        feasible: usize,
        /// Candidates blacklisted with typed quarantine records.
        quarantined: usize,
        /// Size of the full Pareto front before any wire truncation.
        /// `front_total > front.len()` tells the client the front was
        /// capped at [`MAX_EXPLORE_FRONT`] points.
        front_total: usize,
        /// The Pareto front over (peak temperature, TEC power), in
        /// canonical order, truncated to [`MAX_EXPLORE_FRONT`] points.
        front: Vec<ParetoPoint>,
    },
}

/// One parsed client frame: idempotency key, deadline budget, request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen idempotency key (`None` encoded as `-`). Retries
    /// reusing the key deduplicate against the server's result cache.
    pub key: Option<String>,
    /// Deadline budget in milliseconds from admission (`None` = server
    /// default).
    pub deadline_ms: Option<u64>,
    /// The request body.
    pub request: Request,
}

fn decode_err(msg: impl Into<String>) -> ServeError {
    ServeError::DecodeError(msg.into())
}

fn encode_key(key: Option<&str>) -> &str {
    key.unwrap_or("-")
}

/// `true` for a key a client may use: non-empty, bounded, and free of
/// whitespace/path characters (keys name checkpoint files).
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 128
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !key.starts_with('.')
}

// ---------------------------------------------------------------------
// Request encoding
// ---------------------------------------------------------------------

/// Encodes a request frame as one line (no terminator).
pub fn encode_request(frame: &RequestFrame) -> String {
    let deadline = match frame.deadline_ms {
        Some(ms) => ms.to_string(),
        None => "-".to_string(),
    };
    let body = match &frame.request {
        Request::Steady { current } => format!("steady {}", hex_f64(current.value())),
        Request::Runaway {
            lambda_tolerance,
            fractions,
        } => {
            let mut s = format!("runaway {}", hex_f64(*lambda_tolerance));
            for f in fractions {
                s.push(' ');
                s.push_str(&hex_f64(*f));
            }
            s
        }
        Request::Designer { candidates } => {
            let cands: Vec<String> = candidates
                .iter()
                .map(|tiles| {
                    let ts: Vec<String> = tiles
                        .iter()
                        .map(|t| format!("{}:{}", t.row, t.col))
                        .collect();
                    ts.join(",")
                })
                .collect();
            format!("designer {}", cands.join(";"))
        }
        Request::Transient {
            dt,
            limit,
            envelope,
            controller,
            schedule,
        } => {
            let ctl = match controller {
                ControllerSpec::Constant { current } => {
                    format!("const:{}", hex_f64(current.value()))
                }
                ControllerSpec::BangBang {
                    upper,
                    lower,
                    on_current,
                } => format!(
                    "bang:{}:{}:{}",
                    hex_f64(upper.value()),
                    hex_f64(lower.value()),
                    hex_f64(on_current.value())
                ),
                ControllerSpec::Proportional {
                    target,
                    gain,
                    max_current,
                } => format!(
                    "prop:{}:{}:{}",
                    hex_f64(target.value()),
                    hex_f64(*gain),
                    hex_f64(max_current.value())
                ),
            };
            let segs: Vec<String> = schedule
                .iter()
                .map(|(duration, powers)| {
                    let mut s = hex_f64(*duration);
                    for p in powers {
                        s.push(':');
                        s.push_str(&hex_f64(p.value()));
                    }
                    s
                })
                .collect();
            format!(
                "transient {} {} {}:{}:{}:{} {ctl} {}",
                hex_f64(*dt),
                hex_f64(limit.value()),
                hex_f64(envelope.margin),
                envelope.trip_after,
                hex_f64(envelope.fallback.value()),
                envelope.recovery_steps,
                segs.join(";")
            )
        }
        Request::Explore {
            theta_limit,
            thickness_scales,
            contact_scales,
            placements,
        } => {
            let axis = |scales: &[f64]| {
                scales
                    .iter()
                    .map(|s| hex_f64(*s))
                    .collect::<Vec<String>>()
                    .join(",")
            };
            let places: Vec<String> = placements.iter().map(encode_placement).collect();
            format!(
                "explore {} {} {} {}",
                hex_f64(theta_limit.value()),
                axis(thickness_scales),
                axis(contact_scales),
                places.join(";")
            )
        }
    };
    format!(
        "req {} {} {}",
        encode_key(frame.key.as_deref()),
        deadline,
        body
    )
}

/// `g` for greedy, `t:r.c,r.c` for a fixed mask (`t:` = empty mask).
fn encode_placement(p: &Placement) -> String {
    match p {
        Placement::Greedy => "g".to_string(),
        Placement::Tiles(tiles) => {
            let ts: Vec<String> = tiles
                .iter()
                .map(|t| format!("{}.{}", t.row, t.col))
                .collect();
            format!("t:{}", ts.join(","))
        }
    }
}

fn parse_placement(spec: &str) -> Result<Placement, ServeError> {
    if spec == "g" {
        return Ok(Placement::Greedy);
    }
    let tiles_spec = spec
        .strip_prefix("t:")
        .ok_or_else(|| decode_err(format!("malformed placement `{spec}` (want g or t:...)")))?;
    let mut tiles = Vec::new();
    for tile in tiles_spec.split(',') {
        if tile.is_empty() {
            continue; // `t:` is the valid empty mask
        }
        if tiles.len() >= MAX_TILES_PER_CANDIDATE {
            return Err(decode_err(format!(
                "placement exceeds {MAX_TILES_PER_CANDIDATE} tiles"
            )));
        }
        let (r, c) = tile
            .split_once('.')
            .ok_or_else(|| decode_err(format!("malformed placement tile `{tile}` (want r.c)")))?;
        let row = r
            .parse::<usize>()
            .map_err(|_| decode_err(format!("malformed placement row `{r}`")))?;
        let col = c
            .parse::<usize>()
            .map_err(|_| decode_err(format!("malformed placement col `{c}`")))?;
        tiles.push(TileIndex::new(row, col));
    }
    Ok(Placement::Tiles(tiles))
}

fn parse_scale_axis(spec: &str, what: &str) -> Result<Vec<f64>, ServeError> {
    let mut scales = Vec::new();
    for field in spec.split(',') {
        if scales.len() >= MAX_EXPLORE_SCALES {
            return Err(decode_err(format!(
                "{what} axis exceeds {MAX_EXPLORE_SCALES} scales"
            )));
        }
        let v = parse_hex(field, what)?;
        if !v.is_finite() || v <= 0.0 {
            return Err(decode_err(format!(
                "{what} must be positive and finite, got {v}"
            )));
        }
        scales.push(v);
    }
    Ok(scales)
}

/// Decodes what [`encode_request`] produced.
///
/// # Errors
///
/// [`ServeError::DecodeError`] describing the first malformed field.
pub fn decode_request(line: &str) -> Result<RequestFrame, ServeError> {
    let mut it = line.split_ascii_whitespace();
    match it.next() {
        Some("req") => {}
        Some(other) => return Err(decode_err(format!("expected `req`, got `{other}`"))),
        None => return Err(decode_err("empty frame")),
    }
    let key = match it.next() {
        Some("-") => None,
        Some(k) if valid_key(k) => Some(k.to_string()),
        Some(_) => return Err(decode_err("invalid idempotency key")),
        None => return Err(decode_err("missing idempotency key field")),
    };
    let deadline_ms = match it.next() {
        Some("-") => None,
        Some(ms) => Some(
            ms.parse::<u64>()
                .map_err(|_| decode_err(format!("invalid deadline `{ms}`")))?,
        ),
        None => return Err(decode_err("missing deadline field")),
    };
    let kind = it
        .next()
        .ok_or_else(|| decode_err("missing request kind"))?;
    let request = match kind {
        "steady" => {
            let current = next_hex(&mut it, "steady current")?;
            Request::Steady {
                current: Amperes(current),
            }
        }
        "runaway" => {
            let lambda_tolerance = next_hex(&mut it, "lambda tolerance")?;
            let mut fractions = Vec::new();
            for field in it.by_ref() {
                if fractions.len() >= MAX_SWEEP_FRACTIONS {
                    return Err(decode_err(format!(
                        "runaway sweep exceeds {MAX_SWEEP_FRACTIONS} fractions"
                    )));
                }
                fractions.push(parse_hex(field, "sweep fraction")?);
            }
            if fractions.is_empty() {
                return Err(decode_err("runaway sweep needs at least one fraction"));
            }
            Request::Runaway {
                lambda_tolerance,
                fractions,
            }
        }
        "designer" => {
            let spec = it
                .next()
                .ok_or_else(|| decode_err("designer sweep needs a candidate list"))?;
            Request::Designer {
                candidates: parse_candidates(spec)?,
            }
        }
        "transient" => {
            let dt = next_hex(&mut it, "transient dt")?;
            if !dt.is_finite() || dt <= 0.0 {
                return Err(decode_err(format!(
                    "transient dt must be positive and finite, got {dt}"
                )));
            }
            let limit = next_hex(&mut it, "transient limit")?;
            if !limit.is_finite() {
                return Err(decode_err("transient limit must be finite"));
            }
            let envelope = parse_envelope(
                it.next()
                    .ok_or_else(|| decode_err("missing envelope spec"))?,
            )?;
            let controller = parse_controller(
                it.next()
                    .ok_or_else(|| decode_err("missing controller spec"))?,
            )?;
            let schedule = parse_schedule(
                it.next()
                    .ok_or_else(|| decode_err("transient request needs a schedule"))?,
                dt,
            )?;
            Request::Transient {
                dt,
                limit: Celsius(limit),
                envelope,
                controller,
                schedule,
            }
        }
        "explore" => {
            let theta_limit = next_hex(&mut it, "explore limit")?;
            if !theta_limit.is_finite() {
                return Err(decode_err("explore limit must be finite"));
            }
            let thickness_scales = parse_scale_axis(
                it.next()
                    .ok_or_else(|| decode_err("missing thickness-scale axis"))?,
                "thickness scale",
            )?;
            let contact_scales = parse_scale_axis(
                it.next()
                    .ok_or_else(|| decode_err("missing contact-scale axis"))?,
                "contact scale",
            )?;
            let spec = it
                .next()
                .ok_or_else(|| decode_err("explore request needs a placement list"))?;
            let mut placements = Vec::new();
            for p in spec.split(';') {
                if placements.len() >= MAX_EXPLORE_PLACEMENTS {
                    return Err(decode_err(format!(
                        "explore request exceeds {MAX_EXPLORE_PLACEMENTS} placements"
                    )));
                }
                placements.push(parse_placement(p)?);
            }
            let candidates = thickness_scales
                .len()
                .saturating_mul(contact_scales.len())
                .saturating_mul(placements.len());
            if candidates > MAX_EXPLORE_CANDIDATES {
                return Err(decode_err(format!(
                    "explore grid implies {candidates} candidates (cap {MAX_EXPLORE_CANDIDATES})"
                )));
            }
            Request::Explore {
                theta_limit: Celsius(theta_limit),
                thickness_scales,
                contact_scales,
                placements,
            }
        }
        other => return Err(decode_err(format!("unknown request kind `{other}`"))),
    };
    if it.next().is_some() {
        return Err(decode_err("trailing fields after request body"));
    }
    Ok(RequestFrame {
        key,
        deadline_ms,
        request,
    })
}

fn next_hex(it: &mut std::str::SplitAsciiWhitespace<'_>, what: &str) -> Result<f64, ServeError> {
    let field = it
        .next()
        .ok_or_else(|| decode_err(format!("missing {what}")))?;
    parse_hex(field, what)
}

fn parse_hex(field: &str, what: &str) -> Result<f64, ServeError> {
    parse_hex_f64(field).ok_or_else(|| decode_err(format!("malformed {what} `{field}`")))
}

fn parse_candidates(spec: &str) -> Result<Vec<Vec<TileIndex>>, ServeError> {
    let mut candidates = Vec::new();
    for cand in spec.split(';') {
        if candidates.len() >= MAX_CANDIDATES {
            return Err(decode_err(format!(
                "designer sweep exceeds {MAX_CANDIDATES} candidates"
            )));
        }
        let mut tiles = Vec::new();
        for tile in cand.split(',') {
            if tile.is_empty() {
                continue; // an empty candidate is a valid passive baseline
            }
            if tiles.len() >= MAX_TILES_PER_CANDIDATE {
                return Err(decode_err(format!(
                    "candidate exceeds {MAX_TILES_PER_CANDIDATE} tiles"
                )));
            }
            let (r, c) = tile
                .split_once(':')
                .ok_or_else(|| decode_err(format!("malformed tile `{tile}` (want r:c)")))?;
            let row = r
                .parse::<usize>()
                .map_err(|_| decode_err(format!("malformed tile row `{r}`")))?;
            let col = c
                .parse::<usize>()
                .map_err(|_| decode_err(format!("malformed tile col `{c}`")))?;
            tiles.push(TileIndex::new(row, col));
        }
        candidates.push(tiles);
    }
    Ok(candidates)
}

/// Parses `margin:trip_after:fallback:recovery_steps`. Semantic envelope
/// validation (margin range, fallback bound) happens against λ_m at
/// evaluation time; the decode layer only rejects malformed fields.
fn parse_envelope(spec: &str) -> Result<EnvelopeSettings, ServeError> {
    let bad = || decode_err(format!("malformed envelope spec `{spec}`"));
    let mut parts = spec.split(':');
    let margin = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let trip_after = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(bad)?;
    let fallback = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let recovery_steps = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(EnvelopeSettings {
        margin,
        trip_after,
        fallback: Amperes(fallback),
        recovery_steps,
    })
}

/// Parses `const:<i>`, `bang:<upper>:<lower>:<on>` or
/// `prop:<target>:<gain>:<max>`. Semantic validation is
/// [`ControllerSpec::build`]'s job at evaluation time.
fn parse_controller(spec: &str) -> Result<ControllerSpec, ServeError> {
    let bad = || decode_err(format!("malformed controller spec `{spec}`"));
    let mut parts = spec.split(':');
    let tag = parts.next().ok_or_else(bad)?;
    let next = |parts: &mut std::str::Split<'_, char>| -> Result<f64, ServeError> {
        parts.next().and_then(parse_hex_f64).ok_or_else(bad)
    };
    let ctl = match tag {
        "const" => ControllerSpec::Constant {
            current: Amperes(next(&mut parts)?),
        },
        "bang" => ControllerSpec::BangBang {
            upper: Celsius(next(&mut parts)?),
            lower: Celsius(next(&mut parts)?),
            on_current: Amperes(next(&mut parts)?),
        },
        "prop" => ControllerSpec::Proportional {
            target: Celsius(next(&mut parts)?),
            gain: next(&mut parts)?,
            max_current: Amperes(next(&mut parts)?),
        },
        _ => return Err(bad()),
    };
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(ctl)
}

/// Parses `dur:p0:p1,...` segments joined by `;`, enforcing the segment,
/// tile and total-step caps and rejecting non-finite fields — a NaN
/// smuggled into a trace never reaches the engine.
fn parse_schedule(spec: &str, dt: f64) -> Result<Vec<(f64, Vec<Watts>)>, ServeError> {
    let mut schedule = Vec::new();
    let mut total_steps = 0.0f64;
    for seg in spec.split(';') {
        if schedule.len() >= MAX_SCHEDULE_SEGMENTS {
            return Err(decode_err(format!(
                "schedule exceeds {MAX_SCHEDULE_SEGMENTS} segments"
            )));
        }
        let mut parts = seg.split(':');
        let duration = parts
            .next()
            .and_then(parse_hex_f64)
            .ok_or_else(|| decode_err(format!("malformed schedule segment `{seg}`")))?;
        if !duration.is_finite() || duration <= 0.0 {
            return Err(decode_err(format!(
                "segment duration must be positive and finite, got {duration}"
            )));
        }
        let mut powers = Vec::new();
        for field in parts {
            if powers.len() >= MAX_TILES_PER_SEGMENT {
                return Err(decode_err(format!(
                    "segment exceeds {MAX_TILES_PER_SEGMENT} tile powers"
                )));
            }
            let p = parse_hex(field, "tile power")?;
            if !p.is_finite() {
                return Err(decode_err("non-finite tile power in schedule"));
            }
            powers.push(Watts(p));
        }
        if powers.is_empty() {
            return Err(decode_err("schedule segment carries no tile powers"));
        }
        // Durations and dt are finite and positive here, so the running
        // total is never NaN; an overflow to +inf still trips the cap.
        total_steps += (duration / dt).ceil();
        if total_steps > MAX_TRANSIENT_STEPS as f64 {
            return Err(decode_err(format!(
                "schedule implies more than {MAX_TRANSIENT_STEPS} timesteps"
            )));
        }
        schedule.push((duration, powers));
    }
    Ok(schedule)
}

/// The canonical fingerprint of a request: the FNV-1a digest of its bare
/// wire encoding (no key, no deadline). Every parameter contributes its
/// exact bits, so two requests share a fingerprint iff they are the same
/// evaluation — the identity that binds a replicated cache entry to the
/// one request it may ever answer.
pub fn request_fingerprint(request: &Request) -> u64 {
    fingerprint(&encode_request(&RequestFrame {
        key: None,
        deadline_ms: None,
        request: request.clone(),
    }))
}

// ---------------------------------------------------------------------
// Fleet frames: health pings and one-way replication
// ---------------------------------------------------------------------

/// Encodes a health-check ping (no terminator). Pings are answered ahead
/// of admission control, so an overloaded shard still counts as alive.
pub fn encode_ping(nonce: u64) -> String {
    format!("ping {nonce:016x}")
}

/// Encodes the reply to [`encode_ping`] (no terminator).
pub fn encode_pong(nonce: u64) -> String {
    format!("pong {nonce:016x}")
}

/// The nonce of a ping frame, or `None` when `line` is not a ping.
pub fn decode_ping(line: &str) -> Option<u64> {
    decode_nonce_frame(line, "ping")
}

/// The nonce of a pong frame, or `None` when `line` is not a pong.
pub fn decode_pong(line: &str) -> Option<u64> {
    decode_nonce_frame(line, "pong")
}

fn decode_nonce_frame(line: &str, tag: &str) -> Option<u64> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some(tag) {
        return None;
    }
    let nonce = u64::from_str_radix(it.next()?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(nonce)
}

/// `true` when `line` is a one-way extension frame: the receiver must
/// never reply to it, and must silently ignore any tag it does not know.
pub fn is_extension_frame(line: &str) -> bool {
    line.starts_with('#')
}

/// One replicated result-cache entry on its way to a peer shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplFrame {
    /// [`request_fingerprint`] of the request this entry answers. The
    /// receiver serves the entry only to a request whose own canonical
    /// fingerprint matches — a poisoned or stale replica can never answer
    /// the wrong evaluation.
    pub request_fp: u64,
    /// The idempotency key the entry is filed under.
    pub key: String,
    /// The successful result being replicated (only `Ok` outcomes are).
    pub response: Response,
}

/// Encodes a replication frame (no terminator):
/// `#repl <req_fp> <body_fp> <key> ok - <body...>` where `body_fp`
/// digests the embedded response line, so truncation or corruption in
/// flight is detected before anything reaches a cache.
pub fn encode_repl(frame: &ReplFrame) -> String {
    let body = encode_response(None, &Ok(frame.response.clone()));
    format!(
        "#repl {:016x} {:016x} {} {body}",
        frame.request_fp,
        fingerprint(&body),
        frame.key
    )
}

/// Decodes a `#`-prefixed extension frame.
///
/// Returns `Ok(None)` for an unknown extension tag — the caller ignores
/// it and keeps the connection (forward compatibility).
///
/// # Errors
///
/// [`ServeError::DecodeError`] for a `#repl` frame that is malformed,
/// oversized, or fails its body-fingerprint check. The caller drops the
/// frame (replication is best-effort) but may count the error.
pub fn decode_extension(line: &str) -> Result<Option<ReplFrame>, ServeError> {
    if line.len() > MAX_FRAME_LEN {
        return Err(decode_err("extension frame exceeds the length cap"));
    }
    let mut it = line.splitn(5, ' ');
    match it.next() {
        Some("#repl") => {}
        _ => return Ok(None),
    }
    let bad = |what: &str| decode_err(format!("malformed replication frame: {what}"));
    let request_fp = it
        .next()
        .and_then(|f| u64::from_str_radix(f, 16).ok())
        .ok_or_else(|| bad("request fingerprint"))?;
    let body_fp = it
        .next()
        .and_then(|f| u64::from_str_radix(f, 16).ok())
        .ok_or_else(|| bad("body fingerprint"))?;
    let key = it.next().ok_or_else(|| bad("missing key"))?;
    if !valid_key(key) {
        return Err(bad("invalid key"));
    }
    let body = it.next().ok_or_else(|| bad("missing response body"))?;
    if fingerprint(body) != body_fp {
        return Err(bad("body fingerprint mismatch"));
    }
    let decoded = decode_response(body)?;
    match decoded.result {
        Ok(response) => Ok(Some(ReplFrame {
            request_fp,
            key: key.to_string(),
            response,
        })),
        Err(_) => Err(bad("only ok results replicate")),
    }
}

// ---------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------

fn hex_opt_c(v: Option<Celsius>) -> String {
    v.map(|c| hex_f64(c.value())).unwrap_or_else(|| "-".into())
}

fn hex_opt_w(v: Option<Watts>) -> String {
    v.map(|w| hex_f64(w.value())).unwrap_or_else(|| "-".into())
}

/// Encodes a server reply to `key` as one line (no terminator).
pub fn encode_response(key: Option<&str>, result: &Result<Response, ServeError>) -> String {
    match result {
        Ok(resp) => {
            let body = match resp {
                Response::Steady { peak, tec_power } => format!(
                    "steady {} {}",
                    hex_f64(peak.value()),
                    hex_f64(tec_power.value())
                ),
                Response::Runaway { lambda, points } => {
                    let mut s = format!("runaway {}", hex_f64(lambda.value()));
                    for p in points {
                        s.push(' ');
                        s.push_str(&format!(
                            "{}:{}:{}",
                            hex_f64(p.current.value()),
                            hex_opt_c(p.peak),
                            hex_opt_w(p.tec_power)
                        ));
                    }
                    s
                }
                Response::Designer { scores } => {
                    let mut s = "designer".to_string();
                    for sc in scores {
                        s.push(' ');
                        s.push_str(&format!(
                            "{}:{}:{}:{}:{}",
                            sc.device_count,
                            hex_f64(sc.current.value()),
                            hex_f64(sc.peak.value()),
                            hex_f64(sc.tec_power.value()),
                            sc.evaluations
                        ));
                    }
                    s
                }
                Response::Transient {
                    steps,
                    peak,
                    violation_fraction,
                    tec_energy_joules,
                    envelope_events,
                    tripped,
                    solves,
                } => format!(
                    "transient {steps} {} {} {} {envelope_events} {} {solves}",
                    hex_f64(peak.value()),
                    hex_f64(*violation_fraction),
                    hex_f64(*tec_energy_joules),
                    u8::from(*tripped),
                ),
                Response::Explore {
                    evaluated,
                    pruned,
                    feasible,
                    quarantined,
                    front_total,
                    front,
                } => {
                    let mut s = format!(
                        "explore {evaluated} {pruned} {feasible} {quarantined} {front_total}"
                    );
                    // The cap is enforced at encode time so this can never
                    // emit a frame the (capped) readers refuse; truncation
                    // in canonical order stays deterministic.
                    for p in front.iter().take(MAX_EXPLORE_FRONT) {
                        s.push(' ');
                        s.push_str(&format!(
                            "{:016x}:{}:{}:{}",
                            p.id(),
                            hex_f64(p.current().value()),
                            hex_f64(p.peak().value()),
                            hex_f64(p.tec_power().value())
                        ));
                    }
                    s
                }
            };
            format!("ok {} {body}", encode_key(key))
        }
        Err(e) => {
            // The message is free text but must stay a single line.
            let msg: String = e
                .to_string()
                .chars()
                .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                .collect();
            format!("err {} {} {msg}", encode_key(key), e.code())
        }
    }
}

/// One decoded server reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request's idempotency key.
    pub key: Option<String>,
    /// The response, or the typed error code + human message.
    pub result: Result<Response, (String, String)>,
}

/// Decodes what [`encode_response`] produced.
///
/// # Errors
///
/// [`ServeError::DecodeError`] describing the first malformed field.
pub fn decode_response(line: &str) -> Result<ResponseFrame, ServeError> {
    let mut it = it_or_err(line)?;
    let status = it
        .next()
        .ok_or_else(|| decode_err("empty response frame"))?;
    let key = match it.next() {
        Some("-") => None,
        Some(k) => Some(k.to_string()),
        None => return Err(decode_err("missing response key")),
    };
    match status {
        "ok" => {
            let kind = it
                .next()
                .ok_or_else(|| decode_err("missing response kind"))?;
            let resp = match kind {
                "steady" => Response::Steady {
                    peak: Celsius(next_hex(&mut it, "peak")?),
                    tec_power: Watts(next_hex(&mut it, "tec power")?),
                },
                "runaway" => {
                    let lambda = Amperes(next_hex(&mut it, "lambda")?);
                    let mut points = Vec::new();
                    for field in it.by_ref() {
                        if points.len() >= MAX_SWEEP_FRACTIONS {
                            return Err(decode_err("oversized runaway response"));
                        }
                        points.push(parse_point(field)?);
                    }
                    Response::Runaway { lambda, points }
                }
                "designer" => {
                    let mut scores = Vec::new();
                    for field in it.by_ref() {
                        if scores.len() >= MAX_CANDIDATES {
                            return Err(decode_err("oversized designer response"));
                        }
                        scores.push(parse_score(field)?);
                    }
                    Response::Designer { scores }
                }
                "transient" => {
                    let bad = |what: &str| decode_err(format!("malformed transient {what}"));
                    let steps = it
                        .next()
                        .and_then(|s| s.parse::<usize>().ok())
                        .ok_or_else(|| bad("steps"))?;
                    let peak = Celsius(next_hex(&mut it, "transient peak")?);
                    let violation_fraction = next_hex(&mut it, "violation fraction")?;
                    let tec_energy_joules = next_hex(&mut it, "tec energy")?;
                    let envelope_events = it
                        .next()
                        .and_then(|s| s.parse::<usize>().ok())
                        .ok_or_else(|| bad("event count"))?;
                    let tripped = match it.next() {
                        Some("0") => false,
                        Some("1") => true,
                        _ => return Err(bad("trip flag")),
                    };
                    let solves = it
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| bad("solve count"))?;
                    Response::Transient {
                        steps,
                        peak,
                        violation_fraction,
                        tec_energy_joules,
                        envelope_events,
                        tripped,
                        solves,
                    }
                }
                "explore" => {
                    let bad = |what: &str| decode_err(format!("malformed explore {what}"));
                    let mut count = |what: &'static str| -> Result<usize, ServeError> {
                        it.next()
                            .and_then(|s| s.parse::<usize>().ok())
                            .ok_or_else(|| bad(what))
                    };
                    let evaluated = count("evaluated count")?;
                    let pruned = count("pruned count")?;
                    let feasible = count("feasible count")?;
                    let quarantined = count("quarantined count")?;
                    let front_total = count("front total")?;
                    let mut front = Vec::new();
                    for field in it.by_ref() {
                        if front.len() >= MAX_EXPLORE_FRONT {
                            return Err(decode_err("oversized explore response"));
                        }
                        front.push(parse_pareto_point(field)?);
                    }
                    if front_total < front.len() {
                        return Err(decode_err("explore front total below carried points"));
                    }
                    Response::Explore {
                        evaluated,
                        pruned,
                        feasible,
                        quarantined,
                        front_total,
                        front,
                    }
                }
                other => return Err(decode_err(format!("unknown response kind `{other}`"))),
            };
            Ok(ResponseFrame {
                key,
                result: Ok(resp),
            })
        }
        "err" => {
            let code = it
                .next()
                .ok_or_else(|| decode_err("missing error code"))?
                .to_string();
            let message = it.collect::<Vec<&str>>().join(" ");
            Ok(ResponseFrame {
                key,
                result: Err((code, message)),
            })
        }
        other => Err(decode_err(format!("unknown response status `{other}`"))),
    }
}

fn it_or_err(line: &str) -> Result<std::str::SplitAsciiWhitespace<'_>, ServeError> {
    if line.len() > MAX_FRAME_LEN {
        return Err(decode_err("frame exceeds the length cap"));
    }
    Ok(line.split_ascii_whitespace())
}

fn parse_point(field: &str) -> Result<SweepPoint, ServeError> {
    let mut parts = field.split(':');
    let current = parts
        .next()
        .and_then(parse_hex_f64)
        .ok_or_else(|| decode_err(format!("malformed sweep point `{field}`")))?;
    let peak = parse_opt(parts.next(), field)?;
    let tec_power = parse_opt(parts.next(), field)?;
    if parts.next().is_some() {
        return Err(decode_err(format!("malformed sweep point `{field}`")));
    }
    Ok(SweepPoint {
        current: Amperes(current),
        peak: peak.map(Celsius),
        tec_power: tec_power.map(Watts),
    })
}

fn parse_opt(part: Option<&str>, field: &str) -> Result<Option<f64>, ServeError> {
    match part {
        Some("-") => Ok(None),
        Some(h) => parse_hex_f64(h)
            .map(Some)
            .ok_or_else(|| decode_err(format!("malformed sweep point `{field}`"))),
        None => Err(decode_err(format!("malformed sweep point `{field}`"))),
    }
}

fn parse_score(field: &str) -> Result<CandidateScore, ServeError> {
    let bad = || decode_err(format!("malformed candidate score `{field}`"));
    let mut parts = field.split(':');
    let device_count = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let current = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let peak = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let tec_power = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let evaluations = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(CandidateScore {
        device_count,
        current: Amperes(current),
        peak: Celsius(peak),
        tec_power: Watts(tec_power),
        evaluations,
    })
}

fn parse_pareto_point(field: &str) -> Result<ParetoPoint, ServeError> {
    let bad = || decode_err(format!("malformed pareto point `{field}`"));
    let mut parts = field.split(':');
    let id = parts
        .next()
        .filter(|s| s.len() == 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(bad)?;
    let current = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let peak = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    let tec_power = parts.next().and_then(parse_hex_f64).ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    // The constructor is the NaN gate: a non-finite coordinate smuggled
    // over the wire is a decode error, never a poisoned front.
    ParetoPoint::new(id, Amperes(current), Celsius(peak), Watts(tec_power)).ok_or_else(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(frame: RequestFrame) {
        let line = encode_request(&frame);
        assert_eq!(decode_request(&line).unwrap(), frame, "via `{line}`");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(RequestFrame {
            key: Some("job-1".into()),
            deadline_ms: Some(1500),
            request: Request::Steady {
                current: Amperes(3.25),
            },
        });
        round_trip_request(RequestFrame {
            key: None,
            deadline_ms: None,
            request: Request::Runaway {
                lambda_tolerance: 1e-9,
                fractions: vec![0.1, 0.5, 0.9, 1.1],
            },
        });
        round_trip_request(RequestFrame {
            key: Some("d_2.a".into()),
            deadline_ms: Some(0),
            request: Request::Designer {
                candidates: vec![
                    vec![TileIndex::new(1, 1)],
                    vec![TileIndex::new(0, 3), TileIndex::new(2, 2)],
                    vec![],
                ],
            },
        });
    }

    #[test]
    fn transient_requests_round_trip() {
        for controller in [
            ControllerSpec::Constant {
                current: Amperes(2.5),
            },
            ControllerSpec::BangBang {
                upper: Celsius(80.0),
                lower: Celsius(76.0),
                on_current: Amperes(4.0),
            },
            ControllerSpec::Proportional {
                target: Celsius(78.0),
                gain: 0.75,
                max_current: Amperes(6.0),
            },
        ] {
            round_trip_request(RequestFrame {
                key: Some("t-1".into()),
                deadline_ms: Some(2000),
                request: Request::Transient {
                    dt: 0.5,
                    limit: Celsius(85.0),
                    envelope: EnvelopeSettings {
                        margin: 0.9,
                        trip_after: 3,
                        fallback: Amperes(0.25),
                        recovery_steps: 8,
                    },
                    controller,
                    schedule: vec![
                        (2.0, vec![Watts(0.05), Watts(0.6)]),
                        (3.0, vec![Watts(0.02), Watts(0.02)]),
                    ],
                },
            });
        }
    }

    #[test]
    fn explore_requests_round_trip() {
        round_trip_request(RequestFrame {
            key: Some("x-1".into()),
            deadline_ms: Some(30_000),
            request: Request::Explore {
                theta_limit: Celsius(85.0),
                thickness_scales: vec![0.5, 1.0, 2.0],
                contact_scales: vec![1.0],
                placements: vec![
                    Placement::Greedy,
                    Placement::Tiles(vec![TileIndex::new(1, 1), TileIndex::new(2, 3)]),
                    Placement::Tiles(vec![]),
                ],
            },
        });
    }

    #[test]
    fn malformed_explore_requests_yield_typed_decode_errors() {
        let one = "3ff0000000000000";
        let nan = "7ff8000000000000";
        let big: Vec<String> = (0..MAX_EXPLORE_SCALES).map(|_| one.to_string()).collect();
        let big_axis = big.join(",");
        let cases = [
            // Limit and scales must be finite (and scales positive).
            format!("req - - explore {nan} {one} {one} g"),
            format!("req - - explore 4055400000000000 {nan} {one} g"),
            format!("req - - explore 4055400000000000 0000000000000000 {one} g"),
            // Unknown placement tag and malformed tiles.
            format!("req - - explore 4055400000000000 {one} {one} x"),
            format!("req - - explore 4055400000000000 {one} {one} t:1:2"),
            // The candidate-count cap (64 × 64 × 256 > 100 000).
            format!(
                "req - - explore 4055400000000000 {big_axis} {big_axis} {}",
                vec!["g"; MAX_EXPLORE_PLACEMENTS].join(";")
            ),
        ];
        for line in &cases {
            match decode_request(line) {
                Err(ServeError::DecodeError(_)) => {}
                other => panic!("`{line}` should fail decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn explore_responses_round_trip_and_refuse_nan_points() {
        let front = vec![
            ParetoPoint::new(0xabcd, Amperes(2.5), Celsius(78.0), Watts(0.75)).unwrap(),
            ParetoPoint::new(7, Amperes(1.5), Celsius(82.0), Watts(0.25)).unwrap(),
        ];
        let result = Ok(Response::Explore {
            evaluated: 40,
            pruned: 9,
            feasible: 12,
            quarantined: 2,
            front_total: 2,
            front,
        });
        let line = encode_response(Some("k"), &result);
        let frame = decode_response(&line).unwrap();
        assert_eq!(frame.result.as_ref().unwrap(), result.as_ref().unwrap());

        // A NaN smuggled into a front coordinate is a decode error.
        let nan = "7ff8000000000000";
        let poisoned = format!(
            "ok k explore 1 0 1 0 1 000000000000abcd:3ff0000000000000:{nan}:3ff0000000000000"
        );
        assert!(matches!(
            decode_response(&poisoned),
            Err(ServeError::DecodeError(_))
        ));
        // A front total smaller than the carried points is inconsistent.
        let short = "ok k explore 1 0 1 0 0 \
                     000000000000abcd:3ff0000000000000:3ff0000000000000:3ff0000000000000";
        assert!(matches!(
            decode_response(short),
            Err(ServeError::DecodeError(_))
        ));
    }

    /// `n` distinct valid points with full-width coordinate encodings.
    fn synthetic_front(n: usize) -> Vec<ParetoPoint> {
        (0..n)
            .map(|i| {
                ParetoPoint::new(
                    u64::MAX - i as u64,
                    Amperes(1.0 + i as f64 * 1e-6),
                    Celsius(70.0 + i as f64 * 1e-6),
                    Watts(0.5 + i as f64 * 1e-6),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn a_maximal_explore_response_fits_one_frame_even_replicated() {
        // Worst case everywhere: a full front, counts at the candidate
        // cap, and a maximum-length key — both as a bare response line
        // and wrapped in a `#repl` replication frame. The readers cap
        // frames at MAX_FRAME_LEN (terminator included), so a response
        // the encoder can produce must stay strictly within it.
        let key = "k".repeat(128);
        let response = Response::Explore {
            evaluated: MAX_EXPLORE_CANDIDATES,
            pruned: MAX_EXPLORE_CANDIDATES,
            feasible: MAX_EXPLORE_CANDIDATES,
            quarantined: MAX_EXPLORE_CANDIDATES,
            front_total: MAX_EXPLORE_CANDIDATES,
            front: synthetic_front(MAX_EXPLORE_FRONT),
        };
        let result = Ok(response.clone());
        let line = encode_response(Some(&key), &result);
        // The frame cap counts the `\n` terminator: strictly under it.
        assert!(
            line.len() < MAX_FRAME_LEN,
            "explore response frame is {} bytes + terminator, cap {MAX_FRAME_LEN}",
            line.len()
        );
        let frame = decode_response(&line).unwrap();
        assert_eq!(frame.result.as_ref().unwrap(), &response);

        let repl = ReplFrame {
            request_fp: u64::MAX,
            key,
            response,
        };
        let line = encode_repl(&repl);
        assert!(
            line.len() < MAX_FRAME_LEN,
            "replicated explore frame is {} bytes + terminator, cap {MAX_FRAME_LEN}",
            line.len()
        );
        assert_eq!(decode_extension(&line).unwrap(), Some(repl));
    }

    #[test]
    fn oversized_explore_fronts_are_truncated_at_encode_time() {
        let full = synthetic_front(MAX_EXPLORE_FRONT + 5);
        let result = Ok(Response::Explore {
            evaluated: full.len(),
            pruned: 0,
            feasible: full.len(),
            quarantined: 0,
            front_total: full.len(),
            front: full.clone(),
        });
        let line = encode_response(Some("k"), &result);
        assert!(line.len() < MAX_FRAME_LEN);
        let frame = decode_response(&line).unwrap();
        match frame.result.unwrap() {
            Response::Explore {
                front_total, front, ..
            } => {
                // The canonical-order prefix survives; the total records
                // what was dropped.
                assert_eq!(front_total, MAX_EXPLORE_FRONT + 5);
                assert_eq!(front.len(), MAX_EXPLORE_FRONT);
                assert_eq!(front[..], full[..MAX_EXPLORE_FRONT]);
            }
            other => panic!("expected an explore response, got {other:?}"),
        }
    }

    #[test]
    fn malformed_transient_requests_yield_typed_decode_errors() {
        let env = "3feccccccccccccd:3:0000000000000000:8";
        let seg = "3ff0000000000000:3fa999999999999a";
        let nan = "7ff8000000000000";
        let cases = [
            // dt must be positive and finite.
            format!("req - - transient 0000000000000000 4054000000000000 {env} const:00 {seg}"),
            format!("req - - transient {nan} 4054000000000000 {env} const:0000000000000000 {seg}"),
            // Limit must be finite.
            format!("req - - transient 3ff0000000000000 {nan} {env} const:0000000000000000 {seg}"),
            // Envelope spec arity.
            format!("req - - transient 3ff0000000000000 4054000000000000 3feccccccccccccd:3 const:0000000000000000 {seg}"),
            // Unknown controller tag / arity.
            format!("req - - transient 3ff0000000000000 4054000000000000 {env} pid:00:00:00 {seg}"),
            format!("req - - transient 3ff0000000000000 4054000000000000 {env} bang:0000000000000000 {seg}"),
            // Schedule: bad duration, NaN power, empty segment.
            format!("req - - transient 3ff0000000000000 4054000000000000 {env} const:0000000000000000 8000000000000000:3fa999999999999a"),
            format!("req - - transient 3ff0000000000000 4054000000000000 {env} const:0000000000000000 3ff0000000000000:{nan}"),
            format!("req - - transient 3ff0000000000000 4054000000000000 {env} const:0000000000000000 3ff0000000000000"),
        ];
        for line in &cases {
            match decode_request(line) {
                Err(ServeError::DecodeError(_)) => {}
                other => panic!("`{line}` should fail decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn transient_step_cap_is_enforced_at_decode() {
        // One segment of 1e9 s at dt = 1 s implies 1e9 steps: far beyond
        // the cap, rejected before any work is admitted.
        let frame = RequestFrame {
            key: None,
            deadline_ms: None,
            request: Request::Transient {
                dt: 1.0,
                limit: Celsius(85.0),
                envelope: EnvelopeSettings::default(),
                controller: ControllerSpec::Constant {
                    current: Amperes(1.0),
                },
                schedule: vec![(1e9, vec![Watts(0.05)])],
            },
        };
        let line = encode_request(&frame);
        assert!(matches!(
            decode_request(&line),
            Err(ServeError::DecodeError(_))
        ));
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Ok(Response::Steady {
                peak: Celsius(81.5),
                tec_power: Watts(0.25),
            }),
            Ok(Response::Runaway {
                lambda: Amperes(7.75),
                points: vec![
                    SweepPoint {
                        current: Amperes(1.0),
                        peak: Some(Celsius(90.0)),
                        tec_power: Some(Watts(0.5)),
                    },
                    SweepPoint {
                        current: Amperes(9.0),
                        peak: None,
                        tec_power: None,
                    },
                ],
            }),
            Ok(Response::Designer {
                scores: vec![tecopt::CandidateScore {
                    device_count: 3,
                    current: Amperes(2.5),
                    peak: Celsius(79.0),
                    tec_power: Watts(0.4),
                    evaluations: 17,
                }],
            }),
        ];
        for result in cases {
            let line = encode_response(Some("k"), &result);
            let frame = decode_response(&line).unwrap();
            assert_eq!(frame.key.as_deref(), Some("k"));
            assert_eq!(frame.result.as_ref().unwrap(), result.as_ref().unwrap());
        }
    }

    #[test]
    fn error_responses_round_trip_code_and_message() {
        let err = ServeError::Overloaded {
            depth: 8,
            capacity: 8,
        };
        let line = encode_response(None, &Err(err.clone()));
        let frame = decode_response(&line).unwrap();
        let (code, message) = frame.result.unwrap_err();
        assert_eq!(code, "overloaded");
        assert!(message.contains("8 of 8"));
        // Newlines in a message can never tear the framing.
        let sneaky = ServeError::DecodeError("line one\nline two".into());
        let line = encode_response(None, &Err(sneaky));
        assert!(!line.contains('\n'));
        assert!(decode_response(&line).is_ok());
    }

    #[test]
    fn malformed_requests_yield_typed_decode_errors() {
        let cases = [
            "",
            "bogus - - steady 0000000000000000",
            "req",
            "req -",
            "req - -",
            "req - - steady",
            "req - - steady nothex",
            "req - notanumber steady 0000000000000000",
            "req has space - steady 0000000000000000",
            "req - - runaway 3ff0000000000000",
            "req - - designer",
            "req - - designer 1:x",
            "req - - designer 1",
            "req - - unknown 00",
            "req - - steady 0000000000000000 trailing",
            "req .dotfile - steady 0000000000000000",
        ];
        for line in cases {
            match decode_request(line) {
                Err(ServeError::DecodeError(_)) => {}
                other => panic!("`{line}` should fail decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn cardinality_caps_are_enforced() {
        let mut line = "req - - runaway 3ff0000000000000".to_string();
        for _ in 0..(MAX_SWEEP_FRACTIONS + 1) {
            line.push(' ');
            line.push_str("3ff0000000000000");
        }
        assert!(matches!(
            decode_request(&line),
            Err(ServeError::DecodeError(_))
        ));
        let cands = vec!["1:1"; MAX_CANDIDATES + 1].join(";");
        let line = format!("req - - designer {cands}");
        assert!(matches!(
            decode_request(&line),
            Err(ServeError::DecodeError(_))
        ));
    }

    #[test]
    fn ping_pong_round_trip_and_reject_noise() {
        for nonce in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(decode_ping(&encode_ping(nonce)), Some(nonce));
            assert_eq!(decode_pong(&encode_pong(nonce)), Some(nonce));
        }
        assert_eq!(decode_ping("pong 00"), None);
        assert_eq!(decode_ping("ping"), None);
        assert_eq!(decode_ping("ping zz"), None);
        assert_eq!(decode_ping("ping 00 extra"), None);
        assert_eq!(decode_pong("ok - steady"), None);
    }

    fn sample_repl() -> ReplFrame {
        ReplFrame {
            request_fp: request_fingerprint(&Request::Steady {
                current: Amperes(2.5),
            }),
            key: "job-7".into(),
            response: Response::Steady {
                peak: Celsius(81.5),
                tec_power: Watts(0.25),
            },
        }
    }

    #[test]
    fn replication_frames_round_trip() {
        let frame = sample_repl();
        let line = encode_repl(&frame);
        assert!(is_extension_frame(&line));
        assert_eq!(decode_extension(&line).unwrap(), Some(frame));
    }

    #[test]
    fn unknown_extension_tags_are_ignored_not_errors() {
        for line in ["#future-tag a b c", "#", "#repl2 00 00 k ok - steady"] {
            assert!(is_extension_frame(line));
            assert_eq!(decode_extension(line).unwrap(), None, "via `{line}`");
        }
        // Non-extension lines are not the codec's business.
        assert!(!is_extension_frame("req - - steady 00"));
    }

    #[test]
    fn torn_or_corrupted_replication_frames_fail_the_body_fingerprint() {
        let line = encode_repl(&sample_repl());
        // Torn mid-body: the digest no longer matches.
        let torn = &line[..line.len() - 4];
        assert!(matches!(
            decode_extension(torn),
            Err(ServeError::DecodeError(_))
        ));
        // One flipped byte inside the body.
        let mut corrupt = line.clone();
        corrupt.pop();
        corrupt.push('Z');
        assert!(matches!(
            decode_extension(&corrupt),
            Err(ServeError::DecodeError(_))
        ));
    }

    #[test]
    fn malformed_replication_frames_yield_typed_decode_errors() {
        let cases = [
            "#repl",
            "#repl zz 00 k ok - steady 0000000000000000 0000000000000000",
            "#repl 00 zz k ok - steady 0000000000000000 0000000000000000",
            "#repl 00 00",
            "#repl 00 00 .dotfile ok - steady 00 00",
            "#repl 00 00 bad/key ok - steady 00 00",
        ];
        for line in cases {
            match decode_extension(line) {
                Err(ServeError::DecodeError(_)) => {}
                other => panic!("`{line}` should fail decode, got {other:?}"),
            }
        }
        // An `err` body never replicates, even when correctly digested.
        let body = encode_response(None, &Err(ServeError::ShuttingDown));
        let line = format!(
            "#repl 0000000000000000 {:016x} k {body}",
            fingerprint(&body)
        );
        assert!(matches!(
            decode_extension(&line),
            Err(ServeError::DecodeError(_))
        ));
    }

    #[test]
    fn oversized_replication_frames_are_capped() {
        let line = format!("#repl 00 00 k ok - {}", "x".repeat(MAX_FRAME_LEN));
        assert!(matches!(
            decode_extension(&line),
            Err(ServeError::DecodeError(_))
        ));
    }

    #[test]
    fn request_fingerprint_ignores_key_and_deadline_but_not_parameters() {
        let a = Request::Steady {
            current: Amperes(1.0),
        };
        let b = Request::Steady {
            current: Amperes(1.0 + f64::EPSILON),
        };
        assert_eq!(request_fingerprint(&a), request_fingerprint(&a));
        assert_ne!(request_fingerprint(&a), request_fingerprint(&b));
        // The frame's key/deadline are routing metadata, not identity.
        let framed = fingerprint(&encode_request(&RequestFrame {
            key: Some("k".into()),
            deadline_ms: Some(10),
            request: a.clone(),
        }));
        assert_ne!(framed, request_fingerprint(&a));
    }

    #[test]
    fn key_validation() {
        assert!(valid_key("abc-123_X.y"));
        assert!(!valid_key(""));
        assert!(!valid_key(".hidden"));
        assert!(!valid_key("a/b"));
        assert!(!valid_key("a b"));
        assert!(!valid_key(&"k".repeat(129)));
    }
}
