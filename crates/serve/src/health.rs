//! The shard health state machine (DESIGN.md §17).
//!
//! Each shard is tracked through three states:
//!
//! ```text
//!            failure                failure ≥ down_after
//! Healthy ───────────▶ Suspect ─────────────────────────▶ Down
//!    ▲                    │                                 │
//!    └──── success ≥ up_after (consecutive) ────────────────┘
//! ```
//!
//! Transitions are **hysteretic** in both directions: one failed ping
//! only makes a shard `Suspect` (it keeps receiving traffic, just at
//! lower preference), `down_after` *consecutive* failures mark it `Down`,
//! and recovery requires `up_after` consecutive successes — a single
//! lucky ping cannot flap a flaky shard back into the preferred set. Any
//! failure resets the recovery streak and vice versa.

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Where a shard stands in the ping state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Responding to pings; preferred for routing.
    Healthy,
    /// Missed at least one recent ping; routed to only after healthy
    /// replicas.
    Suspect,
    /// Missed `down_after` consecutive pings; routed to only as a last
    /// resort.
    Down,
}

/// Tunables for the health loop and its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// How often the router pings every shard.
    pub ping_interval: Duration,
    /// How long one ping may take before it counts as a failure.
    pub ping_timeout: Duration,
    /// Consecutive failures before `Suspect` hardens into `Down`.
    pub down_after: u32,
    /// Consecutive successes before a non-healthy shard recovers.
    pub up_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            ping_interval: Duration::from_millis(50),
            ping_timeout: Duration::from_millis(100),
            down_after: 3,
            up_after: 2,
        }
    }
}

struct Slot {
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
}

/// Tracks the health state of a fixed fleet of shards, indexed by the
/// router's shard order. Observations arrive from the ping loop *and*
/// from request outcomes (a failed submit is as much evidence as a
/// failed ping), so each slot is individually locked.
pub struct HealthMonitor {
    slots: Vec<Mutex<Slot>>,
    policy: HealthPolicy,
}

impl HealthMonitor {
    /// A monitor for `shards` shards, all initially [`HealthState::Healthy`]
    /// (optimistic start: the first ping round corrects it within
    /// `ping_interval`).
    pub fn new(shards: usize, policy: HealthPolicy) -> HealthMonitor {
        HealthMonitor {
            slots: (0..shards)
                .map(|_| {
                    Mutex::new(Slot {
                        state: HealthState::Healthy,
                        consecutive_failures: 0,
                        consecutive_successes: 0,
                    })
                })
                .collect(),
            policy: HealthPolicy {
                down_after: policy.down_after.max(1),
                up_after: policy.up_after.max(1),
                ..policy
            },
        }
    }

    /// The policy the monitor was built with (floors applied).
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Shards tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no shards are tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current state of shard `index`.
    pub fn state(&self, index: usize) -> HealthState {
        self.lock(index).state
    }

    /// Records a failed ping or a transport-level request failure.
    pub fn record_failure(&self, index: usize) {
        let mut slot = self.lock(index);
        slot.consecutive_successes = 0;
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        slot.state = if slot.consecutive_failures >= self.policy.down_after {
            HealthState::Down
        } else {
            HealthState::Suspect
        };
    }

    /// Records a successful ping or request.
    pub fn record_success(&self, index: usize) {
        let mut slot = self.lock(index);
        slot.consecutive_failures = 0;
        if slot.state == HealthState::Healthy {
            return;
        }
        slot.consecutive_successes = slot.consecutive_successes.saturating_add(1);
        if slot.consecutive_successes >= self.policy.up_after {
            slot.state = HealthState::Healthy;
            slot.consecutive_successes = 0;
        }
    }

    /// Snapshot of every shard's state, in index order.
    pub fn states(&self) -> Vec<HealthState> {
        (0..self.slots.len()).map(|i| self.state(i)).collect()
    }

    fn lock(&self, index: usize) -> std::sync::MutexGuard<'_, Slot> {
        self.slots[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(
            2,
            HealthPolicy {
                down_after: 3,
                up_after: 2,
                ..HealthPolicy::default()
            },
        )
    }

    #[test]
    fn one_failure_is_suspicion_not_death() {
        let m = monitor();
        m.record_failure(0);
        assert_eq!(m.state(0), HealthState::Suspect);
        // The other shard is untouched.
        assert_eq!(m.state(1), HealthState::Healthy);
    }

    #[test]
    fn consecutive_failures_harden_into_down() {
        let m = monitor();
        m.record_failure(0);
        m.record_failure(0);
        assert_eq!(m.state(0), HealthState::Suspect);
        m.record_failure(0);
        assert_eq!(m.state(0), HealthState::Down);
    }

    #[test]
    fn an_interleaved_success_resets_the_failure_streak() {
        let m = monitor();
        m.record_failure(0);
        m.record_failure(0);
        m.record_success(0); // streak broken; still not recovered
        assert_eq!(m.state(0), HealthState::Suspect);
        m.record_failure(0);
        m.record_failure(0);
        // Only two consecutive failures since the success: not Down yet.
        assert_eq!(m.state(0), HealthState::Suspect);
        m.record_failure(0);
        assert_eq!(m.state(0), HealthState::Down);
    }

    #[test]
    fn recovery_is_hysteretic_from_both_suspect_and_down() {
        let m = monitor();
        m.record_failure(0);
        m.record_success(0);
        assert_eq!(
            m.state(0),
            HealthState::Suspect,
            "one success is not enough"
        );
        m.record_success(0);
        assert_eq!(m.state(0), HealthState::Healthy);

        for _ in 0..5 {
            m.record_failure(0);
        }
        assert_eq!(m.state(0), HealthState::Down);
        m.record_success(0);
        assert_eq!(m.state(0), HealthState::Down);
        m.record_success(0);
        assert_eq!(m.state(0), HealthState::Healthy);
    }

    #[test]
    fn a_flapping_shard_never_reaches_healthy() {
        let m = monitor();
        m.record_failure(0);
        for _ in 0..10 {
            m.record_success(0);
            m.record_failure(0);
            assert_ne!(m.state(0), HealthState::Healthy);
        }
    }

    #[test]
    fn policy_floors_prevent_zero_thresholds() {
        let m = HealthMonitor::new(
            1,
            HealthPolicy {
                down_after: 0,
                up_after: 0,
                ..HealthPolicy::default()
            },
        );
        assert_eq!(m.policy().down_after, 1);
        assert_eq!(m.policy().up_after, 1);
        m.record_failure(0);
        assert_eq!(m.state(0), HealthState::Down);
        m.record_success(0);
        assert_eq!(m.state(0), HealthState::Healthy);
    }
}
