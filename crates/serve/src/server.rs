//! The socket front end: line-framed protocol over TCP or a Unix socket,
//! using nothing beyond `std::net` / `std::os::unix::net`.
//!
//! Threading model (all threads come from the sanctioned
//! [`tecopt::parallel::service_workers`] pool — the server never spawns
//! dynamically, so load cannot grow the thread count):
//!
//! - `eval_workers` threads run [`Engine::worker_loop`];
//! - `handlers` threads accept and serve one connection at a time each —
//!   the handler count *is* the concurrent-connection bound, with excess
//!   connections waiting in the OS accept backlog;
//! - one supervisor thread watches the shutdown token and runs the
//!   graceful drain: stop admission, wait up to `drain_timeout` for
//!   in-flight work, then cancel whatever remains (checkpointed sweeps
//!   persist their completed probes first).
//!
//! Client-failure containment: a peer that dies mid-frame yields a typed
//! [`ServeError::Disconnected`]; one that dies while its request is in
//! flight is noticed by a non-blocking poll during the result wait, the
//! ticket is abandoned (cancelling the evaluation if it was the last
//! waiter), and the handler moves on. A hung or slow client can stall
//! only its own handler slot, never an evaluation worker.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, Evaluator, MetricsSnapshot};
use crate::error::ServeError;
use crate::util::pause;
use crate::wire::{
    decode_extension, decode_ping, decode_request, encode_pong, encode_response,
    is_extension_frame, MAX_FRAME_LEN,
};
use tecopt::CancelToken;

/// A bound, non-blocking listening socket (TCP or Unix).
pub enum Listener {
    /// TCP, e.g. `127.0.0.1:0`.
    Tcp(TcpListener),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener and switches it to non-blocking accepts.
    ///
    /// # Errors
    ///
    /// Any socket-level failure from bind.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        let l = TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        Ok(Listener::Tcp(l))
    }

    /// Binds a Unix-socket listener and switches it to non-blocking
    /// accepts. An existing socket file at `path` is an error (the caller
    /// decides whether unlinking a stale socket is safe).
    ///
    /// # Errors
    ///
    /// Any socket-level failure from bind.
    #[cfg(unix)]
    pub fn bind_unix(path: impl AsRef<Path>) -> io::Result<Listener> {
        let l = UnixListener::bind(path)?;
        l.set_nonblocking(true)?;
        Ok(Listener::Unix(l))
    }

    /// The bound TCP address (`None` for a Unix listener) — tests bind
    /// port 0 and read the real port back from here.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

/// One accepted connection.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.write_all(buf).and_then(|()| s.flush()),
            #[cfg(unix)]
            Conn::Unix(s) => s.write_all(buf).and_then(|()| s.flush()),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nb),
        }
    }
}

/// `true` for I/O errors that mean "the peer is gone", as opposed to a
/// timeout or transient condition.
fn is_disconnect(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// Sizing and timing knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler threads; also the concurrent-connection bound.
    pub handlers: usize,
    /// Evaluation worker threads feeding off the admission queue.
    pub eval_workers: usize,
    /// Granularity of shutdown checks and disconnect polling.
    pub poll_interval: Duration,
    /// How long a graceful shutdown waits for in-flight work before
    /// cancelling it.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            handlers: 4,
            eval_workers: 2,
            poll_interval: Duration::from_millis(20),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// What [`Server::run`] reports after the drain completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// Engine counters at shutdown.
    pub engine: MetricsSnapshot,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections that ended in a mid-frame or mid-request disconnect.
    pub disconnects: u64,
    /// Frames refused with a decode error.
    pub decode_errors: u64,
    /// `true` when every in-flight request finished inside the drain
    /// window (no cancellation was needed).
    pub drained_cleanly: bool,
}

/// The blocking socket server around an [`Engine`].
pub struct Server<E: Evaluator> {
    engine: Arc<Engine<E>>,
    listener: Listener,
    config: ServerConfig,
    shutdown: CancelToken,
    connections: AtomicU64,
    disconnects: AtomicU64,
    decode_errors: AtomicU64,
    drained_cleanly: AtomicBool,
}

enum FrameRead {
    /// One complete line, terminator stripped.
    Frame(Vec<u8>),
    /// EOF at a frame boundary: normal close.
    CleanClose,
    /// The peer vanished (EOF mid-frame or a reset).
    Disconnected,
    /// The server is shutting down; stop serving this connection.
    Shutdown,
    /// The peer exceeded [`MAX_FRAME_LEN`] without a terminator.
    TooLong,
}

impl<E: Evaluator> Server<E> {
    /// Wraps `engine` behind `listener`.
    pub fn new(listener: Listener, engine: Arc<Engine<E>>, config: ServerConfig) -> Server<E> {
        Server {
            engine,
            listener,
            config,
            shutdown: CancelToken::new(),
            connections: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            drained_cleanly: AtomicBool::new(true),
        }
    }

    /// The token that triggers graceful shutdown — raise it from any
    /// thread (a signal handler, a test, an operator command connection).
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// The bound TCP address, when listening on TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server until the shutdown token is raised and the drain
    /// completes, then reports. Blocks the calling thread; every internal
    /// thread comes from the fixed `service_workers` pool.
    pub fn run(&self) -> ServerReport {
        let handlers = self.config.handlers.max(1);
        let eval_workers = self.config.eval_workers.max(1);
        let total = handlers + eval_workers + 1;
        tecopt::parallel::service_workers(total, |w| {
            if w < eval_workers {
                self.engine.worker_loop(w);
            } else if w < eval_workers + handlers {
                self.handler_loop();
            } else {
                self.supervise();
            }
        });
        ServerReport {
            engine: self.engine.metrics(),
            connections: self.connections.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            drained_cleanly: self.drained_cleanly.load(Ordering::Relaxed),
        }
    }

    /// The shutdown sequencer: wait for the token, stop admission, drain,
    /// then cancel stragglers. Workers exit once the closed queue is
    /// empty; handlers exit once their connection ends.
    fn supervise(&self) {
        while !self.shutdown.is_cancelled() {
            pause(self.config.poll_interval);
        }
        self.engine.begin_drain();
        if !self.engine.await_drained(self.config.drain_timeout) {
            self.drained_cleanly.store(false, Ordering::Relaxed);
            self.engine.cancel_outstanding();
            // Cancelled evaluations still run to their next supervision
            // gate; bound the wait for their tickets to resolve.
            self.engine.await_drained(self.config.drain_timeout);
        }
    }

    fn handler_loop(&self) {
        loop {
            if self.shutdown.is_cancelled() {
                return;
            }
            match self.listener.accept() {
                Ok(conn) => {
                    self.connections.fetch_add(1, Ordering::Relaxed);
                    self.handle_connection(conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    pause(self.config.poll_interval);
                }
                Err(_) => pause(self.config.poll_interval),
            }
        }
    }

    /// Serves one connection until clean close, disconnect, decode
    /// overflow, or shutdown. Synchronous: one frame in, one frame out.
    fn handle_connection(&self, mut conn: Conn) {
        if conn
            .set_read_timeout(Some(self.config.poll_interval))
            .is_err()
        {
            return;
        }
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match self.read_frame(&mut conn, &mut buf) {
                FrameRead::Frame(line) => {
                    if !self.serve_frame(&mut conn, &mut buf, &line) {
                        return;
                    }
                }
                FrameRead::CleanClose | FrameRead::Shutdown => return,
                FrameRead::Disconnected => {
                    self.disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                FrameRead::TooLong => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let err = ServeError::DecodeError(format!(
                        "frame exceeds {MAX_FRAME_LEN} bytes without a terminator"
                    ));
                    // Best-effort error reply on a connection we are
                    // about to drop anyway.
                    // tecopt:allow(swallowed-result)
                    let _ = conn.write_all_bytes(respond(None, &Err(err)).as_bytes());
                    return;
                }
            }
        }
    }

    /// Decodes, submits, awaits, and replies to one frame. Returns
    /// `false` when the connection must close.
    fn serve_frame(&self, conn: &mut Conn, buf: &mut Vec<u8>, line: &[u8]) -> bool {
        let text = match std::str::from_utf8(line) {
            Ok(t) => t,
            Err(_) => {
                self.decode_errors.fetch_add(1, Ordering::Relaxed);
                let err = ServeError::DecodeError("frame is not valid UTF-8".into());
                return conn
                    .write_all_bytes(respond(None, &Err(err)).as_bytes())
                    .is_ok();
            }
        };
        // Fleet liveness probe: answered before admission, so a draining
        // or saturated server still tells its router it is reachable
        // (drain state travels on the *request* path as `shutting-down`).
        if let Some(nonce) = decode_ping(text) {
            let mut pong = encode_pong(nonce);
            pong.push('\n');
            return conn.write_all_bytes(pong.as_bytes()).is_ok();
        }
        // Extension frames (`#`-prefixed) are one-way by contract: never
        // answered, never fatal. Unknown tags from newer peers are
        // ignored; a malformed known tag only bumps the decode counter.
        if is_extension_frame(text) {
            match decode_extension(text) {
                Ok(Some(repl)) => {
                    self.engine
                        .insert_replicated(repl.request_fp, &repl.key, repl.response);
                }
                Ok(None) => {}
                Err(_) => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            return true;
        }
        let frame = match decode_request(text) {
            Ok(f) => f,
            Err(e) => {
                self.decode_errors.fetch_add(1, Ordering::Relaxed);
                return conn
                    .write_all_bytes(respond(None, &Err(e)).as_bytes())
                    .is_ok();
            }
        };
        let key = frame.key.clone();
        let result = match self.engine.submit(frame) {
            Err(e) => Err(e),
            Ok(ticket) => {
                let waited =
                    ticket.wait_polling(self.config.poll_interval, || poll_disconnect(conn, buf));
                if let Err(ServeError::Disconnected { .. }) = &waited {
                    // The client died while its request was in flight:
                    // abandon the ticket (cancelling the evaluation if no
                    // other retry still wants it) and free this slot.
                    self.engine.abandon(&ticket, key.as_deref());
                    self.disconnects.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                waited
            }
        };
        conn.write_all_bytes(respond(key.as_deref(), &result).as_bytes())
            .is_ok()
    }

    /// Accumulates bytes until `buf` holds a full line, polling the
    /// shutdown token at every read-timeout tick.
    fn read_frame(&self, conn: &mut Conn, buf: &mut Vec<u8>) -> FrameRead {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = buf.drain(..=pos).collect();
                line.pop(); // the terminator
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return FrameRead::Frame(line);
            }
            if buf.len() > MAX_FRAME_LEN {
                return FrameRead::TooLong;
            }
            match conn.read_bytes(&mut chunk) {
                Ok(0) => {
                    return if buf.is_empty() {
                        FrameRead::CleanClose
                    } else {
                        FrameRead::Disconnected
                    };
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.is_cancelled() {
                        return FrameRead::Shutdown;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(e.kind()) => {
                    return FrameRead::Disconnected;
                }
                Err(_) => return FrameRead::Disconnected,
            }
        }
    }
}

/// Encodes a reply and appends the frame terminator.
fn respond(key: Option<&str>, result: &Result<crate::wire::Response, ServeError>) -> String {
    let mut line = encode_response(key, result);
    line.push('\n');
    line
}

/// One non-blocking probe of the connection while a request is in
/// flight: detects a dead peer, and banks any pipelined bytes the client
/// sent early into `buf` for the next frame read.
///
/// # Errors
///
/// [`ServeError::Disconnected`] when the peer is gone.
fn poll_disconnect(conn: &mut Conn, buf: &mut Vec<u8>) -> Result<(), ServeError> {
    if conn.set_nonblocking(true).is_err() {
        return Err(ServeError::Disconnected {
            detail: "cannot poll connection".into(),
        });
    }
    let mut chunk = [0u8; 1024];
    let verdict = loop {
        match conn.read_bytes(&mut chunk) {
            Ok(0) => {
                break Err(ServeError::Disconnected {
                    detail: "peer closed while request in flight".into(),
                })
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_FRAME_LEN {
                    // Stop banking a runaway pipeline; the frame reader
                    // will refuse it as TooLong after the response.
                    break Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_disconnect(e.kind()) => {
                break Err(ServeError::Disconnected {
                    detail: "connection reset while request in flight".into(),
                })
            }
            Err(_) => {
                break Err(ServeError::Disconnected {
                    detail: "poll error while request in flight".into(),
                })
            }
        }
    };
    // Back to blocking-with-timeout for the frame reader. If restoring
    // blocking mode fails the next read errors immediately and the
    // connection is torn down there.
    // tecopt:allow(swallowed-result)
    let _ = conn.set_nonblocking(false);
    verdict
}
