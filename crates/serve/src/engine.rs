//! The evaluation engine: admission control, idempotent deduplication,
//! per-request supervision, and graceful drain.
//!
//! The engine is the in-process face of the service — the socket layer in
//! `server` is a thin codec in front of it. Life of a request:
//!
//! 1. [`Engine::submit`] — admission. A draining engine sheds with
//!    [`ServeError::ShuttingDown`]; a full [`BoundedQueue`] sheds with
//!    [`ServeError::Overloaded`] *before any work is spent*. A request
//!    carrying an idempotency key is first checked against the result
//!    cache (a completed deterministic result is returned instantly) and
//!    the in-flight table (a retry of running work joins the existing
//!    [`Ticket`] instead of doubling the load).
//! 2. A worker ([`Engine::worker_loop`], run on
//!    [`tecopt::parallel::service_workers`]) claims the job, maps the
//!    request's remaining deadline and cancel token onto a
//!    [`RunContext`], and runs the evaluator under `catch_unwind` — a
//!    panicking evaluation becomes `Eval(WorkerPanicked)` on that one
//!    ticket, never a dead worker or an aborted process.
//! 3. The waiter blocks on [`Ticket::wait`] (or the polling variant the
//!    connection handlers use). If every waiter abandons the ticket —
//!    the client disconnected — the job's cancel token is raised so the
//!    evaluation stops at its next supervision gate; it is never aborted
//!    mid-solve.
//! 4. Drain: [`Engine::begin_drain`] closes admission, workers finish the
//!    backlog, [`Engine::await_drained`] bounds the wait, and
//!    [`Engine::cancel_outstanding`] raises every live token past the
//!    drain deadline. Checkpointed designer sweeps persist completed
//!    probes, so a keyed retry after a restart resumes bit-identically
//!    (DESIGN.md §12).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::queue::{BoundedQueue, PushError};
use crate::replicate::{ReplEntry, ReplicationSink};
use crate::wire::{request_fingerprint, Request, RequestFrame, Response, MAX_EXPLORE_FRONT};
use tecopt::parallel::panic_message;
use tecopt::runaway::sweep_fractions_supervised;
use tecopt::transient::{TransientFailure, TransientSimulator};
use tecopt::{
    runaway_limit, score_candidates, CancelToken, CoolingSystem, CurrentSettings,
    EnvelopedController, OptError, RunContext, SafetyEnvelope, SweepFailure,
};
use tecopt_explore::{DesignSpace, ExploreSettings, Explorer};
use tecopt_units::Amperes;

/// Evaluates one request under a supervision context. Implementations
/// must honor the context's cancel token and deadline at their internal
/// gates; the engine never aborts a running evaluation.
pub trait Evaluator: Send + Sync {
    /// Runs `request` to completion or to a typed error.
    ///
    /// # Errors
    ///
    /// Any [`OptError`] — including the supervision variants when the
    /// context expires mid-run.
    fn evaluate(&self, request: &Request, ctx: &RunContext) -> Result<Response, OptError>;
}

/// Completed transient summaries kept for fingerprint-keyed replay.
/// Transient playbacks are the service's most expensive evaluations and
/// fully deterministic, so identical traces (same body, *regardless* of
/// idempotency key) replay from here. The cache clears wholesale when
/// full — eviction order is irrelevant at this size and clearing keeps
/// the structure allocation-free on the hit path.
const TRANSIENT_CACHE_CAPACITY: usize = 128;

/// The production evaluator: one shared [`CoolingSystem`] snapshot.
pub struct TecEvaluator {
    system: CoolingSystem,
    settings: CurrentSettings,
    /// The runaway limit λ_m, computed once on first transient request.
    /// Every request shares one system snapshot, so λ_m never changes.
    lambda: Mutex<Option<Amperes>>,
    /// Deterministic transient results keyed on the trace fingerprint.
    transient_cache: Mutex<HashMap<u64, Response>>,
}

impl TecEvaluator {
    /// Serves evaluations of `system`, optimizing designer candidates
    /// with `settings`.
    pub fn new(system: CoolingSystem, settings: CurrentSettings) -> TecEvaluator {
        TecEvaluator {
            system,
            settings,
            lambda: Mutex::new(None),
            transient_cache: Mutex::new(HashMap::new()),
        }
    }

    /// λ_m for the served system, computed lazily and cached. Transient
    /// requests on a passive system fail here with
    /// [`OptError::NoDevicesDeployed`] — an envelope without a runaway
    /// limit to enforce would be vacuous.
    fn lambda_limit(&self) -> Result<Amperes, OptError> {
        let mut slot = self.lambda.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(lambda) = *slot {
            return Ok(lambda);
        }
        let lambda = runaway_limit(&self.system, self.settings.lambda_tolerance)?.lambda();
        *slot = Some(lambda);
        Ok(lambda)
    }

    fn evaluate_transient(
        &self,
        request: &Request,
        ctx: &RunContext,
    ) -> Result<Response, OptError> {
        let Request::Transient {
            dt,
            limit,
            envelope,
            controller,
            schedule,
        } = request
        else {
            return Err(OptError::InvalidParameter(
                "evaluate_transient called with a non-transient request".into(),
            ));
        };
        // The trace fingerprint: the canonical wire encoding of the bare
        // request digests every parameter bit-exactly. It keys the result
        // cache and binds the controller + envelope configuration into the
        // playback checkpoint identity (the simulator digests the rest).
        let fp = request_fingerprint(request);
        if let Some(hit) = self
            .transient_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&fp)
        {
            return Ok(hit.clone());
        }

        let lambda = self.lambda_limit()?;
        let mut ctl = EnvelopedController::new(
            controller.build()?,
            SafetyEnvelope::new(lambda, envelope.clone())?,
        );
        let mut sim = TransientSimulator::new(self.system.clone(), *dt)?;
        sim.set_guard(lambda)?;
        let trace = sim
            .run_schedule_checkpointed(schedule, &mut ctl, fp, ctx)
            .map_err(TransientFailure::into_error)?;
        let solves = sim.guard_stats().map_or(0, |s| s.solves_issued);
        let response = Response::Transient {
            steps: trace.samples().len(),
            peak: trace.peak().unwrap_or_else(|| sim.peak()),
            violation_fraction: trace.violation_fraction(*limit),
            tec_energy_joules: trace.tec_energy_joules(*dt),
            envelope_events: ctl.envelope().violations_total(),
            tripped: ctl.envelope().trips() > 0,
            solves,
        };
        let mut cache = self
            .transient_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if cache.len() >= TRANSIENT_CACHE_CAPACITY {
            cache.clear();
        }
        cache.insert(fp, response.clone());
        Ok(response)
    }
}

impl Evaluator for TecEvaluator {
    fn evaluate(&self, request: &Request, ctx: &RunContext) -> Result<Response, OptError> {
        match request {
            Request::Steady { current } => {
                let mut solver = self.system.solver()?.with_cancel(ctx.token().clone());
                let state = solver.solve(*current)?;
                Ok(Response::Steady {
                    peak: state.peak(),
                    tec_power: state.tec_power(),
                })
            }
            Request::Runaway {
                lambda_tolerance,
                fractions,
            } => {
                let sweep =
                    sweep_fractions_supervised(&self.system, fractions, *lambda_tolerance, ctx)
                        .map_err(SweepFailure::into_error)?;
                Ok(Response::Runaway {
                    lambda: sweep.limit.lambda(),
                    points: sweep.points,
                })
            }
            Request::Designer { candidates } => {
                let scores = score_candidates(&self.system, candidates, self.settings, ctx)
                    .map_err(SweepFailure::into_error)?;
                Ok(Response::Designer { scores })
            }
            Request::Transient { .. } => self.evaluate_transient(request, ctx),
            Request::Explore {
                theta_limit,
                thickness_scales,
                contact_scales,
                placements,
            } => {
                let space = DesignSpace::new(
                    thickness_scales.clone(),
                    contact_scales.clone(),
                    placements.clone(),
                    *theta_limit,
                )?;
                let settings = ExploreSettings {
                    current: self.settings,
                    ..ExploreSettings::default()
                };
                // The context's checkpoint path (keyed requests only) is
                // the work ledger: a shard killed mid-exploration hands
                // the file to its successor, which resumes with zero
                // duplicated and zero lost evaluations.
                let report = Explorer::new(&self.system, space, settings).explore(ctx)?;
                // The wire caps one response at MAX_EXPLORE_FRONT points;
                // truncating the canonical-order front here (total size
                // still reported) keeps the cached/replicated response
                // identical to what any client can actually receive.
                let front_total = report.front.len();
                let mut front = report.front;
                front.truncate(MAX_EXPLORE_FRONT);
                Ok(Response::Explore {
                    evaluated: report.evaluated,
                    pruned: report.pruned,
                    feasible: report.feasible,
                    quarantined: report.quarantined.len(),
                    front_total,
                    front,
                })
            }
        }
    }
}

/// Sizing and policy knobs of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded admission-queue capacity (the load-shedding threshold).
    pub queue_capacity: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline: Option<Duration>,
    /// Most completed results kept for idempotent retries.
    pub cache_capacity: usize,
    /// Directory for designer-sweep checkpoints (keyed requests only).
    /// `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_capacity: 32,
            default_deadline: None,
            cache_capacity: 256,
            checkpoint_dir: None,
        }
    }
}

/// Counters the engine maintains; snapshot with [`Engine::metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Requests offered to `submit` (including shed and deduplicated).
    pub submitted: u64,
    /// Requests shed with `Overloaded`.
    pub shed_overload: u64,
    /// Requests refused with `ShuttingDown`.
    pub shed_shutdown: u64,
    /// Requests answered from the idempotency cache or joined onto
    /// in-flight work.
    pub deduplicated: u64,
    /// Requests that completed with `Ok`.
    pub completed_ok: u64,
    /// Requests that completed with a typed error.
    pub completed_err: u64,
    /// Evaluations that panicked (contained per request).
    pub panics_contained: u64,
    /// Keyed requests answered from a peer-replicated cache entry
    /// (a subset of `deduplicated`).
    pub replicated_hits: u64,
    /// Replicated entries refused because their request fingerprint did
    /// not match the incoming request (the poisoned-replica defense).
    pub replicated_rejects: u64,
}

#[derive(Default)]
struct Metrics {
    submitted: AtomicU64,
    shed_overload: AtomicU64,
    shed_shutdown: AtomicU64,
    deduplicated: AtomicU64,
    completed_ok: AtomicU64,
    completed_err: AtomicU64,
    panics_contained: AtomicU64,
    replicated_hits: AtomicU64,
    replicated_rejects: AtomicU64,
}

/// The shared handle a waiter holds for one admitted request.
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    state: Mutex<Option<Result<Response, ServeError>>>,
    done: Condvar,
    token: CancelToken,
    waiters: AtomicUsize,
}

impl Ticket {
    fn pending(seq: u64) -> Arc<Ticket> {
        Arc::new(Ticket {
            seq,
            state: Mutex::new(None),
            done: Condvar::new(),
            token: CancelToken::new(),
            waiters: AtomicUsize::new(1),
        })
    }

    fn resolved(seq: u64, result: Result<Response, ServeError>) -> Arc<Ticket> {
        let t = Ticket::pending(seq);
        t.complete(result);
        t
    }

    fn complete(&self, result: Result<Response, ServeError>) {
        let mut state = self.lock_state();
        if state.is_none() {
            *state = Some(result);
        }
        drop(state);
        self.done.notify_all();
    }

    /// The engine-assigned admission sequence number (diagnostic; it is
    /// also the `index` a contained panic reports).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The result, if the request has finished.
    pub fn try_result(&self) -> Option<Result<Response, ServeError>> {
        self.lock_state().clone()
    }

    /// Blocks until the request finishes and returns its result.
    pub fn wait(&self) -> Result<Response, ServeError> {
        let mut state = self.lock_state();
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the request finishes, waking every `poll_every` to
    /// run `poll` — the connection handlers use this to notice a client
    /// that died while its request was in flight. A `poll` error is
    /// returned as-is (the caller then [`Engine::abandon`]s the ticket).
    ///
    /// # Errors
    ///
    /// The request's own typed error, or whatever `poll` reported.
    pub fn wait_polling<F>(&self, poll_every: Duration, mut poll: F) -> Result<Response, ServeError>
    where
        F: FnMut() -> Result<(), ServeError>,
    {
        let mut state = self.lock_state();
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            let (next, _timed_out) = self
                .done
                .wait_timeout(state, poll_every)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if state.is_none() {
                drop(state);
                poll()?;
                state = self.lock_state();
            }
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, Option<Result<Response, ServeError>>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

enum CacheEntry {
    Done(Result<Response, ServeError>),
    InFlight(Arc<Ticket>),
    /// A result a peer shard replicated here. Served **only** to a
    /// request whose canonical fingerprint matches `fingerprint` — the
    /// entry is bound to the exact request bits it answers, so a
    /// poisoned or stale replica can never serve a wrong answer, only
    /// miss and re-evaluate.
    Replicated {
        fingerprint: u64,
        response: Response,
    },
}

/// What `submit` found under an idempotency key, cloned out of the cache
/// so every follow-up (ticket construction, fingerprint verification)
/// runs with the guard released.
enum KeyHit {
    Done(Result<Response, ServeError>),
    Joined(Arc<Ticket>),
    Replicated(u64, Response),
}

#[derive(Default)]
struct IdemCache {
    entries: HashMap<String, CacheEntry>,
    /// Keys of completed (`Done` or `Replicated`) entries, oldest first,
    /// for bounded eviction.
    done_order: Vec<String>,
}

impl IdemCache {
    /// Evicts completed entries, oldest first, down to `capacity`.
    /// `InFlight` entries are never evicted from here — they leave when
    /// their job settles or is abandoned.
    fn evict_completed(&mut self, capacity: usize) {
        while self.done_order.len() > capacity {
            let evict = self.done_order.remove(0);
            if matches!(
                self.entries.get(&evict),
                Some(CacheEntry::Done(_) | CacheEntry::Replicated { .. })
            ) {
                self.entries.remove(&evict);
            }
        }
    }
}

struct Job {
    seq: u64,
    key: Option<String>,
    deadline: Option<Instant>,
    request: Request,
    ticket: Arc<Ticket>,
}

/// The evaluation engine. `E` runs the actual physics; everything here is
/// scheduling, supervision, and failure containment.
pub struct Engine<E: Evaluator> {
    evaluator: E,
    config: EngineConfig,
    queue: BoundedQueue<Job>,
    cache: Mutex<IdemCache>,
    in_flight: Mutex<HashMap<u64, CancelToken>>,
    outstanding: Mutex<usize>,
    idle: Condvar,
    draining: AtomicBool,
    seq: AtomicU64,
    metrics: Metrics,
    /// Where completed keyed `Ok` results are offered for cross-shard
    /// replication. Unset engines (single-shard deployments) skip the
    /// offer entirely.
    repl_sink: std::sync::OnceLock<Arc<dyn ReplicationSink>>,
}

impl<E: Evaluator> Engine<E> {
    /// Builds an engine around `evaluator`.
    pub fn new(evaluator: E, config: EngineConfig) -> Engine<E> {
        let queue = BoundedQueue::new(config.queue_capacity);
        Engine {
            evaluator,
            config,
            queue,
            cache: Mutex::new(IdemCache::default()),
            in_flight: Mutex::new(HashMap::new()),
            outstanding: Mutex::new(0),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            metrics: Metrics::default(),
            repl_sink: std::sync::OnceLock::new(),
        }
    }

    /// Wires the engine into a replication fan-out: every keyed request
    /// that completes `Ok` is offered to `sink` (best-effort, after the
    /// local cache settles). Set once, before serving; later calls are
    /// ignored.
    pub fn set_replication_sink(&self, sink: Arc<dyn ReplicationSink>) {
        let _ = self.repl_sink.set(sink);
    }

    /// `true` once [`Engine::begin_drain`] ran: admission is closed and
    /// the engine is finishing its backlog. Fleet health checks treat a
    /// draining shard as unavailable for new work.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// A snapshot of the engine's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        MetricsSnapshot {
            submitted: m.submitted.load(Ordering::Relaxed),
            shed_overload: m.shed_overload.load(Ordering::Relaxed),
            shed_shutdown: m.shed_shutdown.load(Ordering::Relaxed),
            deduplicated: m.deduplicated.load(Ordering::Relaxed),
            completed_ok: m.completed_ok.load(Ordering::Relaxed),
            completed_err: m.completed_err.load(Ordering::Relaxed),
            panics_contained: m.panics_contained.load(Ordering::Relaxed),
            replicated_hits: m.replicated_hits.load(Ordering::Relaxed),
            replicated_rejects: m.replicated_rejects.load(Ordering::Relaxed),
        }
    }

    /// Admits one request, returning the ticket its result will arrive on.
    ///
    /// # Errors
    ///
    /// - [`ServeError::ShuttingDown`] once [`Engine::begin_drain`] ran.
    /// - [`ServeError::Overloaded`] when the admission queue is full —
    ///   shed before any evaluation work is spent.
    pub fn submit(&self, frame: RequestFrame) -> Result<Arc<Ticket>, ServeError> {
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        if self.draining.load(Ordering::Acquire) {
            self.metrics.shed_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);

        // Idempotent retry? Serve from the cache or join in-flight work.
        // The hit is cloned out and the cache guard released before any
        // follow-up: `Ticket::resolved` takes the ticket's own state
        // lock, and the replicated-entry fingerprint check encodes the
        // whole request — neither belongs inside the cache's critical
        // section (the workspace lock-acquisition graph stays clean).
        if let Some(key) = frame.key.as_deref() {
            let hit = {
                let cache = self.lock_cache();
                match cache.entries.get(key) {
                    Some(CacheEntry::Done(result)) => Some(KeyHit::Done(result.clone())),
                    Some(CacheEntry::InFlight(ticket)) => {
                        // The waiter count must rise while the entry is
                        // still pinned by the guard (the resolver pairs
                        // it with a `fetch_sub` when removing the entry).
                        ticket.waiters.fetch_add(1, Ordering::AcqRel);
                        Some(KeyHit::Joined(Arc::clone(ticket)))
                    }
                    Some(CacheEntry::Replicated {
                        fingerprint,
                        response,
                    }) => Some(KeyHit::Replicated(*fingerprint, response.clone())),
                    None => None,
                }
            };
            match hit {
                Some(KeyHit::Done(result)) => {
                    self.metrics.deduplicated.fetch_add(1, Ordering::Relaxed);
                    return Ok(Ticket::resolved(seq, result));
                }
                Some(KeyHit::Joined(ticket)) => {
                    self.metrics.deduplicated.fetch_add(1, Ordering::Relaxed);
                    return Ok(ticket);
                }
                Some(KeyHit::Replicated(fp, response)) => {
                    if request_fingerprint(&frame.request) == fp {
                        self.metrics.deduplicated.fetch_add(1, Ordering::Relaxed);
                        self.metrics.replicated_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Ticket::resolved(seq, Ok(response)));
                    }
                    // The replica answers a *different* request than the
                    // one retrying under this key: refuse it, discard
                    // it, and evaluate fresh. Serving it would be wrong;
                    // missing only costs work.
                    self.metrics
                        .replicated_rejects
                        .fetch_add(1, Ordering::Relaxed);
                    self.drop_replicated_entry(key, fp);
                }
                None => {}
            }
        }

        let ticket = Ticket::pending(seq);
        let deadline = frame
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.default_deadline)
            .and_then(|t| Instant::now().checked_add(t));
        let job = Job {
            seq,
            key: frame.key.clone(),
            deadline,
            request: frame.request,
            ticket: Arc::clone(&ticket),
        };
        if let Some(key) = &frame.key {
            self.lock_cache()
                .entries
                .insert(key.clone(), CacheEntry::InFlight(Arc::clone(&ticket)));
        }
        // Count the job outstanding BEFORE it becomes visible to workers:
        // a worker that pops and finishes it instantly would otherwise
        // decrement first (clamped at zero) and the late increment would
        // leak one outstanding forever, wedging every future drain.
        *self.lock_outstanding() += 1;
        match self.queue.try_push(job) {
            Ok(()) => Ok(ticket),
            Err(e) => {
                self.finish_one();
                if let Some(key) = &frame.key {
                    self.remove_in_flight_entry(key, &ticket);
                }
                Err(match e {
                    PushError::Full { depth, capacity } => {
                        self.metrics.shed_overload.fetch_add(1, Ordering::Relaxed);
                        ServeError::Overloaded { depth, capacity }
                    }
                    PushError::Closed => {
                        self.metrics.shed_shutdown.fetch_add(1, Ordering::Relaxed);
                        ServeError::ShuttingDown
                    }
                })
            }
        }
    }

    /// Releases one waiter's interest in `ticket`. When the *last* waiter
    /// abandons a still-pending request — every client that asked for it
    /// has disconnected — its cancel token is raised so the evaluation
    /// stops at the next supervision gate, and its idempotency entry is
    /// dropped so a later retry starts fresh.
    pub fn abandon(&self, ticket: &Arc<Ticket>, key: Option<&str>) {
        if ticket.waiters.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        if ticket.try_result().is_none() {
            ticket.token.cancel();
            if let Some(key) = key {
                self.remove_in_flight_entry(key, ticket);
            }
        }
    }

    /// One worker's run loop: claims jobs until the queue closes and
    /// drains. Run a fixed pool of these on
    /// [`tecopt::parallel::service_workers`].
    pub fn worker_loop(&self, _worker: usize) {
        while let Some(job) = self.queue.pop() {
            self.run_job(job);
        }
    }

    fn run_job(&self, job: Job) {
        self.lock_in_flight()
            .insert(job.seq, job.ticket.token.clone());

        let result = self.evaluate_supervised(&job);

        self.lock_in_flight().remove(&job.seq);
        match &result {
            Ok(_) => self.metrics.completed_ok.fetch_add(1, Ordering::Relaxed),
            Err(e) => {
                if matches!(e, ServeError::Eval(OptError::WorkerPanicked { .. })) {
                    self.metrics
                        .panics_contained
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.metrics.completed_err.fetch_add(1, Ordering::Relaxed)
            }
        };
        if let Some(key) = &job.key {
            self.settle_cache(key, &job.ticket, &result);
            // Offer the finished result to peer shards. Only `Ok`
            // outcomes travel (errors are either transient or cheap to
            // re-derive), and only after the local cache settled — a
            // replica must never be fresher than its origin.
            if let (Ok(response), Some(sink)) = (&result, self.repl_sink.get()) {
                sink.offer(ReplEntry {
                    request_fp: request_fingerprint(&job.request),
                    key: key.clone(),
                    response: response.clone(),
                });
            }
        }
        job.ticket.complete(result);
        self.finish_one();
    }

    fn evaluate_supervised(&self, job: &Job) -> Result<Response, ServeError> {
        // A deadline that expired while the job sat in the queue is a
        // typed refusal, not a doomed evaluation.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ServeError::Eval(OptError::DeadlineExceeded {
                completed: 0,
                remaining: 1,
            }));
        }
        let mut ctx = RunContext::unbounded().cancel_token(job.ticket.token.clone());
        if let Some(deadline) = job.deadline {
            ctx = ctx.deadline_at(deadline);
        }
        if let (Some(dir), Some(key)) = (&self.config.checkpoint_dir, &job.key) {
            // Only the resumable request kinds get a checkpoint path:
            // designer sweeps (probe-granular), transient playbacks
            // (timestep-granular, DESIGN.md §14), and explorations
            // (candidate-granular work ledger, DESIGN.md §18 — the
            // `.ledger` extension distinguishes the durable lease trail
            // from the replayable `.ckpt` prefix format).
            match job.request {
                Request::Designer { .. } | Request::Transient { .. } => {
                    ctx = ctx.checkpoint(dir.join(format!("{key}.ckpt")));
                }
                Request::Explore { .. } => {
                    ctx = ctx.checkpoint(dir.join(format!("{key}.ledger")));
                }
                _ => {}
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.evaluator.evaluate(&job.request, &ctx)
        }));
        match outcome {
            Ok(result) => result.map_err(ServeError::from),
            Err(payload) => Err(ServeError::Eval(OptError::WorkerPanicked {
                index: usize::try_from(job.seq).unwrap_or(usize::MAX),
                payload: panic_message(payload),
            })),
        }
    }

    /// Records a finished keyed request in the idempotency cache.
    /// Only *deterministic* outcomes are cached — a retry of a cancelled,
    /// expired, or panicked request must re-run, not replay the failure.
    fn settle_cache(&self, key: &str, ticket: &Arc<Ticket>, result: &Result<Response, ServeError>) {
        let deterministic = match result {
            Ok(_) => true,
            Err(ServeError::Eval(e)) => !matches!(
                e,
                OptError::Cancelled { .. }
                    | OptError::DeadlineExceeded { .. }
                    | OptError::WorkerPanicked { .. }
            ),
            Err(_) => false,
        };
        let mut cache = self.lock_cache();
        let ours = matches!(
            cache.entries.get(key),
            Some(CacheEntry::InFlight(t)) if Arc::ptr_eq(t, ticket)
        );
        if !ours {
            return; // a fresh retry superseded this entry; leave it alone
        }
        if deterministic {
            cache
                .entries
                .insert(key.to_string(), CacheEntry::Done(result.clone()));
            cache.done_order.push(key.to_string());
            cache.evict_completed(self.config.cache_capacity);
        } else {
            cache.entries.remove(key);
        }
    }

    /// Files a peer-replicated result under `key`, to be served only to
    /// a request whose canonical fingerprint matches `fingerprint`.
    /// Best-effort: anything the engine already knows locally — a
    /// completed result or in-flight work — always wins over a replica.
    pub fn insert_replicated(&self, fingerprint: u64, key: &str, response: Response) {
        if !crate::wire::valid_key(key) {
            return;
        }
        let mut cache = self.lock_cache();
        match cache.entries.get(key) {
            Some(CacheEntry::Done(_) | CacheEntry::InFlight(_)) => return,
            Some(CacheEntry::Replicated { .. }) | None => {}
        }
        let fresh = !cache.entries.contains_key(key);
        cache.entries.insert(
            key.to_string(),
            CacheEntry::Replicated {
                fingerprint,
                response,
            },
        );
        if fresh {
            cache.done_order.push(key.to_string());
            cache.evict_completed(self.config.cache_capacity);
        }
    }

    /// Discards the replicated entry under `key` if it still carries
    /// `fp` — the caller observed a fingerprint mismatch and the entry
    /// must never be offered again (unless a fresh replica replaced it
    /// in the meantime).
    fn drop_replicated_entry(&self, key: &str, fp: u64) {
        let mut cache = self.lock_cache();
        if matches!(
            cache.entries.get(key),
            Some(CacheEntry::Replicated { fingerprint, .. }) if *fingerprint == fp
        ) {
            cache.entries.remove(key);
            cache.done_order.retain(|k| k != key);
        }
    }

    /// Closes admission: `submit` refuses with `ShuttingDown`, workers
    /// drain the already-admitted backlog and then exit. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.queue.close();
    }

    /// Requests still queued or running.
    pub fn outstanding(&self) -> usize {
        *self.lock_outstanding()
    }

    /// Blocks until every admitted request has completed, or `timeout`
    /// elapses. Returns `true` when fully drained.
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now().checked_add(timeout);
        let mut outstanding = self.lock_outstanding();
        loop {
            if *outstanding == 0 {
                return true;
            }
            let remaining = match deadline {
                Some(d) => d.saturating_duration_since(Instant::now()),
                None => Duration::from_secs(3600),
            };
            if deadline.is_some() && remaining.is_zero() {
                return false;
            }
            let (next, _timed_out) = self
                .idle
                .wait_timeout(outstanding, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            outstanding = next;
        }
    }

    /// The hard edge of a drain deadline: fails every still-queued job
    /// with [`ServeError::ShuttingDown`] and raises the cancel token of
    /// every running one. Running evaluations stop at their next
    /// supervision gate — checkpointed sweeps persist completed probes
    /// first — and complete their tickets with typed errors. Never aborts.
    pub fn cancel_outstanding(&self) {
        for job in self.queue.close_and_drain() {
            if let Some(key) = &job.key {
                self.remove_in_flight_entry(key, &job.ticket);
            }
            self.metrics.completed_err.fetch_add(1, Ordering::Relaxed);
            job.ticket.complete(Err(ServeError::ShuttingDown));
            self.finish_one();
        }
        for token in self.lock_in_flight().values() {
            token.cancel();
        }
    }

    fn finish_one(&self) {
        let mut outstanding = self.lock_outstanding();
        *outstanding = outstanding.saturating_sub(1);
        drop(outstanding);
        self.idle.notify_all();
    }

    fn remove_in_flight_entry(&self, key: &str, ticket: &Arc<Ticket>) {
        let mut cache = self.lock_cache();
        if matches!(
            cache.entries.get(key),
            Some(CacheEntry::InFlight(t)) if Arc::ptr_eq(t, ticket)
        ) {
            cache.entries.remove(key);
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, IdemCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_in_flight(&self) -> std::sync::MutexGuard<'_, HashMap<u64, CancelToken>> {
        self.in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_outstanding(&self) -> std::sync::MutexGuard<'_, usize> {
        self.outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use tecopt_units::{Celsius, Watts};

    /// A scriptable evaluator: sleeps-by-gate, panics, or answers.
    struct FakeEval {
        calls: AtomicUsize,
        panic_on: Option<f64>,
        block_until_cancelled: bool,
    }

    impl FakeEval {
        fn answering() -> FakeEval {
            FakeEval {
                calls: AtomicUsize::new(0),
                panic_on: None,
                block_until_cancelled: false,
            }
        }
    }

    impl Evaluator for FakeEval {
        fn evaluate(&self, request: &Request, ctx: &RunContext) -> Result<Response, OptError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let current = match request {
                Request::Steady { current } => current.value(),
                _ => 0.0,
            };
            if self.panic_on == Some(current) {
                panic!("scripted evaluation panic at {current}");
            }
            if self.block_until_cancelled {
                loop {
                    ctx.ensure_live()?;
                    std::hint::spin_loop();
                }
            }
            Ok(Response::Steady {
                peak: Celsius(current * 10.0),
                tec_power: Watts(current),
            })
        }
    }

    fn steady(key: Option<&str>, current: f64) -> RequestFrame {
        RequestFrame {
            key: key.map(String::from),
            deadline_ms: None,
            request: Request::Steady {
                current: tecopt_units::Amperes(current),
            },
        }
    }

    fn drive<E: Evaluator, R>(engine: &Engine<E>, workers: usize, f: impl Fn() -> R + Sync) {
        tecopt::parallel::service_workers(workers + 1, |w| {
            if w == 0 {
                f();
                engine.begin_drain();
            } else {
                engine.worker_loop(w);
            }
        });
    }

    #[test]
    fn submits_evaluate_and_resolve_tickets() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        drive(&engine, 2, || {
            let t = engine.submit(steady(None, 2.0)).unwrap();
            let r = t.wait().unwrap();
            assert_eq!(
                r,
                Response::Steady {
                    peak: Celsius(20.0),
                    tec_power: Watts(2.0)
                }
            );
        });
        let m = engine.metrics();
        assert_eq!(m.completed_ok, 1);
        assert_eq!(m.completed_err, 0);
    }

    #[test]
    fn rapid_submit_complete_cycles_leave_outstanding_exactly_zero() {
        // Regression: `submit` must count a job outstanding *before*
        // pushing it. When the increment came after `try_push`, a worker
        // finishing the job instantly would decrement first (clamped at
        // zero) and the late increment leaked one outstanding forever —
        // an intermittent drain-timeout under load. Instant evaluations
        // in a tight loop give the race thousands of chances.
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        drive(&engine, 2, || {
            for i in 0..2_000 {
                let t = engine.submit(steady(None, 1.0 + f64::from(i % 7))).unwrap();
                assert!(t.wait().is_ok());
            }
        });
        assert_eq!(engine.outstanding(), 0);
        assert!(engine.await_drained(Duration::from_secs(5)));
    }

    #[test]
    fn overload_sheds_with_typed_error_before_any_work() {
        let eval = FakeEval::answering();
        let engine = Engine::new(
            eval,
            EngineConfig {
                queue_capacity: 2,
                ..EngineConfig::default()
            },
        );
        // No workers running: the queue fills and the third submit sheds.
        engine.submit(steady(None, 1.0)).unwrap();
        engine.submit(steady(None, 2.0)).unwrap();
        match engine.submit(steady(None, 3.0)) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(engine.metrics().shed_overload, 1);
        assert_eq!(engine.evaluator.calls.load(Ordering::SeqCst), 0);
        // Drain the backlog so nothing dangles.
        engine.begin_drain();
        engine.worker_loop(0);
        assert!(engine.await_drained(Duration::from_secs(5)));
    }

    #[test]
    fn a_panicking_evaluation_is_contained_to_its_ticket() {
        let eval = FakeEval {
            calls: AtomicUsize::new(0),
            panic_on: Some(13.0),
            block_until_cancelled: false,
        };
        let engine = Engine::new(eval, EngineConfig::default());
        drive(&engine, 1, || {
            let bad = engine.submit(steady(None, 13.0)).unwrap();
            match bad.wait() {
                Err(ServeError::Eval(OptError::WorkerPanicked { payload, .. })) => {
                    assert!(payload.contains("scripted evaluation panic"));
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            // The same (sole) worker survives to serve the next request.
            let good = engine.submit(steady(None, 1.0)).unwrap();
            assert!(good.wait().is_ok());
        });
        let m = engine.metrics();
        assert_eq!(m.panics_contained, 1);
        assert_eq!(m.completed_ok, 1);
    }

    #[test]
    fn idempotency_cache_replays_and_inflight_dedupes() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        drive(&engine, 1, || {
            let first = engine.submit(steady(Some("k1"), 4.0)).unwrap();
            let r1 = first.wait().unwrap();
            // Retry with the same key: answered from the cache.
            let retry = engine.submit(steady(Some("k1"), 4.0)).unwrap();
            assert_eq!(retry.wait().unwrap(), r1);
        });
        assert_eq!(engine.evaluator.calls.load(Ordering::SeqCst), 1);
        assert_eq!(engine.metrics().deduplicated, 1);
    }

    #[test]
    fn inflight_retries_share_one_evaluation() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        // Submit twice with one key before any worker runs: the second
        // joins the first's ticket and only one job is queued.
        let a = engine.submit(steady(Some("dup"), 5.0)).unwrap();
        let b = engine.submit(steady(Some("dup"), 5.0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(engine.queue.depth(), 1);
        engine.begin_drain();
        engine.worker_loop(0);
        assert_eq!(a.wait().unwrap(), b.wait().unwrap());
        assert_eq!(engine.evaluator.calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn last_abandoning_waiter_cancels_the_job() {
        let eval = FakeEval {
            calls: AtomicUsize::new(0),
            panic_on: None,
            block_until_cancelled: true,
        };
        let engine = Engine::new(eval, EngineConfig::default());
        drive(&engine, 1, || {
            let t = engine.submit(steady(Some("gone"), 1.0)).unwrap();
            // The only waiter walks away: the evaluation must observe the
            // raised token and complete with Cancelled.
            engine.abandon(&t, Some("gone"));
            assert!(t.token.is_cancelled());
            assert!(matches!(
                t.wait(),
                Err(ServeError::Eval(OptError::Cancelled { .. }))
            ));
        });
        // A cancelled outcome is transient: nothing was cached.
        assert!(engine.lock_cache().entries.is_empty());
    }

    #[test]
    fn expired_deadline_in_queue_is_a_typed_refusal() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        let frame = RequestFrame {
            deadline_ms: Some(0),
            ..steady(None, 1.0)
        };
        let t = engine.submit(frame).unwrap();
        engine.begin_drain();
        engine.worker_loop(0);
        assert!(matches!(
            t.wait(),
            Err(ServeError::Eval(OptError::DeadlineExceeded { .. }))
        ));
        assert_eq!(engine.evaluator.calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_admitted_work() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        let t = engine.submit(steady(None, 2.0)).unwrap();
        engine.begin_drain();
        assert!(matches!(
            engine.submit(steady(None, 3.0)),
            Err(ServeError::ShuttingDown)
        ));
        engine.worker_loop(0); // drains the backlog, then exits
        assert!(t.wait().is_ok());
        assert!(engine.await_drained(Duration::from_secs(5)));
        assert_eq!(engine.outstanding(), 0);
    }

    #[test]
    fn cancel_outstanding_fails_queued_work_with_typed_errors() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        let t1 = engine.submit(steady(None, 1.0)).unwrap();
        let t2 = engine.submit(steady(Some("q"), 2.0)).unwrap();
        engine.begin_drain();
        engine.cancel_outstanding();
        assert!(matches!(t1.wait(), Err(ServeError::ShuttingDown)));
        assert!(matches!(t2.wait(), Err(ServeError::ShuttingDown)));
        assert!(engine.await_drained(Duration::from_millis(100)));
        // The key points at nothing: a post-restart retry starts fresh.
        assert!(engine.lock_cache().entries.is_empty());
    }

    #[test]
    fn replicated_entries_serve_only_their_exact_request() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        let request = Request::Steady {
            current: tecopt_units::Amperes(4.0),
        };
        let canned = Response::Steady {
            peak: Celsius(40.0),
            tec_power: Watts(4.0),
        };
        engine.insert_replicated(request_fingerprint(&request), "r1", canned.clone());
        // The matching request replays the replica without evaluating.
        let t = engine.submit(steady(Some("r1"), 4.0)).unwrap();
        assert_eq!(t.wait().unwrap(), canned);
        assert_eq!(engine.evaluator.calls.load(Ordering::SeqCst), 0);
        let m = engine.metrics();
        assert_eq!((m.replicated_hits, m.deduplicated), (1, 1));
    }

    #[test]
    fn mismatched_replica_is_refused_dropped_and_reevaluated() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        // A poisoned replica: filed under "p1" but fingerprinting a
        // *different* request than the retry will carry.
        let other = Request::Steady {
            current: tecopt_units::Amperes(9.0),
        };
        engine.insert_replicated(
            request_fingerprint(&other),
            "p1",
            Response::Steady {
                peak: Celsius(-1.0),
                tec_power: Watts(-1.0),
            },
        );
        drive(&engine, 1, || {
            let t = engine.submit(steady(Some("p1"), 4.0)).unwrap();
            // The wrong answer is never served; the request re-evaluates.
            assert_eq!(
                t.wait().unwrap(),
                Response::Steady {
                    peak: Celsius(40.0),
                    tec_power: Watts(4.0)
                }
            );
        });
        assert_eq!(engine.evaluator.calls.load(Ordering::SeqCst), 1);
        let m = engine.metrics();
        assert_eq!(m.replicated_rejects, 1);
        assert_eq!(m.replicated_hits, 0);
        // The poisoned entry is gone; the fresh local result replaced it.
        assert!(matches!(
            engine.lock_cache().entries.get("p1"),
            Some(CacheEntry::Done(Ok(_)))
        ));
    }

    #[test]
    fn local_knowledge_always_wins_over_a_replica() {
        let engine = Engine::new(FakeEval::answering(), EngineConfig::default());
        drive(&engine, 1, || {
            let t = engine.submit(steady(Some("mine"), 2.0)).unwrap();
            t.wait().unwrap();
            let request = Request::Steady {
                current: tecopt_units::Amperes(2.0),
            };
            engine.insert_replicated(
                request_fingerprint(&request),
                "mine",
                Response::Steady {
                    peak: Celsius(999.0),
                    tec_power: Watts(999.0),
                },
            );
            // The locally-computed result still answers, not the replica.
            let t = engine.submit(steady(Some("mine"), 2.0)).unwrap();
            assert_eq!(
                t.wait().unwrap(),
                Response::Steady {
                    peak: Celsius(20.0),
                    tec_power: Watts(2.0)
                }
            );
        });
        assert_eq!(engine.metrics().replicated_hits, 0);
    }

    #[test]
    fn completed_keyed_ok_results_reach_the_replication_sink() {
        struct RecordingSink(Mutex<Vec<ReplEntry>>);
        impl ReplicationSink for RecordingSink {
            fn offer(&self, entry: ReplEntry) {
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(entry);
            }
        }
        let eval = FakeEval {
            calls: AtomicUsize::new(0),
            panic_on: Some(13.0),
            block_until_cancelled: false,
        };
        let engine = Engine::new(eval, EngineConfig::default());
        let sink = Arc::new(RecordingSink(Mutex::new(Vec::new())));
        engine.set_replication_sink(Arc::clone(&sink) as Arc<dyn ReplicationSink>);
        drive(&engine, 1, || {
            let ok = engine.submit(steady(Some("good"), 2.0)).unwrap();
            assert!(ok.wait().is_ok());
            // An unkeyed request and a failed one must not replicate.
            let unkeyed = engine.submit(steady(None, 3.0)).unwrap();
            assert!(unkeyed.wait().is_ok());
            let bad = engine.submit(steady(Some("boom"), 13.0)).unwrap();
            assert!(bad.wait().is_err());
        });
        let offered = sink.0.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(offered.len(), 1);
        assert_eq!(offered[0].key, "good");
        assert_eq!(
            offered[0].request_fp,
            request_fingerprint(&Request::Steady {
                current: tecopt_units::Amperes(2.0)
            })
        );
    }

    #[test]
    fn cache_eviction_is_bounded_and_oldest_first() {
        let engine = Engine::new(
            FakeEval::answering(),
            EngineConfig {
                cache_capacity: 2,
                ..EngineConfig::default()
            },
        );
        drive(&engine, 1, || {
            for (i, key) in ["a", "b", "c"].iter().enumerate() {
                let t = engine.submit(steady(Some(key), i as f64)).unwrap();
                t.wait().unwrap();
            }
        });
        let cache = engine.lock_cache();
        assert_eq!(cache.entries.len(), 2);
        assert!(!cache.entries.contains_key("a"));
        assert!(cache.entries.contains_key("b") && cache.entries.contains_key("c"));
    }
}
