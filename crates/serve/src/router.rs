//! The fleet tier: a health-checked, failing-over router across engine
//! shards (DESIGN.md §17).
//!
//! A [`Router`] owns an ordered fleet of [`ShardHandle`]s — in-process
//! engines ([`LocalShard`]) and remote servers ([`RemoteShard`]) behind
//! one trait — and places every request by **consistent hashing** of its
//! idempotency key over a ring of virtual nodes. The ring gives each key
//! a stable *replica order*: the primary shard plus the fallbacks, the
//! same order on every router instance, so retries and failovers land
//! where the result (or its replica) already lives.
//!
//! Failure handling is layered:
//!
//! - a **health loop** pings every shard and runs each through the
//!   hysteretic `Healthy → Suspect → Down` machine of
//!   [`crate::health::HealthMonitor`]; routing prefers healthier
//!   replicas but never strikes a shard from the ring — a `Down` shard
//!   is still the last resort, because the alternative is refusing work;
//! - **failover**: a retryable failure (shed, disconnect, shutdown
//!   refusal) moves to the next replica after one capped, jittered
//!   backoff step ([`crate::util::backoff_duration`]); a non-retryable
//!   error returns immediately; exhausting every attempt returns
//!   [`ServeError::FailoverExhausted`];
//! - **hedging** (opt-in): when the primary outlives a p99-derived
//!   delay, the same keyed request is also sent to the first fallback
//!   and the first success wins. The idempotency key makes the hedge
//!   safe — each shard evaluates a key at most once — though the two
//!   shards may each do the work once, which is the deliberate price of
//!   tail-latency cover.
//!
//! Every request is stamped with an idempotency key before the first
//! attempt (auto-generated when the caller supplied none), so any
//! combination of retries, failovers, and hedges is at-most-once **per
//! shard** and deduplicates against the replicated cache fleet-wide.

use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::client::{read_line, Stream};
use crate::engine::{Engine, Evaluator};
use crate::error::ServeError;
use crate::health::{HealthMonitor, HealthPolicy, HealthState};
use crate::replicate::ReplEntry;
use crate::util::{backoff_duration, pause};
use crate::wire::{
    decode_response, encode_ping, encode_repl, encode_request, ReplFrame, RequestFrame, Response,
};
use tecopt::supervise::fingerprint;
use tecopt::CancelToken;

/// One shard of the fleet: something that can evaluate a request, answer
/// a liveness ping, and accept a replicated cache entry. In-process
/// engines and remote servers implement the same trait, so the router
/// never knows the difference.
pub trait ShardHandle: Send + Sync {
    /// Stable identifier; hashed onto the ring, used in logs and to keep
    /// replication from echoing back to its origin.
    fn id(&self) -> &str;

    /// Evaluates `frame` to completion, watching `cancel` while waiting.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; transport-level failures surface as
    /// [`ServeError::Disconnected`] so the router can fail over.
    fn submit(&self, frame: &RequestFrame, cancel: &CancelToken) -> Result<Response, ServeError>;

    /// Checks liveness, bounded by `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] for an unreachable or unresponsive
    /// shard, [`ServeError::ShuttingDown`] for a draining one.
    fn ping(&self, timeout: Duration) -> Result<(), ServeError>;

    /// Offers one replicated cache entry, best-effort.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] when the entry could not be
    /// delivered; the caller drops it (loss is safe by fingerprinting).
    fn replicate(&self, entry: &ReplEntry) -> Result<(), ServeError>;
}

// ---------------------------------------------------------------------
// LocalShard: an in-process engine behind the shard trait.
// ---------------------------------------------------------------------

/// An in-process [`Engine`] exposed as a fleet shard.
pub struct LocalShard<E: Evaluator> {
    id: String,
    engine: Arc<Engine<E>>,
    poll_interval: Duration,
}

impl<E: Evaluator> LocalShard<E> {
    /// Wraps `engine` as the shard named `id`.
    pub fn new(id: impl Into<String>, engine: Arc<Engine<E>>) -> LocalShard<E> {
        LocalShard {
            id: id.into(),
            engine,
            poll_interval: Duration::from_millis(2),
        }
    }

    /// How often a blocked `submit` polls its cancel token.
    #[must_use]
    pub fn with_poll_interval(mut self, poll_interval: Duration) -> LocalShard<E> {
        self.poll_interval = poll_interval.max(Duration::from_micros(100));
        self
    }

    /// The wrapped engine (fleet assembly wires its replication sink).
    pub fn engine(&self) -> &Arc<Engine<E>> {
        &self.engine
    }
}

impl<E: Evaluator> ShardHandle for LocalShard<E> {
    fn id(&self) -> &str {
        &self.id
    }

    fn submit(&self, frame: &RequestFrame, cancel: &CancelToken) -> Result<Response, ServeError> {
        let ticket = self.engine.submit(frame.clone())?;
        let result = ticket.wait_polling(self.poll_interval, || {
            if cancel.is_cancelled() {
                Err(ServeError::Eval(tecopt::OptError::Cancelled {
                    completed: 0,
                }))
            } else {
                Ok(())
            }
        });
        if result.is_err() && cancel.is_cancelled() {
            // The *caller* walked away (hedge lost, or upstream cancel):
            // release our interest so the engine can cancel the run if
            // nobody else is joined on it.
            self.engine.abandon(&ticket, frame.key.as_deref());
        }
        result
    }

    fn ping(&self, _timeout: Duration) -> Result<(), ServeError> {
        if self.engine.draining() {
            Err(ServeError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    fn replicate(&self, entry: &ReplEntry) -> Result<(), ServeError> {
        self.engine
            .insert_replicated(entry.request_fp, &entry.key, entry.response.clone());
        Ok(())
    }
}

// ---------------------------------------------------------------------
// RemoteShard: a server across a socket behind the shard trait.
// ---------------------------------------------------------------------

/// Where a remote shard listens.
#[derive(Debug, Clone)]
pub enum RemoteAddr {
    /// A TCP endpoint, e.g. `"127.0.0.1:7878"`.
    Tcp(String),
    /// A Unix-socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

struct Conn {
    stream: Stream,
    buf: Vec<u8>,
}

/// A remote server behind the shard trait, speaking the line protocol.
///
/// Three independent connections — requests, pings, replication — so a
/// slow evaluation never starves the health check and a replication
/// burst never delays a request. Each connection lives in a
/// `Mutex<Option<Conn>>` slot and is **taken out** of the mutex for the
/// duration of any I/O: the lock only guards the handoff, never a
/// blocking read (the workspace flow lint enforces exactly this).
pub struct RemoteShard {
    id: String,
    addr: RemoteAddr,
    /// One read-timeout slice; cancellation and deadlines are checked
    /// between slices.
    io_slice: Duration,
    /// How long to wait for a response with no explicit deadline.
    response_timeout: Duration,
    conn: Mutex<Option<Conn>>,
    ping_conn: Mutex<Option<Conn>>,
    repl_conn: Mutex<Option<Conn>>,
    nonce: AtomicU64,
}

impl RemoteShard {
    /// A shard named `id` at `addr`.
    pub fn new(id: impl Into<String>, addr: RemoteAddr) -> RemoteShard {
        let id = id.into();
        RemoteShard {
            nonce: AtomicU64::new(fingerprint(&id) | 1),
            id,
            addr,
            io_slice: Duration::from_millis(20),
            response_timeout: Duration::from_secs(30),
            conn: Mutex::new(None),
            ping_conn: Mutex::new(None),
            repl_conn: Mutex::new(None),
        }
    }

    /// Replaces the no-deadline response wait.
    #[must_use]
    pub fn with_response_timeout(mut self, t: Duration) -> RemoteShard {
        self.response_timeout = t.max(Duration::from_millis(1));
        self
    }

    /// Replaces the per-read timeout slice (cancel-check granularity).
    #[must_use]
    pub fn with_io_slice(mut self, t: Duration) -> RemoteShard {
        self.io_slice = t.max(Duration::from_millis(1));
        self
    }

    fn connect(&self) -> Result<Conn, ServeError> {
        let refused = |e: io::Error| ServeError::Disconnected {
            detail: format!("connect to {}: {e}", self.id),
        };
        let stream = match &self.addr {
            RemoteAddr::Tcp(addr) => {
                let s = TcpStream::connect(addr).map_err(refused)?;
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            RemoteAddr::Unix(path) => Stream::Unix(UnixStream::connect(path).map_err(refused)?),
        };
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Takes the slot's connection out of its mutex (connecting afresh if
    /// empty) so all I/O runs with no lock held.
    fn checkout(&self, slot: &Mutex<Option<Conn>>) -> Result<Conn, ServeError> {
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        let existing = guard.take();
        drop(guard);
        match existing {
            Some(conn) => Ok(conn),
            None => self.connect(),
        }
    }

    fn check_in(&self, slot: &Mutex<Option<Conn>>, conn: Conn) {
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(conn);
    }

    /// Reads one line, waking every `io_slice` to watch `cancel` and the
    /// overall `deadline`. On cancel/timeout the connection is dropped
    /// (a late reply would desynchronize the stream).
    fn read_line_by(
        &self,
        conn: &mut Conn,
        deadline: Instant,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<u8>, ServeError> {
        conn.stream
            .set_read_timeout(Some(self.io_slice))
            .map_err(|e| ServeError::Disconnected {
                detail: format!("set read timeout on {}: {e}", self.id),
            })?;
        loop {
            match read_line(&mut conn.stream, &mut conn.buf) {
                Ok(line) => return Ok(line),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        return Err(ServeError::Eval(tecopt::OptError::Cancelled {
                            completed: 0,
                        }));
                    }
                    if Instant::now() >= deadline {
                        return Err(ServeError::Disconnected {
                            detail: format!("timed out waiting for {}", self.id),
                        });
                    }
                }
                Err(e) => {
                    return Err(ServeError::Disconnected {
                        detail: format!("read from {}: {e}", self.id),
                    })
                }
            }
        }
    }
}

impl ShardHandle for RemoteShard {
    fn id(&self) -> &str {
        &self.id
    }

    fn submit(&self, frame: &RequestFrame, cancel: &CancelToken) -> Result<Response, ServeError> {
        let mut line = encode_request(frame);
        line.push('\n');
        // The server may legitimately take the whole request deadline;
        // grant it that plus slack, like the plain client does.
        let wait = frame
            .deadline_ms
            .map(|ms| Duration::from_millis(ms) + Duration::from_secs(5))
            .map_or(self.response_timeout, |d| d.max(self.response_timeout));
        let mut conn = self.checkout(&self.conn)?;
        let sent = conn.stream.write_all_bytes(line.as_bytes());
        if let Err(e) = sent {
            return Err(ServeError::Disconnected {
                detail: format!("write to {}: {e}", self.id),
            });
        }
        let deadline = Instant::now() + wait;
        let reply = self.read_line_by(&mut conn, deadline, Some(cancel))?;
        let text = std::str::from_utf8(&reply)
            .map_err(|_| ServeError::DecodeError("reply is not valid UTF-8".into()))?;
        let decoded = decode_response(text).map_err(|e| ServeError::DecodeError(e.to_string()))?;
        // A parsed reply — even a typed error — leaves the stream aligned.
        self.check_in(&self.conn, conn);
        match decoded.result {
            Ok(response) => Ok(response),
            Err((code, message)) => Err(ServeError::from_wire_code(&code, &message)),
        }
    }

    fn ping(&self, timeout: Duration) -> Result<(), ServeError> {
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let mut conn = self.checkout(&self.ping_conn)?;
        let line = format!("{}\n", encode_ping(nonce));
        if let Err(e) = conn.stream.write_all_bytes(line.as_bytes()) {
            return Err(ServeError::Disconnected {
                detail: format!("ping write to {}: {e}", self.id),
            });
        }
        let deadline = Instant::now() + timeout;
        loop {
            let reply = self.read_line_by(&mut conn, deadline, None)?;
            let text = std::str::from_utf8(&reply).unwrap_or("");
            match crate::wire::decode_pong(text) {
                Some(n) if n == nonce => {
                    self.check_in(&self.ping_conn, conn);
                    return Ok(());
                }
                // A stale pong from an earlier timed-out ping: keep
                // reading until ours (or the deadline) arrives.
                Some(_) => {}
                None => {
                    return Err(ServeError::Disconnected {
                        detail: format!("unexpected ping reply from {}", self.id),
                    })
                }
            }
        }
    }

    fn replicate(&self, entry: &ReplEntry) -> Result<(), ServeError> {
        let frame = ReplFrame {
            request_fp: entry.request_fp,
            key: entry.key.clone(),
            response: entry.response.clone(),
        };
        let mut line = encode_repl(&frame);
        line.push('\n');
        let mut conn = self.checkout(&self.repl_conn)?;
        match conn.stream.write_all_bytes(line.as_bytes()) {
            Ok(()) => {
                self.check_in(&self.repl_conn, conn);
                Ok(())
            }
            Err(e) => Err(ServeError::Disconnected {
                detail: format!("replicate to {}: {e}", self.id),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// The router.
// ---------------------------------------------------------------------

/// When to hedge a slow request onto the next replica.
#[derive(Debug, Clone, Copy)]
pub struct HedgePolicy {
    /// Never hedge sooner than this.
    pub floor: Duration,
    /// Hedge after `p99 × factor` once enough latencies are observed.
    pub p99_factor: f64,
    /// Observations required before the p99 estimate is trusted; below
    /// this the floor alone decides.
    pub min_observations: usize,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            floor: Duration::from_millis(10),
            p99_factor: 1.5,
            min_observations: 32,
        }
    }
}

/// Routing, retry, and health tunables of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the hash ring.
    pub virtual_nodes: usize,
    /// Most routed attempts per request (primary + failovers).
    pub max_attempts: usize,
    /// Backoff before the first failover; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Health-loop cadence and state-machine thresholds.
    pub health: HealthPolicy,
    /// Hedge slow requests onto the next replica; `None` disables.
    pub hedge: Option<HedgePolicy>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            virtual_nodes: 32,
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            health: HealthPolicy::default(),
            hedge: None,
        }
    }
}

/// Counters the router maintains; snapshot with [`Router::metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterMetricsSnapshot {
    /// Requests routed (each counted once, however many attempts).
    pub routed: u64,
    /// Failover attempts beyond each request's first.
    pub failovers: u64,
    /// Hedge requests actually launched.
    pub hedges_launched: u64,
    /// Hedges whose result was the one returned.
    pub hedges_won: u64,
}

#[derive(Default)]
struct RouterMetrics {
    routed: AtomicU64,
    failovers: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
}

/// Sliding window of request latencies for the hedge-delay estimate.
struct LatencyWindow {
    samples: Mutex<Vec<u64>>, // microseconds, ring-buffered
    next: AtomicU64,
    capacity: usize,
}

impl LatencyWindow {
    fn new(capacity: usize) -> LatencyWindow {
        LatencyWindow {
            samples: Mutex::new(Vec::new()),
            next: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    fn record(&self, d: Duration) {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let mut samples = self.samples.lock().unwrap_or_else(PoisonError::into_inner);
        if samples.len() < self.capacity {
            samples.push(micros);
        } else {
            let slot = self.next.fetch_add(1, Ordering::Relaxed) as usize % self.capacity;
            samples[slot] = micros;
        }
    }

    fn count(&self) -> usize {
        self.samples
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Nearest-rank p99 over the window, `None` while empty.
    fn p99(&self) -> Option<Duration> {
        let samples = self.samples.lock().unwrap_or_else(PoisonError::into_inner);
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        drop(samples);
        sorted.sort_unstable();
        let rank = (sorted.len() * 99).div_ceil(100).max(1);
        Some(Duration::from_micros(sorted[rank - 1]))
    }
}

/// Auto-stamped idempotency keys must be unique process-wide (same
/// argument as the client's `NEXT_AUTO_KEY`).
static NEXT_ROUTE_KEY: AtomicU64 = AtomicU64::new(0);

/// A ring position for `s`: the FNV fingerprint pushed through a
/// murmur-style finalizer. FNV-1a alone avalanches poorly on short
/// strings — similar ids and keys cluster in the high bits, which once
/// collapsed a 3-shard ring onto a single primary — so the placement
/// hash mixes before it places.
fn ring_point(s: &str) -> u64 {
    let mut z = fingerprint(s);
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^= z >> 33;
    z
}

/// The fleet router: consistent-hash placement, health-aware replica
/// ordering, failover with capped jittered backoff, optional hedging.
pub struct Router {
    shards: Vec<Arc<dyn ShardHandle>>,
    /// `(point, shard index)` sorted by point.
    ring: Vec<(u64, usize)>,
    health: HealthMonitor,
    config: RouterConfig,
    latency: LatencyWindow,
    metrics: RouterMetrics,
    jitter: Mutex<u64>,
}

impl Router {
    /// A router over `shards` (the fleet may be empty; routing then
    /// fails with [`ServeError::NoShards`]).
    pub fn new(shards: Vec<Arc<dyn ShardHandle>>, config: RouterConfig) -> Router {
        let vnodes = config.virtual_nodes.max(1);
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(shards.len() * vnodes);
        for (index, shard) in shards.iter().enumerate() {
            for v in 0..vnodes {
                ring.push((ring_point(&format!("{}#{v}", shard.id())), index));
            }
        }
        ring.sort_unstable();
        Router {
            health: HealthMonitor::new(shards.len(), config.health),
            shards,
            ring,
            config,
            latency: LatencyWindow::new(256),
            metrics: RouterMetrics::default(),
            jitter: Mutex::new(
                u64::from(std::process::id())
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(0xb5),
            ),
        }
    }

    /// The fleet, in ring index order.
    pub fn shards(&self) -> &[Arc<dyn ShardHandle>] {
        &self.shards
    }

    /// The shared health monitor (request outcomes and the ping loop
    /// both feed it).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> RouterMetricsSnapshot {
        RouterMetricsSnapshot {
            routed: self.metrics.routed.load(Ordering::Relaxed),
            failovers: self.metrics.failovers.load(Ordering::Relaxed),
            hedges_launched: self.metrics.hedges_launched.load(Ordering::Relaxed),
            hedges_won: self.metrics.hedges_won.load(Ordering::Relaxed),
        }
    }

    /// The replica order for `key`: every shard exactly once, ring walk
    /// from the key's point, stably re-ranked `Healthy → Suspect → Down`.
    /// `Down` shards stay routable as the last resort.
    pub fn replica_order(&self, key: &str) -> Vec<usize> {
        let n = self.shards.len();
        if n == 0 {
            return Vec::new();
        }
        let start = ring_point(key);
        let pos = self.ring.partition_point(|&(p, _)| p < start);
        let mut seen = vec![false; n];
        let mut walk = Vec::with_capacity(n);
        for k in 0..self.ring.len() {
            let (_, index) = self.ring[(pos + k) % self.ring.len()];
            if !seen[index] {
                seen[index] = true;
                walk.push(index);
                if walk.len() == n {
                    break;
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        for rank in [
            HealthState::Healthy,
            HealthState::Suspect,
            HealthState::Down,
        ] {
            order.extend(
                walk.iter()
                    .copied()
                    .filter(|&i| self.health.state(i) == rank),
            );
        }
        order
    }

    /// Pings every shard once and feeds the outcomes to the health
    /// machine. Exposed so tests (and the health loop) can drive rounds
    /// deterministically.
    pub fn ping_all_once(&self) {
        for (index, shard) in self.shards.iter().enumerate() {
            match shard.ping(self.config.health.ping_timeout) {
                Ok(()) => self.health.record_success(index),
                Err(_) => self.health.record_failure(index),
            }
        }
    }

    /// The health loop: ping rounds every `health.ping_interval` until
    /// `shutdown` is raised. Run it on a dedicated service worker.
    pub fn run_health_loop(&self, shutdown: &CancelToken) {
        while !shutdown.is_cancelled() {
            self.ping_all_once();
            pause(self.config.health.ping_interval);
        }
    }

    /// Routes `frame` across the fleet: consistent-hash placement,
    /// failover on retryable errors, optional hedging on the first
    /// attempt. An unkeyed frame is stamped with a process-unique key
    /// first — failover is only safe under an idempotency key.
    ///
    /// # Errors
    ///
    /// - [`ServeError::NoShards`] on an empty fleet.
    /// - The first non-retryable error, as-is.
    /// - [`ServeError::FailoverExhausted`] once every attempt failed
    ///   with a retryable error.
    pub fn submit(
        &self,
        mut frame: RequestFrame,
        cancel: &CancelToken,
    ) -> Result<Response, ServeError> {
        if self.shards.is_empty() {
            return Err(ServeError::NoShards);
        }
        if frame.key.is_none() {
            let n = NEXT_ROUTE_KEY.fetch_add(1, Ordering::Relaxed);
            frame.key = Some(format!("r{}-{n}", std::process::id()));
        }
        self.metrics.routed.fetch_add(1, Ordering::Relaxed);
        let key = frame.key.clone().unwrap_or_default();
        let order = self.replica_order(&key);
        let attempts = self.config.max_attempts.max(1);
        let mut last: Option<ServeError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                let step = {
                    let mut jitter = self.jitter.lock().unwrap_or_else(PoisonError::into_inner);
                    backoff_duration(
                        self.config.base_backoff,
                        self.config.max_backoff,
                        attempt,
                        &mut jitter,
                    )
                };
                pause(step);
            }
            if cancel.is_cancelled() {
                return Err(ServeError::Eval(tecopt::OptError::Cancelled {
                    completed: 0,
                }));
            }
            let index = order[attempt % order.len()];
            let started = Instant::now();
            let outcome = if attempt == 0 {
                self.first_attempt(&frame, &order, cancel)
            } else {
                self.shards[index].submit(&frame, cancel)
            };
            match outcome {
                Ok(response) => {
                    self.latency.record(started.elapsed());
                    self.health.record_success(index);
                    return Ok(response);
                }
                Err(e) => {
                    if matches!(e, ServeError::Disconnected { .. }) {
                        self.health.record_failure(index);
                    }
                    // ShuttingDown is terminal for *one* shard but the
                    // fleet can still answer: treat it as fleet-retryable.
                    let fleet_retryable = e.is_retryable() || matches!(e, ServeError::ShuttingDown);
                    if !fleet_retryable {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(ServeError::FailoverExhausted {
            attempts,
            last: Box::new(last.unwrap_or(ServeError::NoShards)),
        })
    }

    /// The first routed attempt: hedged onto the next replica when the
    /// policy says so and a fallback exists, plain otherwise.
    fn first_attempt(
        &self,
        frame: &RequestFrame,
        order: &[usize],
        cancel: &CancelToken,
    ) -> Result<Response, ServeError> {
        let Some(policy) = self.config.hedge else {
            return self.shards[order[0]].submit(frame, cancel);
        };
        if order.len() < 2 {
            return self.shards[order[0]].submit(frame, cancel);
        }
        let delay = if self.latency.count() >= policy.min_observations.max(1) {
            self.latency
                .p99()
                .map_or(policy.floor, |p| p.mul_f64(policy.p99_factor.max(0.0)))
                .max(policy.floor)
        } else {
            policy.floor
        };
        let primary = Arc::clone(&self.shards[order[0]]);
        let fallback = Arc::clone(&self.shards[order[1]]);
        // Child tokens: the winner cancels the loser. The caller's token
        // is watched during the hedge delay and forwarded by raising
        // both children; after launch, cancellation lands at the next
        // poll of whichever branch is still running.
        let primary_token = CancelToken::new();
        let hedge_token = CancelToken::new();
        let primary_done = AtomicBool::new(false);
        let slice = Duration::from_millis(1);
        let (primary_result, hedge_result) = tecopt::parallel::join(
            || {
                let r = primary.submit(frame, &primary_token);
                primary_done.store(true, Ordering::Release);
                hedge_token.cancel();
                r
            },
            || {
                let start = Instant::now();
                while start.elapsed() < delay {
                    if primary_done.load(Ordering::Acquire) || hedge_token.is_cancelled() {
                        return None;
                    }
                    if cancel.is_cancelled() {
                        primary_token.cancel();
                        hedge_token.cancel();
                        return None;
                    }
                    pause(slice);
                }
                if primary_done.load(Ordering::Acquire) || hedge_token.is_cancelled() {
                    return None;
                }
                self.metrics.hedges_launched.fetch_add(1, Ordering::Relaxed);
                let r = fallback.submit(frame, &hedge_token);
                if r.is_ok() {
                    // The hedge won: unblock the (slower) primary.
                    primary_token.cancel();
                }
                Some(r)
            },
        );
        match (primary_result, hedge_result) {
            // Determinism + the shared idempotency key make the two Ok
            // responses identical, so ties go to the primary.
            (Ok(response), _) => Ok(response),
            (Err(_), Some(Ok(response))) => {
                self.metrics.hedges_won.fetch_add(1, Ordering::Relaxed);
                Ok(response)
            }
            // The primary's error is the representative one: the hedge
            // either never launched, was cancelled, or failed after it.
            (Err(e), _) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Request;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use tecopt_units::{Amperes, Celsius, Watts};

    /// A scriptable shard: answers, fails, or answers slowly.
    struct ScriptShard {
        name: String,
        calls: AtomicUsize,
        fail_with: Mutex<Option<ServeError>>,
        delay: Duration,
    }

    impl ScriptShard {
        fn named(name: &str) -> Arc<ScriptShard> {
            Arc::new(ScriptShard {
                name: name.to_string(),
                calls: AtomicUsize::new(0),
                fail_with: Mutex::new(None),
                delay: Duration::ZERO,
            })
        }

        fn failing(name: &str, e: ServeError) -> Arc<ScriptShard> {
            let s = ScriptShard::named(name);
            *s.fail_with.lock().unwrap() = Some(e);
            s
        }

        fn slow(name: &str, delay: Duration) -> Arc<ScriptShard> {
            Arc::new(ScriptShard {
                name: name.to_string(),
                calls: AtomicUsize::new(0),
                fail_with: Mutex::new(None),
                delay,
            })
        }

        fn answer() -> Response {
            Response::Steady {
                peak: Celsius(42.0),
                tec_power: Watts(1.0),
            }
        }
    }

    impl ShardHandle for ScriptShard {
        fn id(&self) -> &str {
            &self.name
        }

        fn submit(
            &self,
            _frame: &RequestFrame,
            cancel: &CancelToken,
        ) -> Result<Response, ServeError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if let Some(e) = self.fail_with.lock().unwrap().clone() {
                return Err(e);
            }
            let start = Instant::now();
            while start.elapsed() < self.delay {
                if cancel.is_cancelled() {
                    return Err(ServeError::Eval(tecopt::OptError::Cancelled {
                        completed: 0,
                    }));
                }
                pause(Duration::from_millis(1));
            }
            Ok(ScriptShard::answer())
        }

        fn ping(&self, _timeout: Duration) -> Result<(), ServeError> {
            match self.fail_with.lock().unwrap().clone() {
                Some(e) => Err(e),
                None => Ok(()),
            }
        }

        fn replicate(&self, _entry: &ReplEntry) -> Result<(), ServeError> {
            Ok(())
        }
    }

    fn fleet(shards: &[Arc<ScriptShard>]) -> Vec<Arc<dyn ShardHandle>> {
        shards
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ShardHandle>)
            .collect()
    }

    fn steady_frame(key: &str) -> RequestFrame {
        RequestFrame {
            key: Some(key.to_string()),
            deadline_ms: None,
            request: Request::Steady {
                current: Amperes(1.0),
            },
        }
    }

    fn quick_config() -> RouterConfig {
        RouterConfig {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn an_empty_fleet_is_a_typed_configuration_error() {
        let router = Router::new(Vec::new(), RouterConfig::default());
        let e = router
            .submit(steady_frame("k"), &CancelToken::new())
            .unwrap_err();
        assert_eq!(e, ServeError::NoShards);
    }

    #[test]
    fn placement_is_deterministic_and_spreads_keys() {
        let shards = [
            ScriptShard::named("a"),
            ScriptShard::named("b"),
            ScriptShard::named("c"),
        ];
        let router = Router::new(fleet(&shards), RouterConfig::default());
        let mut primaries = HashSet::new();
        for i in 0..64 {
            let key = format!("key-{i}");
            let order = router.replica_order(&key);
            assert_eq!(order.len(), 3, "every shard appears exactly once");
            assert_eq!(order, router.replica_order(&key), "stable per key");
            primaries.insert(order[0]);
        }
        assert_eq!(
            primaries.len(),
            3,
            "64 keys must reach every shard as primary"
        );
    }

    #[test]
    fn failover_moves_to_the_next_replica_on_retryable_errors() {
        let shards = [
            ScriptShard::failing(
                "a",
                ServeError::Disconnected {
                    detail: "scripted".into(),
                },
            ),
            ScriptShard::failing(
                "b",
                ServeError::Disconnected {
                    detail: "scripted".into(),
                },
            ),
            ScriptShard::named("c"),
        ];
        let router = Router::new(fleet(&shards), quick_config());
        let r = router.submit(steady_frame("k"), &CancelToken::new());
        assert_eq!(r.unwrap(), ScriptShard::answer());
        let m = router.metrics();
        assert_eq!(m.routed, 1);
        assert!(m.failovers >= 1, "at least one failover happened");
        // The healthy shard answered exactly once; total calls equal
        // 1 + failovers.
        assert_eq!(shards[2].calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn a_non_retryable_error_returns_immediately_without_failover() {
        let shards = [
            ScriptShard::failing("a", ServeError::DecodeError("scripted".into())),
            ScriptShard::named("b"),
        ];
        let router = Router::new(fleet(&shards), quick_config());
        // Pick a key whose primary is the failing shard.
        let key = (0..128)
            .map(|i| format!("k{i}"))
            .find(|k| router.replica_order(k)[0] == 0)
            .expect("some key lands on shard a");
        let e = router.submit(steady_frame(&key), &CancelToken::new());
        assert_eq!(e.unwrap_err(), ServeError::DecodeError("scripted".into()));
        assert_eq!(shards[1].calls.load(Ordering::SeqCst), 0, "no failover");
    }

    #[test]
    fn exhausting_every_replica_is_a_typed_failover_error() {
        let shed = ServeError::Overloaded {
            depth: 1,
            capacity: 1,
        };
        let shards = [
            ScriptShard::failing("a", shed.clone()),
            ScriptShard::failing("b", shed.clone()),
        ];
        let router = Router::new(fleet(&shards), quick_config());
        match router.submit(steady_frame("k"), &CancelToken::new()) {
            Err(ServeError::FailoverExhausted { attempts, last }) => {
                assert_eq!(attempts, 4);
                assert_eq!(*last, shed);
            }
            other => panic!("expected FailoverExhausted, got {other:?}"),
        }
    }

    #[test]
    fn a_draining_shard_is_skipped_but_the_fleet_still_answers() {
        let shards = [
            ScriptShard::failing("a", ServeError::ShuttingDown),
            ScriptShard::named("b"),
        ];
        let router = Router::new(fleet(&shards), quick_config());
        let key = (0..128)
            .map(|i| format!("k{i}"))
            .find(|k| router.replica_order(k)[0] == 0)
            .expect("some key lands on shard a");
        assert_eq!(
            router
                .submit(steady_frame(&key), &CancelToken::new())
                .unwrap(),
            ScriptShard::answer()
        );
    }

    #[test]
    fn health_outcomes_rerank_the_replica_order() {
        let shards = [
            ScriptShard::named("a"),
            ScriptShard::named("b"),
            ScriptShard::named("c"),
        ];
        let router = Router::new(fleet(&shards), RouterConfig::default());
        let key = (0..128)
            .map(|i| format!("k{i}"))
            .find(|k| router.replica_order(k)[0] == 0)
            .expect("some key lands on shard a");
        // Ping rounds against a now-refusing shard a push it to Down...
        *shards[0].fail_with.lock().unwrap() = Some(ServeError::Disconnected {
            detail: "scripted".into(),
        });
        for _ in 0..3 {
            router.ping_all_once();
        }
        assert_eq!(router.health().state(0), HealthState::Down);
        // ...and the replica order demotes it to last resort.
        let order = router.replica_order(&key);
        assert_eq!(order[2], 0);
        assert_eq!(order.len(), 3, "down shards stay routable");
        // Recovery is hysteretic: one good round is not enough.
        *shards[0].fail_with.lock().unwrap() = None;
        router.ping_all_once();
        assert_eq!(router.health().state(0), HealthState::Down);
        router.ping_all_once();
        assert_eq!(router.health().state(0), HealthState::Healthy);
        assert_eq!(router.replica_order(&key)[0], 0);
    }

    #[test]
    fn a_hedge_covers_a_slow_primary_and_the_fastest_wins() {
        let shards = [
            ScriptShard::slow("a", Duration::from_millis(250)),
            ScriptShard::slow("b", Duration::from_millis(250)),
        ];
        let config = RouterConfig {
            hedge: Some(HedgePolicy {
                floor: Duration::from_millis(5),
                p99_factor: 1.5,
                min_observations: usize::MAX, // force the floor path
            }),
            ..quick_config()
        };
        let router = Router::new(fleet(&shards), config);
        let key = (0..128)
            .map(|i| format!("k{i}"))
            .find(|k| router.replica_order(k)[0] == 0)
            .expect("some key lands on shard a");
        // Both replicas are equally slow: the point here is only that
        // the delay expired, the hedge launched, and one answer won.
        let order = router.replica_order(&key);
        let t0 = Instant::now();
        let r = router.submit(steady_frame(&key), &CancelToken::new());
        assert_eq!(r.unwrap(), ScriptShard::answer());
        assert!(t0.elapsed() < Duration::from_secs(5));
        let m = router.metrics();
        assert_eq!(m.hedges_launched, 1, "the slow primary triggered a hedge");
        assert_eq!(
            shards[order[0]].calls.load(Ordering::SeqCst)
                + shards[order[1]].calls.load(Ordering::SeqCst),
            2,
            "both replicas were asked"
        );
    }

    #[test]
    fn a_won_hedge_returns_while_the_primary_is_still_stuck() {
        // Primary blocks ~10 s unless cancelled; hedge answers at once.
        let slow = ScriptShard::slow("slow", Duration::from_secs(10));
        let fast = ScriptShard::named("fast");
        let config = RouterConfig {
            hedge: Some(HedgePolicy {
                floor: Duration::from_millis(2),
                p99_factor: 1.0,
                min_observations: usize::MAX,
            }),
            ..quick_config()
        };
        // Find a key whose primary is the slow shard for *this* fleet.
        let router = Router::new(
            vec![
                Arc::clone(&slow) as Arc<dyn ShardHandle>,
                Arc::clone(&fast) as Arc<dyn ShardHandle>,
            ],
            config,
        );
        let key = (0..256)
            .map(|i| format!("k{i}"))
            .find(|k| {
                let order = router.replica_order(k);
                router.shards()[order[0]].id() == "slow"
            })
            .expect("some key lands on the slow shard");
        let t0 = Instant::now();
        let r = router.submit(steady_frame(&key), &CancelToken::new());
        assert_eq!(r.unwrap(), ScriptShard::answer());
        // The hedge's win cancelled the stuck primary: the call returns
        // in hedge time, not primary time.
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "returned in {:?}, primary would take 10 s",
            t0.elapsed()
        );
        let m = router.metrics();
        assert_eq!((m.hedges_launched, m.hedges_won), (1, 1));
    }

    #[test]
    fn unkeyed_frames_are_stamped_before_the_first_attempt() {
        // Failover without a key could double-evaluate; the router must
        // stamp one. Observable via process-unique auto keys: two
        // submits of the same unkeyed request both succeed (no dedupe
        // collision) and the scripted shard saw distinct keys.
        struct KeyRecorder {
            keys: Mutex<Vec<Option<String>>>,
        }
        impl ShardHandle for KeyRecorder {
            fn id(&self) -> &str {
                "rec"
            }
            fn submit(
                &self,
                frame: &RequestFrame,
                _cancel: &CancelToken,
            ) -> Result<Response, ServeError> {
                self.keys.lock().unwrap().push(frame.key.clone());
                Ok(ScriptShard::answer())
            }
            fn ping(&self, _t: Duration) -> Result<(), ServeError> {
                Ok(())
            }
            fn replicate(&self, _e: &ReplEntry) -> Result<(), ServeError> {
                Ok(())
            }
        }
        let rec = Arc::new(KeyRecorder {
            keys: Mutex::new(Vec::new()),
        });
        let router = Router::new(
            vec![Arc::clone(&rec) as Arc<dyn ShardHandle>],
            RouterConfig::default(),
        );
        let unkeyed = RequestFrame {
            key: None,
            deadline_ms: None,
            request: Request::Steady {
                current: Amperes(1.0),
            },
        };
        router.submit(unkeyed.clone(), &CancelToken::new()).unwrap();
        router.submit(unkeyed, &CancelToken::new()).unwrap();
        let keys = rec.keys.lock().unwrap();
        assert_eq!(keys.len(), 2);
        assert!(keys[0].is_some() && keys[1].is_some());
        assert_ne!(keys[0], keys[1], "auto keys are unique per request");
    }
}
