//! A bounded MPMC admission queue built on `Mutex` + `Condvar`.
//!
//! This is the load-shedding boundary of the service: capacity is fixed at
//! construction, a full queue rejects *immediately* with
//! [`PushError::Full`] (no blocking producers, no unbounded growth), and
//! closing the queue lets consumers drain the backlog before observing
//! end-of-stream — which is exactly the graceful-drain order the server
//! needs (stop admission first, finish what was admitted).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue held `capacity` items; the item was shed.
    Full {
        /// Items queued at the time of rejection.
        depth: usize,
        /// The fixed capacity.
        capacity: usize,
    },
    /// The queue was closed (the server is draining).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closeable FIFO queue for admitted requests.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy; diagnostic only).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// - [`PushError::Full`] when the queue is at capacity — the typed
    ///   load-shedding signal.
    /// - [`PushError::Closed`] once [`BoundedQueue::close`] has run.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        let depth = inner.items.len();
        if depth >= self.capacity {
            return Err(PushError::Full {
                depth,
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only once the queue is closed *and* fully
    /// drained, so no admitted item is ever dropped by a shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending pushes fail with [`PushError::Closed`],
    /// blocked consumers wake, and `pop` drains the backlog then returns
    /// `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Closes the queue and returns everything still queued, leaving it
    /// empty. Used by a hard shutdown to fail pending work with a typed
    /// error instead of silently dropping it.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let drained = inner.items.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        drained
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rejects_when_full_with_typed_depth() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(
            q.try_push(3),
            Err(PushError::Full {
                depth: 2,
                capacity: 2
            })
        );
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_backlog_then_ends_stream() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // idempotent end-of-stream
    }

    #[test]
    fn close_and_drain_returns_pending_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.close_and_drain(), vec![1, 2]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = BoundedQueue::new(8);
        let popped = AtomicUsize::new(0);
        tecopt::parallel::service_workers(3, |w| {
            if w == 0 {
                // Producer: feed two items, then close.
                q.try_push(7).unwrap();
                q.try_push(8).unwrap();
                q.close();
            } else {
                while q.pop().is_some() {
                    popped.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(popped.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full { .. })));
    }
}
