//! A retrying client for the line-framed protocol.
//!
//! Retries are safe by construction: every request is stamped with an
//! idempotency key (caller-provided or generated), so a retry after an
//! `overloaded` shed, a dropped connection, or a contained worker panic
//! either joins the still-running evaluation or replays the cached
//! result — the server never doubles the work. Backoff is exponential
//! with deterministic-per-client jitter so a thundering herd of retries
//! decorrelates.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::util::{backoff_duration, pause};
use crate::wire::{
    decode_response, encode_request, Request, RequestFrame, Response, MAX_FRAME_LEN,
};

/// Why a client call failed for good.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// A socket-level failure (connect, read, or write).
    Io(String),
    /// The server's reply did not parse.
    Decode(String),
    /// The server answered with a typed, non-retryable error.
    Server {
        /// The stable wire code (`ServeError::code`).
        code: String,
        /// The human-readable message.
        message: String,
    },
    /// Every attempt failed with a retryable error; the last one rides
    /// along.
    RetriesExhausted {
        /// Attempts made.
        attempts: usize,
        /// The final failure.
        last: Box<ClientError>,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "i/o failure: {msg}"),
            ClientError::Decode(msg) => write!(f, "cannot decode server reply: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry and timeout policy of a [`Client`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Most attempts per request (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// How long to wait for a response before declaring the connection
    /// dead. A request's own deadline extends this wait when longer.
    pub response_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            response_timeout: Duration::from_secs(30),
        }
    }
}

enum Endpoint {
    Tcp(String),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A connected byte stream to a server, TCP or Unix. `pub(crate)` so the
/// fleet's `RemoteShard` shares the client's transport plumbing.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }

    pub(crate) fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.write_all(buf).and_then(|()| s.flush()),
            #[cfg(unix)]
            Stream::Unix(s) => s.write_all(buf).and_then(|()| s.flush()),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }
}

/// A synchronous client with reconnection, idempotent retries, and
/// jittered exponential backoff.
pub struct Client {
    endpoint: Endpoint,
    policy: RetryPolicy,
    conn: Option<Stream>,
    buf: Vec<u8>,
    jitter: u64,
}

/// Auto-generated idempotency keys must be unique across every client in
/// the process, not merely within one instance: two clients both naming
/// their first request `c<pid>-0` would silently deduplicate onto one
/// evaluation server-side.
static NEXT_AUTO_KEY: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Client {
    /// A client for a TCP endpoint, e.g. `"127.0.0.1:7878"`.
    pub fn tcp(addr: impl Into<String>) -> Client {
        Client::new(Endpoint::Tcp(addr.into()))
    }

    /// A client for a Unix-socket endpoint.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Client {
        Client::new(Endpoint::Unix(path.into()))
    }

    fn new(endpoint: Endpoint) -> Client {
        let pid = u64::from(std::process::id());
        Client {
            endpoint,
            policy: RetryPolicy::default(),
            conn: None,
            buf: Vec::new(),
            // Seed per process so concurrent clients' backoff schedules
            // decorrelate; determinism per client keeps tests stable.
            jitter: pid.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Client {
        self.policy = policy;
        self
    }

    /// Sends `request` and waits for its result, retrying retryable
    /// failures under one idempotency key. `deadline_ms` rides to the
    /// server as the request's evaluation budget.
    ///
    /// # Errors
    ///
    /// - [`ClientError::Server`] for a typed, non-retryable server error.
    /// - [`ClientError::RetriesExhausted`] once every attempt failed.
    /// - [`ClientError::Decode`] for an unparseable reply.
    pub fn request(
        &mut self,
        request: Request,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let n = NEXT_AUTO_KEY.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let key = format!("c{}-{}", std::process::id(), n);
        self.request_keyed(&key, request, deadline_ms)
    }

    /// Like [`Client::request`] but under a caller-chosen idempotency key
    /// — e.g. a stable job name that survives process restarts, so a
    /// rerun resumes the server-side checkpoint instead of starting over.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn request_keyed(
        &mut self,
        key: &str,
        request: Request,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let frame = RequestFrame {
            key: Some(key.to_string()),
            deadline_ms,
            request,
        };
        let mut line = encode_request(&frame);
        line.push('\n');
        let attempts = self.policy.max_attempts.max(1);
        let mut last = ClientError::Io("no attempt made".into());
        for attempt in 0..attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            match self.attempt(&line, deadline_ms) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    let retryable = match &e {
                        ClientError::Io(_) => true,
                        ClientError::Server { code, .. } => {
                            matches!(
                                code.as_str(),
                                "overloaded" | "disconnected" | "cancelled" | "panic"
                            )
                        }
                        _ => return Err(e),
                    };
                    if !retryable {
                        return Err(e);
                    }
                    last = e;
                }
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        })
    }

    /// One wire round trip. Any I/O failure poisons the cached
    /// connection so the next attempt reconnects.
    fn attempt(&mut self, line: &str, deadline_ms: Option<u64>) -> Result<Response, ClientError> {
        let outcome = self.round_trip(line, deadline_ms);
        match outcome {
            Err(ClientError::Io(_)) | Err(ClientError::Decode(_)) => {
                self.conn = None;
                self.buf.clear();
            }
            _ => {}
        }
        outcome
    }

    fn round_trip(
        &mut self,
        line: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.ensure_connected()?;
        // The server may legitimately take the whole request deadline
        // before answering; give it that long plus slack.
        let wait = deadline_ms
            .map(|ms| Duration::from_millis(ms) + Duration::from_secs(5))
            .map_or(self.policy.response_timeout, |d| {
                d.max(self.policy.response_timeout)
            });
        let io_err = |e: io::Error| ClientError::Io(e.to_string());
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => return Err(ClientError::Io("not connected".into())),
        };
        conn.set_read_timeout(Some(wait)).map_err(io_err)?;
        conn.write_all_bytes(line.as_bytes()).map_err(io_err)?;
        let reply = read_line(conn, &mut self.buf).map_err(io_err)?;
        let text = std::str::from_utf8(&reply)
            .map_err(|_| ClientError::Decode("reply is not valid UTF-8".into()))?;
        let frame = decode_response(text).map_err(|e| ClientError::Decode(e.to_string()))?;
        match frame.result {
            Ok(response) => Ok(response),
            Err((code, message)) => Err(ClientError::Server { code, message }),
        }
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                Stream::Unix(UnixStream::connect(path).map_err(|e| ClientError::Io(e.to_string()))?)
            }
        };
        self.buf.clear();
        self.conn = Some(stream);
        Ok(())
    }

    /// Capped exponential backoff with ±50% deterministic jitter
    /// (`util::backoff_duration`, shared with the router's failover).
    fn backoff(&mut self, attempt: usize) {
        pause(backoff_duration(
            self.policy.base_backoff,
            self.policy.max_backoff,
            attempt,
            &mut self.jitter,
        ));
    }
}

/// Reads one `\n`-terminated line (terminator stripped), buffering any
/// pipelined overflow bytes in `buf` for the next call. Shared with the
/// fleet's `RemoteShard`.
pub(crate) fn read_line(conn: &mut Stream, buf: &mut Vec<u8>) -> io::Result<Vec<u8>> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = buf.drain(..=pos).collect();
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(line);
        }
        if buf.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "reply exceeds the frame length cap",
            ));
        }
        match conn.read_bytes(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_by_the_cap() {
        let mut c = Client::tcp("127.0.0.1:1").with_policy(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            response_timeout: Duration::from_millis(100),
        });
        // Exercise the arithmetic at large attempt numbers: must neither
        // overflow nor stall (cap = 4 ms → pause ≤ 4 ms per call).
        for attempt in [1, 2, 3, 16, 63, 64, 1000] {
            c.backoff(attempt);
        }
    }

    #[test]
    fn connecting_to_a_dead_endpoint_is_a_typed_io_error() {
        // Port 1 on localhost: refused immediately, no server needed.
        let mut c = Client::tcp("127.0.0.1:1").with_policy(RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            response_timeout: Duration::from_millis(100),
        });
        match c.request(
            Request::Steady {
                current: tecopt_units::Amperes(1.0),
            },
            None,
        ) {
            Err(ClientError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 2);
                assert!(matches!(*last, ClientError::Io(_)));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn a_refusing_listener_exhausts_retries_with_bounded_jittered_backoff() {
        // Regression for the backoff overflow audit: bind a listener to
        // grab a real free port, drop it so every connect is refused, and
        // check the client walks all attempts with *bounded* pauses — a
        // wrapped backoff would either stall for minutes or spin with no
        // pause at all.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe port");
        let addr = listener.local_addr().expect("probe addr").to_string();
        drop(listener);
        let mut c = Client::tcp(addr).with_policy(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(16),
            response_timeout: Duration::from_millis(200),
        });
        let t0 = std::time::Instant::now();
        match c.request(
            Request::Steady {
                current: tecopt_units::Amperes(1.0),
            },
            None,
        ) {
            Err(ClientError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 4);
                assert!(matches!(*last, ClientError::Io(_)));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // 3 retry pauses capped at 16 ms each plus connect overhead: far
        // under this bound unless backoff arithmetic went wrong.
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn generated_keys_are_unique_across_clients() {
        // Two clients in the same process must never collide on their
        // auto keys, or the server would deduplicate unrelated requests.
        let k0 = NEXT_AUTO_KEY.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut a = Client::tcp("127.0.0.1:1");
        let mut b = Client::tcp("127.0.0.1:1");
        let req = || Request::Steady {
            current: tecopt_units::Amperes(1.0),
        };
        let _ = a.request(req(), None);
        let _ = b.request(req(), None);
        let k3 = NEXT_AUTO_KEY.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert!(
            k3 >= k0 + 3,
            "counter must advance per request: {k0} -> {k3}"
        );
    }
}
