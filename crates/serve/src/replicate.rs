//! Best-effort cross-shard replication of the deterministic result cache.
//!
//! When a shard completes a keyed evaluation with `Ok`, the result is
//! offered to every *other* shard as a `#repl` frame (see `wire`): a
//! one-way, fire-and-forget line on the existing protocol. Replication is
//! deliberately asynchronous and lossy —
//!
//! - each peer has a **bounded** outbound queue that sheds **oldest
//!   first** when full (the newest results are the ones a failover is
//!   about to ask for);
//! - a send failure drops the entry — the peer is probably down, and a
//!   recovered shard simply re-evaluates on a cache miss;
//! - the receiver files an entry only under its request fingerprint and
//!   serves it only to a request whose own canonical encoding hashes to
//!   the same value, so a lost, reordered, or poisoned replica can never
//!   produce a *wrong* answer, only a cache miss.
//!
//! Consistency argument (DESIGN.md §17): every evaluation the service
//! caches is deterministic, so two shards that both evaluate the same
//! request produce bit-identical responses — replicas cannot diverge, and
//! "best effort" costs duplicate work at worst, never correctness.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::router::ShardHandle;
use crate::util::pause;
use crate::wire::Response;
use tecopt::CancelToken;

/// One completed result on its way to peer caches.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplEntry {
    /// [`crate::wire::request_fingerprint`] of the evaluated request.
    pub request_fp: u64,
    /// The idempotency key the result is filed under.
    pub key: String,
    /// The successful response (only `Ok` outcomes replicate).
    pub response: Response,
}

/// Where an engine publishes completed keyed results. Implementations
/// must never block for long: `offer` runs on the evaluation worker that
/// just finished the request.
pub trait ReplicationSink: Send + Sync {
    /// Offers one completed entry; best-effort, may drop it.
    fn offer(&self, entry: ReplEntry);
}

/// A bounded replication queue that sheds **oldest-first**: under
/// pressure the stale results go, and the freshest — the ones a failover
/// will ask for next — survive.
pub struct ReplQueue {
    inner: Mutex<QueueState>,
    capacity: usize,
}

struct QueueState {
    entries: VecDeque<ReplEntry>,
    shed: u64,
}

impl ReplQueue {
    /// A queue holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> ReplQueue {
        ReplQueue {
            inner: Mutex::new(QueueState {
                entries: VecDeque::new(),
                shed: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `entry`, shedding the oldest entry first when full.
    pub fn push(&self, entry: ReplEntry) {
        let mut q = self.lock();
        while q.entries.len() >= self.capacity {
            q.entries.pop_front();
            q.shed += 1;
        }
        q.entries.push_back(entry);
    }

    /// Takes every queued entry, oldest first.
    pub fn drain(&self) -> Vec<ReplEntry> {
        self.lock().entries.drain(..).collect()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries shed (oldest-first) since construction.
    pub fn shed(&self) -> u64 {
        self.lock().shed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct PeerSlot {
    shard: Arc<dyn ShardHandle>,
    queue: ReplQueue,
}

/// Counters the replicator maintains, snapshot with
/// [`Replicator::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplStats {
    /// Entries delivered to a peer.
    pub sent: u64,
    /// Entries dropped because the peer refused or was unreachable.
    pub dropped: u64,
    /// Entries shed from full queues, oldest first.
    pub shed: u64,
}

/// Fans completed results out to every peer shard's bounded queue and
/// pumps the queues over the wire. Drive [`Replicator::run`] on one
/// service worker, or call [`Replicator::pump_once`] from a test.
pub struct Replicator {
    peers: Vec<PeerSlot>,
    sent: std::sync::atomic::AtomicU64,
    dropped: std::sync::atomic::AtomicU64,
}

impl Replicator {
    /// A replicator over `peers`, one bounded queue of `queue_capacity`
    /// entries per peer.
    pub fn new(peers: Vec<Arc<dyn ShardHandle>>, queue_capacity: usize) -> Replicator {
        Replicator {
            peers: peers
                .into_iter()
                .map(|shard| PeerSlot {
                    shard,
                    queue: ReplQueue::new(queue_capacity),
                })
                .collect(),
            sent: std::sync::atomic::AtomicU64::new(0),
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A sink for the shard named `origin`: entries fan out to every
    /// *other* peer's queue (a shard never replicates to itself).
    pub fn sink_for(self: &Arc<Self>, origin: &str) -> Arc<dyn ReplicationSink> {
        Arc::new(OriginSink {
            replicator: Arc::clone(self),
            origin: origin.to_string(),
        })
    }

    fn fan_out(&self, origin: &str, entry: &ReplEntry) {
        for peer in &self.peers {
            if peer.shard.id() != origin {
                peer.queue.push(entry.clone());
            }
        }
    }

    /// Drains every peer queue once, sending each entry best-effort. A
    /// failed send drops the entry: the fingerprint check on the receiver
    /// makes loss safe, never wrong.
    pub fn pump_once(&self) {
        use std::sync::atomic::Ordering;
        for peer in &self.peers {
            for entry in peer.queue.drain() {
                match peer.shard.replicate(&entry) {
                    Ok(()) => self.sent.fetch_add(1, Ordering::Relaxed),
                    Err(_) => self.dropped.fetch_add(1, Ordering::Relaxed),
                };
            }
        }
    }

    /// Pumps until `shutdown` is raised, then flushes what remains.
    pub fn run(&self, interval: Duration, shutdown: &CancelToken) {
        while !shutdown.is_cancelled() {
            self.pump_once();
            pause(interval);
        }
        self.pump_once();
    }

    /// Entries still queued across every peer.
    pub fn queued(&self) -> usize {
        self.peers.iter().map(|p| p.queue.len()).sum()
    }

    /// Delivery counters plus the total shed across peer queues.
    pub fn stats(&self) -> ReplStats {
        use std::sync::atomic::Ordering;
        ReplStats {
            sent: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            shed: self.peers.iter().map(|p| p.queue.shed()).sum(),
        }
    }
}

struct OriginSink {
    replicator: Arc<Replicator>,
    origin: String,
}

impl ReplicationSink for OriginSink {
    fn offer(&self, entry: ReplEntry) {
        self.replicator.fan_out(&self.origin, &entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use crate::wire::RequestFrame;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex as StdMutex;
    use tecopt_units::{Celsius, Watts};

    fn entry(n: u64) -> ReplEntry {
        ReplEntry {
            request_fp: n,
            key: format!("k{n}"),
            response: Response::Steady {
                peak: Celsius(n as f64),
                tec_power: Watts(1.0),
            },
        }
    }

    #[test]
    fn full_queue_sheds_oldest_first() {
        let q = ReplQueue::new(3);
        for n in 0..5 {
            q.push(entry(n));
        }
        assert_eq!(q.shed(), 2);
        let kept: Vec<u64> = q.drain().iter().map(|e| e.request_fp).collect();
        // The two *oldest* entries went; the freshest survived in order.
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(q.is_empty());
    }

    /// A scriptable peer: records delivered entries, optionally refuses.
    struct FakePeer {
        name: &'static str,
        refuse: AtomicBool,
        delivered: StdMutex<Vec<ReplEntry>>,
    }

    impl FakePeer {
        fn named(name: &'static str) -> Arc<FakePeer> {
            Arc::new(FakePeer {
                name,
                refuse: AtomicBool::new(false),
                delivered: StdMutex::new(Vec::new()),
            })
        }
    }

    impl ShardHandle for FakePeer {
        fn id(&self) -> &str {
            self.name
        }

        fn submit(
            &self,
            _frame: &RequestFrame,
            _cancel: &CancelToken,
        ) -> Result<Response, ServeError> {
            Err(ServeError::NoShards)
        }

        fn ping(&self, _timeout: Duration) -> Result<(), ServeError> {
            Ok(())
        }

        fn replicate(&self, entry: &ReplEntry) -> Result<(), ServeError> {
            if self.refuse.load(Ordering::SeqCst) {
                return Err(ServeError::Disconnected {
                    detail: "scripted refusal".into(),
                });
            }
            self.delivered
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(entry.clone());
            Ok(())
        }
    }

    #[test]
    fn fan_out_skips_the_origin_and_pump_delivers() {
        let a = FakePeer::named("a");
        let b = FakePeer::named("b");
        let c = FakePeer::named("c");
        let peers: Vec<Arc<dyn ShardHandle>> = vec![
            Arc::clone(&a) as _,
            Arc::clone(&b) as _,
            Arc::clone(&c) as _,
        ];
        let repl = Arc::new(Replicator::new(peers, 8));
        let sink = repl.sink_for("a");
        sink.offer(entry(7));
        assert_eq!(repl.queued(), 2); // b and c, never a
        repl.pump_once();
        assert!(a.delivered.lock().unwrap().is_empty());
        assert_eq!(b.delivered.lock().unwrap().len(), 1);
        assert_eq!(c.delivered.lock().unwrap().len(), 1);
        assert_eq!(repl.stats().sent, 2);
    }

    #[test]
    fn a_refusing_peer_drops_entries_without_blocking_the_others() {
        let a = FakePeer::named("a");
        let b = FakePeer::named("b");
        b.refuse.store(true, Ordering::SeqCst);
        let peers: Vec<Arc<dyn ShardHandle>> = vec![Arc::clone(&a) as _, Arc::clone(&b) as _];
        let repl = Arc::new(Replicator::new(peers, 8));
        repl.sink_for("c").offer(entry(1));
        repl.pump_once();
        let stats = repl.stats();
        assert_eq!((stats.sent, stats.dropped), (1, 1));
        assert_eq!(repl.queued(), 0, "a dropped entry never lingers");
        assert_eq!(a.delivered.lock().unwrap().len(), 1);
    }
}
