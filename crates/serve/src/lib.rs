//! `tecopt-serve` — a fault-tolerant evaluation service for the tecopt
//! thin-film TEC cooling optimizer.
//!
//! The paper's workloads (steady solves of Eq. 4, λ_m runaway sweeps,
//! designer candidate sweeps) become request/response jobs behind a
//! dependency-free line-framed protocol over TCP or a Unix socket, or
//! behind the in-process [`Engine`] API directly. The service layer adds
//! what a long-running deployment needs and the library deliberately
//! does not: bounded admission with typed [`ServeError::Overloaded`]
//! load shedding, per-request deadlines mapped onto
//! [`tecopt::RunContext`], per-request panic containment, idempotent
//! retries deduplicated against a result cache, disconnect-triggered
//! cancellation, and a graceful drain that checkpoints long sweeps.
//! See DESIGN.md §13 for the architecture.
//!
//! On top of single-server operation sits the **fleet tier** (DESIGN.md
//! §17): a [`Router`] consistent-hashes idempotency keys across engine
//! shards (in-process [`LocalShard`] or socket-backed [`RemoteShard`]
//! behind the one [`ShardHandle`] trait), health-checks them through a
//! hysteretic `Healthy → Suspect → Down` machine, fails over on
//! refusals and disconnects with capped jittered backoff, optionally
//! hedges tail-latency stragglers, and replicates the deterministic
//! result cache between shards ([`Replicator`]) so a failover often
//! lands on a shard that already knows the answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

pub mod client;
pub mod engine;
pub mod error;
pub mod health;
pub mod queue;
pub mod replicate;
pub mod router;
pub mod server;
mod util;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy};
pub use engine::{Engine, EngineConfig, Evaluator, MetricsSnapshot, TecEvaluator, Ticket};
pub use error::ServeError;
pub use health::{HealthMonitor, HealthPolicy, HealthState};
pub use queue::{BoundedQueue, PushError};
pub use replicate::{ReplEntry, ReplicationSink, Replicator};
pub use router::{
    HedgePolicy, LocalShard, RemoteAddr, RemoteShard, Router, RouterConfig, RouterMetricsSnapshot,
    ShardHandle,
};
pub use server::{Listener, Server, ServerConfig, ServerReport};
pub use wire::{Request, RequestFrame, Response, ResponseFrame};
