//! Small shared helpers for the service layer.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Blocks the calling thread for about `d`.
///
/// Built on `Condvar::wait_timeout` rather than `std::thread::sleep`: the
/// workspace linter confines the raw thread API to the sanctioned pool in
/// `tecopt::parallel` (DESIGN.md §11), and a condvar wait is exactly as
/// cheap for the short polling pauses the server and client need.
pub(crate) fn pause(d: Duration) {
    if d.is_zero() {
        return;
    }
    let gate = Mutex::new(());
    let cv = Condvar::new();
    let guard = gate.lock().unwrap_or_else(PoisonError::into_inner);
    // No notifier exists: this can only wake by timeout (or a spurious
    // wakeup, which shortens the pause harmlessly).
    let _ = cv.wait_timeout(guard, d);
}

/// A tiny splitmix-style step for backoff jitter. Not statistical-quality
/// randomness and not meant to be: it only needs to decorrelate the retry
/// schedules of concurrent clients.
pub(crate) fn jitter_step(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51afd7ed558ccd);
    z ^= z >> 33;
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn pause_returns_and_zero_is_instant() {
        let t0 = Instant::now();
        pause(Duration::ZERO);
        pause(Duration::from_millis(5));
        // Generous bound: only assert it neither hangs nor returns in 0 ns.
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(1));
        assert!(dt < Duration::from_secs(10));
    }

    #[test]
    fn jitter_decorrelates_adjacent_states() {
        let mut a = 1;
        let mut b = 2;
        let xa = jitter_step(&mut a);
        let xb = jitter_step(&mut b);
        assert_ne!(xa, xb);
        assert_ne!(jitter_step(&mut a), xa);
    }
}
