//! Small shared helpers for the service layer.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Blocks the calling thread for about `d`.
///
/// Built on `Condvar::wait_timeout` rather than `std::thread::sleep`: the
/// workspace linter confines the raw thread API to the sanctioned pool in
/// `tecopt::parallel` (DESIGN.md §11), and a condvar wait is exactly as
/// cheap for the short polling pauses the server and client need.
pub(crate) fn pause(d: Duration) {
    if d.is_zero() {
        return;
    }
    let gate = Mutex::new(());
    let cv = Condvar::new();
    let guard = gate.lock().unwrap_or_else(PoisonError::into_inner);
    // No notifier exists: this can only wake by timeout (or a spurious
    // wakeup, which shortens the pause harmlessly).
    let _ = cv.wait_timeout(guard, d);
}

/// One capped, jittered exponential-backoff step, shared by the client's
/// reconnect loop and the router's failover loop.
///
/// Attempt `n` (1-based; 0 behaves like 1) targets `min(base·2ⁿ⁻¹, cap)`
/// and the returned pause lands in `[target/2, target]` — never above the
/// cap, for any attempt count. The doubling uses `saturating_mul`, not a
/// shift: `checked_shl` only fails on shift ≥ 64 and silently discards
/// overflowed bits below that, which once let a large base wrap to a
/// near-zero pause.
pub(crate) fn backoff_duration(
    base: Duration,
    cap: Duration,
    attempt: usize,
    jitter: &mut u64,
) -> Duration {
    let cap_ms = u64::try_from(cap.as_millis()).unwrap_or(u64::MAX).max(1);
    let base_ms = u64::try_from(base.as_millis()).unwrap_or(u64::MAX).max(1);
    let mut target = base_ms;
    // cap_ms bounds the loop long before attempt does: 63 doublings
    // saturate u64 from any non-zero base.
    for _ in 1..attempt.min(64) {
        if target >= cap_ms {
            break;
        }
        target = target.saturating_mul(2);
    }
    target = target.min(cap_ms);
    let jitter_ms = jitter_step(jitter) % (target / 2 + 1);
    Duration::from_millis(target / 2 + jitter_ms)
}

/// A tiny splitmix-style step for backoff jitter. Not statistical-quality
/// randomness and not meant to be: it only needs to decorrelate the retry
/// schedules of concurrent clients.
pub(crate) fn jitter_step(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51afd7ed558ccd);
    z ^= z >> 33;
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn pause_returns_and_zero_is_instant() {
        let t0 = Instant::now();
        pause(Duration::ZERO);
        pause(Duration::from_millis(5));
        // Generous bound: only assert it neither hangs nor returns in 0 ns.
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(1));
        assert!(dt < Duration::from_secs(10));
    }

    #[test]
    fn backoff_never_exceeds_the_cap_at_any_attempt_count() {
        let mut jitter = 7;
        let cap = Duration::from_millis(40);
        for base_ms in [1u64, 25, 1 << 40, u64::MAX / 2] {
            let base = Duration::from_millis(base_ms);
            for attempt in [0usize, 1, 2, 3, 16, 63, 64, 65, 1_000_000] {
                let d = backoff_duration(base, cap, attempt, &mut jitter);
                assert!(d <= cap, "base {base_ms} ms, attempt {attempt}: {d:?}");
            }
        }
    }

    #[test]
    fn backoff_grows_toward_the_cap_and_keeps_its_floor() {
        let mut jitter = 3;
        let base = Duration::from_millis(4);
        let cap = Duration::from_secs(10);
        // Attempt n targets base·2ⁿ⁻¹; the jittered pause keeps at least
        // half the target, so doubling is observable through the jitter.
        for (attempt, target_ms) in [(1u32, 4u64), (2, 8), (3, 16), (4, 32)] {
            let d = backoff_duration(base, cap, attempt as usize, &mut jitter);
            assert!(
                d >= Duration::from_millis(target_ms / 2),
                "attempt {attempt}: {d:?}"
            );
            assert!(
                d <= Duration::from_millis(target_ms),
                "attempt {attempt}: {d:?}"
            );
        }
    }

    #[test]
    fn jitter_decorrelates_adjacent_states() {
        let mut a = 1;
        let mut b = 2;
        let xa = jitter_step(&mut a);
        let xb = jitter_step(&mut b);
        assert_ne!(xa, xb);
        assert_ne!(jitter_step(&mut a), xa);
    }
}
