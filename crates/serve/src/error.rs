//! The service-level error taxonomy.
//!
//! Every way a request can fail to produce a result is a typed variant
//! here, layered on top of the evaluation taxonomy of
//! [`tecopt::OptError`] (DESIGN.md §9): admission control sheds with
//! [`ServeError::Overloaded`], a dying client surfaces as
//! [`ServeError::Disconnected`], a malformed frame as
//! [`ServeError::DecodeError`], and a draining server as
//! [`ServeError::ShuttingDown`]. Nothing in the service layer panics the
//! process — a panicking evaluation is contained per request and comes
//! back as `Eval(OptError::WorkerPanicked)`.

use core::fmt;
use tecopt::OptError;

/// A service-layer failure for one request (or one connection).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded admission queue was full: the request was shed *before*
    /// any work was spent on it. Back off and retry — this is the typed
    /// load-shedding signal, deliberately distinct from a timeout.
    Overloaded {
        /// Requests queued when the request was rejected.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The server is draining: admission is closed, in-flight requests are
    /// being finished, and no new work is accepted.
    ShuttingDown,
    /// The peer vanished: EOF or a connection reset in the middle of a
    /// frame, or while a request was in flight.
    Disconnected {
        /// What the service was doing when the peer vanished.
        detail: String,
    },
    /// A frame failed to parse. The offending input is described but never
    /// echoed verbatim at full length (frames are capped; see
    /// `wire::MAX_FRAME_LEN`).
    DecodeError(String),
    /// The evaluation itself failed — the full `tecopt` taxonomy rides
    /// along, including the supervision variants (`Cancelled`,
    /// `DeadlineExceeded`, `WorkerPanicked`).
    Eval(OptError),
    /// The fleet router has no shards to route to. A configuration
    /// failure, not a transient one: an empty fleet never heals by
    /// retrying.
    NoShards,
    /// Every failover attempt across the fleet's replicas failed with a
    /// retryable error; the final failure rides along. Whether a *later*
    /// retry may help is the last error's verdict.
    FailoverExhausted {
        /// Routed attempts made (primary + failovers + final backstops).
        attempts: usize,
        /// The failure of the last attempt.
        last: Box<ServeError>,
    },
}

impl ServeError {
    /// Stable machine-readable code used on the wire (`err <key> <code>
    /// <message>`), and by clients to pick a retry policy.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Disconnected { .. } => "disconnected",
            ServeError::DecodeError(_) => "decode",
            ServeError::Eval(OptError::DeadlineExceeded { .. }) => "deadline",
            ServeError::Eval(OptError::Cancelled { .. }) => "cancelled",
            ServeError::Eval(OptError::WorkerPanicked { .. }) => "panic",
            ServeError::Eval(_) => "eval",
            ServeError::NoShards => "no-shards",
            ServeError::FailoverExhausted { .. } => "failover-exhausted",
        }
    }

    /// Reconstructs a service error from its wire code and message — the
    /// inverse a fleet peer applies to an `err <key> <code> <msg>` frame.
    /// Lossy by design: structured payloads (queue depths, probe counts)
    /// do not travel on the wire, so they come back zeroed; an unknown
    /// code (a newer peer) degrades to a non-retryable `Eval` carrier.
    pub fn from_wire_code(code: &str, message: &str) -> ServeError {
        match code {
            "overloaded" => ServeError::Overloaded {
                depth: 0,
                capacity: 0,
            },
            "shutting-down" => ServeError::ShuttingDown,
            "disconnected" => ServeError::Disconnected {
                detail: message.to_string(),
            },
            "decode" => ServeError::DecodeError(message.to_string()),
            "deadline" => ServeError::Eval(OptError::DeadlineExceeded {
                completed: 0,
                remaining: 1,
            }),
            "cancelled" => ServeError::Eval(OptError::Cancelled { completed: 0 }),
            "panic" => ServeError::Eval(OptError::WorkerPanicked {
                index: 0,
                payload: message.to_string(),
            }),
            "no-shards" => ServeError::NoShards,
            _ => ServeError::Eval(OptError::InvalidParameter(format!("[{code}] {message}"))),
        }
    }

    /// `true` for failures a client may safely retry (with its idempotency
    /// key): the request was shed, interrupted, or never decoded — never
    /// completed with a deterministic answer.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Overloaded { .. }
            | ServeError::Disconnected { .. }
            | ServeError::Eval(OptError::Cancelled { .. })
            | ServeError::Eval(OptError::WorkerPanicked { .. }) => true,
            // The fleet already retried; whether one more round may help
            // is the last underlying failure's verdict.
            ServeError::FailoverExhausted { last, .. } => last.is_retryable(),
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => write!(
                f,
                "overloaded: admission queue full ({depth} of {capacity} slots)"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down; admission closed"),
            ServeError::Disconnected { detail } => write!(f, "peer disconnected: {detail}"),
            ServeError::DecodeError(msg) => write!(f, "cannot decode frame: {msg}"),
            ServeError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ServeError::NoShards => write!(f, "fleet router has no shards configured"),
            ServeError::FailoverExhausted { attempts, last } => {
                write!(f, "failover exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Eval(e) => Some(e),
            ServeError::FailoverExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<OptError> for ServeError {
    fn from(e: OptError) -> ServeError {
        ServeError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let samples = [
            ServeError::Overloaded {
                depth: 4,
                capacity: 4,
            },
            ServeError::ShuttingDown,
            ServeError::Disconnected {
                detail: "mid-frame EOF".into(),
            },
            ServeError::DecodeError("bad field".into()),
            ServeError::Eval(OptError::NoDevicesDeployed),
            ServeError::Eval(OptError::DeadlineExceeded {
                completed: 0,
                remaining: 1,
            }),
            ServeError::Eval(OptError::Cancelled { completed: 0 }),
            ServeError::Eval(OptError::WorkerPanicked {
                index: 0,
                payload: "boom".into(),
            }),
            ServeError::NoShards,
            ServeError::FailoverExhausted {
                attempts: 3,
                last: Box::new(ServeError::ShuttingDown),
            },
        ];
        let codes: Vec<&str> = samples.iter().map(ServeError::code).collect();
        assert_eq!(
            codes,
            vec![
                "overloaded",
                "shutting-down",
                "disconnected",
                "decode",
                "eval",
                "deadline",
                "cancelled",
                "panic",
                "no-shards",
                "failover-exhausted"
            ]
        );
    }

    #[test]
    fn wire_codes_reconstruct_matching_variants() {
        // Every code a server can emit maps back to a variant with the
        // same code — retry decisions survive one wire round trip.
        let cases = [
            "overloaded",
            "shutting-down",
            "disconnected",
            "decode",
            "deadline",
            "cancelled",
            "panic",
            "no-shards",
        ];
        for code in cases {
            let e = ServeError::from_wire_code(code, "msg");
            assert_eq!(e.code(), code, "round trip of `{code}`");
        }
        // An unknown (newer-peer) code degrades to a non-retryable eval
        // error instead of being dropped or mis-retried.
        let e = ServeError::from_wire_code("brand-new-code", "details");
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("brand-new-code"));
    }

    #[test]
    fn retryability_matches_the_design() {
        assert!(ServeError::Overloaded {
            depth: 1,
            capacity: 1
        }
        .is_retryable());
        assert!(ServeError::Disconnected { detail: "x".into() }.is_retryable());
        assert!(ServeError::Eval(OptError::Cancelled { completed: 2 }).is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::DecodeError("x".into()).is_retryable());
        assert!(!ServeError::Eval(OptError::NoDevicesDeployed).is_retryable());
        // A deadline overrun is the caller's budget speaking — retrying
        // the identical budget would fail the same way.
        assert!(!ServeError::Eval(OptError::DeadlineExceeded {
            completed: 0,
            remaining: 3
        })
        .is_retryable());
        // An exhausted failover inherits the last error's verdict; an
        // empty fleet never heals by retrying.
        assert!(ServeError::FailoverExhausted {
            attempts: 2,
            last: Box::new(ServeError::Disconnected { detail: "x".into() })
        }
        .is_retryable());
        assert!(!ServeError::FailoverExhausted {
            attempts: 2,
            last: Box::new(ServeError::DecodeError("x".into()))
        }
        .is_retryable());
        assert!(!ServeError::NoShards.is_retryable());
    }

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = ServeError::Overloaded {
            depth: 16,
            capacity: 16,
        };
        assert!(e.to_string().contains("16 of 16"));
        assert!(e.source().is_none());
        let e = ServeError::Eval(OptError::NoDevicesDeployed);
        assert!(e.source().is_some());
    }
}
