//! Fault-injection helpers for the `tecopt` test suites.
//!
//! Robustness claims are only as good as the failures actually exercised.
//! This crate deterministically manufactures the pathological inputs the
//! hardened pipeline must survive — rank-deficient and near-singular
//! matrices, NaN poisoning, broken symmetry, lost definiteness — so the
//! integration tests can drive **every** public error variant of the
//! workspace instead of only the happy path. A second family of
//! injectors targets the `tecopt-serve` service layer: torn wire frames,
//! dribbling slow clients, scheduled mid-request panics, and artificially
//! slow evaluations for deadline and drain chaos.
//!
//! The perturbations operate on [`DenseMatrix`] (and plain slices) and are
//! intended for `#[cfg(test)]` / dev-dependency use; nothing here belongs in
//! a production call path.
//!
//! ```
//! use tecopt_faultinject as fi;
//! use tecopt_linalg::{Cholesky, DenseMatrix, LinalgError};
//!
//! let mut a = fi::spd_matrix(4, 7);
//! fi::break_definiteness(&mut a);
//! assert!(matches!(
//!     Cholesky::factor(&a),
//!     Err(LinalgError::NotPositiveDefinite { .. })
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use rand::{Rng, SeedableRng};
use tecopt_linalg::DenseMatrix;

/// A deterministic, well-conditioned symmetric positive-definite test
/// matrix: diagonally dominant with seeded off-diagonal couplings.
///
/// The structure mimics the thermal conductance matrices of the paper
/// (Stieltjes-like: positive diagonal, nonpositive off-diagonals).
pub fn spd_matrix(n: usize, seed: u64) -> DenseMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(n, n);
    for r in 0..n {
        for c in (r + 1)..n {
            let g = -rng.gen_range(0.0_f64..1.0);
            a[(r, c)] = g;
            a[(c, r)] = g;
        }
    }
    // Strict diagonal dominance (ground leg) guarantees positive
    // definiteness.
    for r in 0..n {
        let off: f64 = (0..n).filter(|&c| c != r).map(|c| a[(r, c)].abs()).sum();
        a[(r, r)] = off + 1.0 + rng.gen_range(0.0_f64..1.0);
    }
    a
}

/// Overwrites one entry with NaN. For a symmetric consumer, pass `row == col`
/// or poison both triangles yourself.
pub fn inject_nan(a: &mut DenseMatrix, row: usize, col: usize) {
    a[(row, col)] = f64::NAN;
}

/// Poisons one element of a vector with NaN.
pub fn inject_nan_slice(v: &mut [f64], index: usize) {
    v[index] = f64::NAN;
}

/// Makes the matrix exactly rank deficient by overwriting row and column
/// `dst` with copies of row and column `src` (symmetry is preserved when the
/// input is symmetric).
///
/// # Panics
///
/// Panics (test helper) if `src == dst` or either index is out of bounds.
pub fn make_rank_deficient(a: &mut DenseMatrix, src: usize, dst: usize) {
    assert!(src != dst, "duplicating a row onto itself is a no-op");
    let n = a.rows();
    for c in 0..n {
        let v = a[(src, c)];
        a[(dst, c)] = v;
    }
    for r in 0..n {
        let v = a[(r, src)];
        a[(r, dst)] = v;
    }
    a[(dst, dst)] = a[(src, src)];
}

/// Blends the matrix toward the rank-deficient copy produced by
/// [`make_rank_deficient`]: the result is `(1−t)·A + t·A_singular`, singular
/// at `t = 1` and increasingly ill-conditioned as `t → 1`.
pub fn make_near_singular(a: &mut DenseMatrix, src: usize, dst: usize, t: f64) {
    let mut singular = a.clone();
    make_rank_deficient(&mut singular, src, dst);
    let n = a.rows();
    for r in 0..n {
        for c in 0..n {
            a[(r, c)] = (1.0 - t) * a[(r, c)] + t * singular[(r, c)];
        }
    }
}

/// Destroys symmetry by adding `delta` to a single off-diagonal entry
/// (without touching its mirror).
///
/// # Panics
///
/// Panics (test helper) on matrices smaller than 2×2.
pub fn break_symmetry(a: &mut DenseMatrix, delta: f64) {
    assert!(a.rows() >= 2 && a.cols() >= 2, "need at least a 2x2 matrix");
    a[(0, 1)] += delta;
}

/// Destroys positive definiteness by negating the largest diagonal entry.
pub fn break_definiteness(a: &mut DenseMatrix) {
    let n = a.rows().min(a.cols());
    let mut k = 0;
    for r in 1..n {
        if a[(r, r)] > a[(k, k)] {
            k = r;
        }
    }
    a[(k, k)] = -a[(k, k)].abs().max(1.0);
}

/// A current just below the runaway threshold: `fraction` of the way from a
/// known-feasible value to a known-infeasible one. Convenience for driving
/// ill-conditioned (but still solvable) systems.
pub fn near_runaway_current(feasible: f64, infeasible: f64, fraction: f64) -> f64 {
    feasible + (infeasible - feasible) * fraction
}

// ---------------------------------------------------------------------
// Service-level chaos: wire and evaluator injectors for tecopt-serve
// ---------------------------------------------------------------------

/// A torn wire frame: the first `keep` bytes of the encoded request, with
/// no terminator — what a server sees when a client dies mid-frame. The
/// chaos suites write this and then drop the connection; the server must
/// answer with a typed decode/disconnect error and free the slot, never
/// hang a worker.
pub fn torn_frame(frame: &str, keep: usize) -> Vec<u8> {
    frame.as_bytes()[..keep.min(frame.len())].to_vec()
}

/// Writes `bytes` in `chunk`-sized dribbles, invoking `between` between
/// chunks — a slow-client injector. Tests pass a short sleep (or a
/// cancellation check) as `between`; keeping the pacing a callback keeps
/// this crate free of thread APIs.
///
/// # Errors
///
/// Whatever the underlying writer reports.
pub fn dribble<W: std::io::Write>(
    w: &mut W,
    bytes: &[u8],
    chunk: usize,
    mut between: impl FnMut(),
) -> std::io::Result<()> {
    let chunk = chunk.max(1);
    let mut first = true;
    for piece in bytes.chunks(chunk) {
        if !first {
            between();
        }
        first = false;
        w.write_all(piece)?;
        w.flush()?;
    }
    Ok(())
}

/// An evaluator wrapper that panics mid-request on a deterministic
/// schedule: every `period`-th call (1-based) dies before delegating.
/// Drives `tecopt-serve`'s per-request panic containment — the process
/// must never abort and the other `period − 1` calls must succeed.
pub struct MidRequestPanic<E> {
    inner: E,
    period: usize,
    calls: std::sync::atomic::AtomicUsize,
}

impl<E> MidRequestPanic<E> {
    /// Panics on calls `period`, `2·period`, … delegating otherwise.
    /// A `period` of 0 is clamped to 1 (every call panics).
    pub fn every(inner: E, period: usize) -> MidRequestPanic<E> {
        MidRequestPanic {
            inner,
            period: period.max(1),
            calls: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Calls observed so far.
    pub fn calls(&self) -> usize {
        self.calls.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl<E: tecopt_serve::Evaluator> tecopt_serve::Evaluator for MidRequestPanic<E> {
    fn evaluate(
        &self,
        request: &tecopt_serve::Request,
        ctx: &tecopt::RunContext,
    ) -> Result<tecopt_serve::Response, tecopt::OptError> {
        let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        if call.is_multiple_of(self.period) {
            panic!("injected mid-request panic (call {call})");
        }
        self.inner.evaluate(request, ctx)
    }
}

/// An evaluator wrapper that stretches every request to at least
/// `min_duration` by spinning at the supervision gate — so deadline
/// storms, load shedding, and drain windows have something slow to bite
/// on. The spin honors the request's context: a raised cancel token or an
/// expired deadline ends the wait with the matching typed error, exactly
/// like a long factorization hitting its gate.
pub struct SlowEvaluator<E> {
    inner: E,
    min_duration: std::time::Duration,
}

impl<E> SlowEvaluator<E> {
    /// Delays every evaluation by at least `min_duration`.
    pub fn new(inner: E, min_duration: std::time::Duration) -> SlowEvaluator<E> {
        SlowEvaluator {
            inner,
            min_duration,
        }
    }
}

impl<E: tecopt_serve::Evaluator> tecopt_serve::Evaluator for SlowEvaluator<E> {
    fn evaluate(
        &self,
        request: &tecopt_serve::Request,
        ctx: &tecopt::RunContext,
    ) -> Result<tecopt_serve::Response, tecopt::OptError> {
        if let Some(until) = std::time::Instant::now().checked_add(self.min_duration) {
            while std::time::Instant::now() < until {
                ctx.ensure_live()?;
                std::hint::spin_loop();
            }
        }
        self.inner.evaluate(request, ctx)
    }
}

// ---------------------------------------------------------------------
// Fleet chaos: shard and transport injectors for the router tier
// ---------------------------------------------------------------------

/// A killable shard: wraps any [`tecopt_serve::ShardHandle`] and, once
/// [`ShardKill::kill`]ed, refuses every operation with a typed
/// [`tecopt_serve::ServeError::Disconnected`] — exactly what a crashed
/// process looks like to the router. [`ShardKill::restart_with`] swaps in
/// a replacement handle (a freshly built engine), modeling a restart
/// under the same fleet slot and id.
pub struct ShardKill {
    inner: std::sync::Mutex<std::sync::Arc<dyn tecopt_serve::ShardHandle>>,
    killed: std::sync::atomic::AtomicBool,
    id: String,
}

impl ShardKill {
    /// Wraps `inner` as a killable shard (initially alive).
    pub fn wrap(inner: std::sync::Arc<dyn tecopt_serve::ShardHandle>) -> ShardKill {
        ShardKill {
            id: inner.id().to_string(),
            inner: std::sync::Mutex::new(inner),
            killed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Kills the shard: every subsequent operation is refused.
    pub fn kill(&self) {
        self.killed.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Revives the shard with its current inner handle.
    pub fn restart(&self) {
        self.killed
            .store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Revives the shard with a replacement handle (a rebuilt engine).
    pub fn restart_with(&self, inner: std::sync::Arc<dyn tecopt_serve::ShardHandle>) {
        *self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = inner;
        self.restart();
    }

    /// `true` while the shard refuses operations.
    pub fn is_killed(&self) -> bool {
        self.killed.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn live(
        &self,
        op: &str,
    ) -> Result<std::sync::Arc<dyn tecopt_serve::ShardHandle>, tecopt_serve::ServeError> {
        if self.is_killed() {
            return Err(tecopt_serve::ServeError::Disconnected {
                detail: format!("{op} to {}: shard killed by fault injector", self.id),
            });
        }
        Ok(std::sync::Arc::clone(
            &self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        ))
    }
}

impl tecopt_serve::ShardHandle for ShardKill {
    fn id(&self) -> &str {
        &self.id
    }

    fn submit(
        &self,
        frame: &tecopt_serve::RequestFrame,
        cancel: &tecopt::CancelToken,
    ) -> Result<tecopt_serve::Response, tecopt_serve::ServeError> {
        self.live("submit")?.submit(frame, cancel)
    }

    fn ping(&self, timeout: std::time::Duration) -> Result<(), tecopt_serve::ServeError> {
        self.live("ping")?.ping(timeout)
    }

    fn replicate(&self, entry: &tecopt_serve::ReplEntry) -> Result<(), tecopt_serve::ServeError> {
        self.live("replicate")?.replicate(entry)
    }
}

/// An address every TCP connect refuses: binds an ephemeral port, reads
/// it back, and drops the listener. The OS keeps the port closed long
/// enough for a test's connection attempts to be refused instantly —
/// unlike a firewalled address, which would time out instead.
///
/// # Errors
///
/// Any socket-level failure binding the probe listener.
pub fn refused_tcp_addr() -> std::io::Result<String> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    drop(listener);
    Ok(addr)
}

/// Blocks the calling thread for about `d` without the raw thread API
/// (condvar timeout; the workspace linter confines `std::thread` to the
/// sanctioned pool).
fn settle(d: std::time::Duration) {
    if d.is_zero() {
        return;
    }
    let gate = std::sync::Mutex::new(());
    let cv = std::sync::Condvar::new();
    let guard = gate
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = cv.wait_timeout(guard, d);
}

/// A listener that accepts only after a configured delay — the transport
/// picture of an overloaded accept loop. Drive [`SlowAccept::serve_one_pong`]
/// on one side of [`tecopt::parallel::join`] while the other side pings.
pub struct SlowAccept {
    listener: std::net::TcpListener,
    delay: std::time::Duration,
}

impl SlowAccept {
    /// Binds an ephemeral port that will accept after `delay`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure from bind.
    pub fn bind(delay: std::time::Duration) -> std::io::Result<SlowAccept> {
        Ok(SlowAccept {
            listener: std::net::TcpListener::bind("127.0.0.1:0")?,
            delay,
        })
    }

    /// The bound address to point a shard or client at.
    ///
    /// # Errors
    ///
    /// Any socket-level failure reading the local address.
    pub fn addr(&self) -> std::io::Result<String> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// Sleeps the configured delay, accepts one connection, reads one
    /// line, and echoes a pong for it. Returns when the peer is served
    /// or gone.
    ///
    /// # Errors
    ///
    /// Any socket-level failure accepting or serving.
    pub fn serve_one_pong(&self) -> std::io::Result<()> {
        use std::io::{BufRead, BufReader, Write};
        settle(self.delay);
        let (stream, _) = self.listener.accept()?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut stream = stream;
        if let Some(nonce) = line.trim_end().strip_prefix("ping ") {
            stream.write_all(format!("pong {nonce}\n").as_bytes())?;
        }
        Ok(())
    }
}

/// A black hole: accepts connections and then says nothing, forever (or
/// until dropped) — the transport picture of a hung process whose kernel
/// still completes the TCP handshake. Clients must convert the silence
/// into a typed timeout, never hang.
pub struct BlackHole {
    listener: std::net::TcpListener,
}

impl BlackHole {
    /// Binds an ephemeral black-hole port.
    ///
    /// # Errors
    ///
    /// Any socket-level failure from bind.
    pub fn bind() -> std::io::Result<BlackHole> {
        Ok(BlackHole {
            listener: std::net::TcpListener::bind("127.0.0.1:0")?,
        })
    }

    /// The bound address to point a shard or client at.
    ///
    /// # Errors
    ///
    /// Any socket-level failure reading the local address.
    pub fn addr(&self) -> std::io::Result<String> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// Accepts one connection and holds it open, silent, for `hold`.
    /// Everything the peer writes is swallowed unread.
    ///
    /// # Errors
    ///
    /// Any socket-level failure accepting.
    pub fn swallow_one(&self, hold: std::time::Duration) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        settle(hold);
        drop(stream);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Durable-persist chaos: torn-write and disk-full injectors for the
// checkpoint/ledger writers
// ---------------------------------------------------------------------

/// A torn write: truncates the file at `path` to its first `keep` bytes —
/// exactly what a kill (or a lost page) mid-append leaves behind. The
/// checkpoint and ledger loaders must skip the torn tail and re-run only
/// the affected item, never refuse the whole file.
///
/// # Errors
///
/// Any filesystem failure opening or truncating the file.
pub fn tear_tail(path: &std::path::Path, keep: u64) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    file.sync_all()
}

/// A disk-full (or permission-lost) injector for the atomic
/// temp-file+rename protocol: occupies the writer's temp sibling
/// (`<final>.tmp`, the [`tecopt::supervise::temp_sibling`] convention)
/// with a directory, so creating the temp file fails with a typed I/O
/// error while the *final* path — and every record already persisted in
/// it — stays untouched. [`DiskFull::release`] (or drop) clears the
/// blockage.
#[derive(Debug)]
pub struct DiskFull {
    tmp: std::path::PathBuf,
}

impl DiskFull {
    /// Blocks atomic replacement of `final_path` until released.
    ///
    /// # Errors
    ///
    /// Any filesystem failure creating the blocking directory.
    pub fn at(final_path: &std::path::Path) -> std::io::Result<DiskFull> {
        let tmp = tecopt::supervise::temp_sibling(final_path);
        std::fs::create_dir_all(&tmp)?;
        Ok(DiskFull { tmp })
    }

    /// Clears the blockage, letting the next atomic write proceed.
    ///
    /// # Errors
    ///
    /// Any filesystem failure removing the blocking directory.
    pub fn release(self) -> std::io::Result<()> {
        let tmp = self.tmp.clone();
        std::mem::forget(self);
        std::fs::remove_dir_all(tmp)
    }
}

impl Drop for DiskFull {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.tmp);
    }
}

// ---------------------------------------------------------------------
// Transient-schedule chaos: workload injectors for the safety envelope
// ---------------------------------------------------------------------

/// Injects a power spike into a transient schedule: a new segment of
/// `duration` seconds, with `extra` watts added to every tile of the
/// preceding segment's power map, spliced in after segment
/// `after_segment`. Drives the safety envelope's trip path — a
/// temperature excursion mid-trace that a correct envelope must ride out
/// without ever issuing a solve at `i ≥ λ_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeTrace {
    /// Zero-based segment index the spike follows.
    pub after_segment: usize,
    /// Spike duration, seconds.
    pub duration: f64,
    /// Power added to every tile for the spike's duration.
    pub extra: tecopt_units::Watts,
}

impl SpikeTrace {
    /// Splices the spike segment into `schedule`.
    ///
    /// # Panics
    ///
    /// Panics (test helper) when `after_segment` is out of bounds.
    pub fn apply(&self, schedule: &mut Vec<(f64, Vec<tecopt_units::Watts>)>) {
        let (_, base) = &schedule[self.after_segment];
        let spiked: Vec<tecopt_units::Watts> = base
            .iter()
            .map(|p| tecopt_units::Watts(p.value() + self.extra.value()))
            .collect();
        schedule.insert(self.after_segment + 1, (self.duration, spiked));
    }
}

/// Poisons one tile power of one schedule segment with NaN. The hardened
/// playback loop must refuse the sample *before* the solver sees it —
/// [`OptError::NonFinitePower`](tecopt::OptError::NonFinitePower) naming
/// this exact segment boundary and tile, with the partial trace intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanSample {
    /// Zero-based segment whose power map is poisoned.
    pub segment: usize,
    /// Zero-based tile index set to NaN.
    pub tile: usize,
}

impl NanSample {
    /// Applies the poisoning in place.
    ///
    /// # Panics
    ///
    /// Panics (test helper) when either index is out of bounds.
    pub fn apply(&self, schedule: &mut [(f64, Vec<tecopt_units::Watts>)]) {
        schedule[self.segment].1[self.tile] = tecopt_units::Watts(f64::NAN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecopt_linalg::{determinant, Cholesky, LinalgError, Lu};

    #[test]
    fn spd_matrix_is_positive_definite_and_deterministic() {
        let a = spd_matrix(6, 3);
        let b = spd_matrix(6, 3);
        assert_eq!(a, b);
        assert!(Cholesky::factor(&a).is_ok());
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn nan_injection_is_caught_by_ensure_finite() {
        let mut a = spd_matrix(4, 1);
        inject_nan(&mut a, 2, 2);
        assert!(matches!(
            a.ensure_finite(),
            Err(LinalgError::NonFiniteEntry { row: 2, col: 2 })
        ));
        let mut v = vec![1.0; 4];
        inject_nan_slice(&mut v, 3);
        assert!(v[3].is_nan());
    }

    #[test]
    fn rank_deficiency_reaches_singular() {
        let mut a = spd_matrix(5, 9);
        make_rank_deficient(&mut a, 1, 3);
        assert!(a.is_symmetric(0.0));
        assert_eq!(determinant(&a).unwrap(), 0.0);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn near_singular_degrades_conditioning_monotonically() {
        let base = spd_matrix(5, 11);
        let cond_at = |t: f64| {
            let mut a = base.clone();
            make_near_singular(&mut a, 0, 4, t);
            Cholesky::factor(&a).map(|c| c.condition_estimate())
        };
        let c0 = cond_at(0.0).unwrap();
        let c9 = cond_at(0.999_999).unwrap();
        assert!(
            c9 > 100.0 * c0,
            "conditioning did not degrade: {c0} vs {c9}"
        );
    }

    #[test]
    fn symmetry_and_definiteness_breakers_work() {
        let mut a = spd_matrix(4, 5);
        break_symmetry(&mut a, 0.5);
        assert!(!a.is_symmetric(1e-12));

        let mut b = spd_matrix(4, 5);
        break_definiteness(&mut b);
        assert!(matches!(
            Cholesky::factor(&b),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn near_runaway_interpolates() {
        let i = near_runaway_current(2.0, 4.0, 0.75);
        assert!((i - 3.5).abs() < 1e-12);
    }

    #[test]
    fn torn_frame_truncates_without_terminator() {
        let t = torn_frame("req - - steady 00\n", 9);
        assert_eq!(t, b"req - - s");
        assert!(!t.contains(&b'\n'));
        // keep beyond the frame is clamped, not a panic
        assert_eq!(torn_frame("ab", 10), b"ab");
    }

    #[test]
    fn dribble_writes_everything_in_order() {
        let mut out = Vec::new();
        let mut pauses = 0;
        dribble(&mut out, b"hello world", 3, || pauses += 1).unwrap();
        assert_eq!(out, b"hello world");
        assert_eq!(pauses, 3); // 4 chunks, a pause between each pair
        let mut out = Vec::new();
        dribble(&mut out, b"x", 0, || ()).unwrap(); // chunk 0 clamps to 1
        assert_eq!(out, b"x");
    }

    struct EchoEval;
    impl tecopt_serve::Evaluator for EchoEval {
        fn evaluate(
            &self,
            _request: &tecopt_serve::Request,
            _ctx: &tecopt::RunContext,
        ) -> Result<tecopt_serve::Response, tecopt::OptError> {
            Ok(tecopt_serve::Response::Steady {
                peak: tecopt_units::Celsius(1.0),
                tec_power: tecopt_units::Watts(1.0),
            })
        }
    }

    #[test]
    fn mid_request_panic_fires_on_schedule() {
        use tecopt_serve::Evaluator as _;
        let eval = MidRequestPanic::every(EchoEval, 3);
        let req = tecopt_serve::Request::Steady {
            current: tecopt_units::Amperes(1.0),
        };
        let ctx = tecopt::RunContext::unbounded();
        for call in 1..=6 {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eval.evaluate(&req, &ctx)
            }));
            assert_eq!(outcome.is_err(), call % 3 == 0, "call {call}");
        }
        assert_eq!(eval.calls(), 6);
    }

    struct AlwaysOkShard;
    impl tecopt_serve::ShardHandle for AlwaysOkShard {
        fn id(&self) -> &str {
            "ok-shard"
        }
        fn submit(
            &self,
            _frame: &tecopt_serve::RequestFrame,
            _cancel: &tecopt::CancelToken,
        ) -> Result<tecopt_serve::Response, tecopt_serve::ServeError> {
            Ok(tecopt_serve::Response::Steady {
                peak: tecopt_units::Celsius(1.0),
                tec_power: tecopt_units::Watts(1.0),
            })
        }
        fn ping(&self, _timeout: std::time::Duration) -> Result<(), tecopt_serve::ServeError> {
            Ok(())
        }
        fn replicate(
            &self,
            _entry: &tecopt_serve::ReplEntry,
        ) -> Result<(), tecopt_serve::ServeError> {
            Ok(())
        }
    }

    #[test]
    fn a_killed_shard_refuses_every_operation_with_a_typed_error() {
        use tecopt_serve::ShardHandle as _;
        let shard = ShardKill::wrap(std::sync::Arc::new(AlwaysOkShard));
        let frame = tecopt_serve::RequestFrame {
            key: Some("k".into()),
            deadline_ms: None,
            request: tecopt_serve::Request::Steady {
                current: tecopt_units::Amperes(1.0),
            },
        };
        let cancel = tecopt::CancelToken::new();
        assert!(shard.submit(&frame, &cancel).is_ok());
        shard.kill();
        let killed_err = |r: Result<(), tecopt_serve::ServeError>| match r {
            Err(tecopt_serve::ServeError::Disconnected { detail }) => {
                assert!(detail.contains("killed"), "{detail}");
            }
            other => panic!("expected Disconnected, got {other:?}"),
        };
        killed_err(shard.submit(&frame, &cancel).map(|_| ()));
        killed_err(shard.ping(std::time::Duration::from_millis(10)));
        killed_err(shard.replicate(&tecopt_serve::ReplEntry {
            request_fp: 1,
            key: "k".into(),
            response: tecopt_serve::Response::Steady {
                peak: tecopt_units::Celsius(1.0),
                tec_power: tecopt_units::Watts(1.0),
            },
        }));
        // A restart (possibly with a rebuilt engine) revives the slot.
        shard.restart_with(std::sync::Arc::new(AlwaysOkShard));
        assert!(!shard.is_killed());
        assert!(shard.submit(&frame, &cancel).is_ok());
    }

    #[test]
    fn a_refused_port_is_an_instant_typed_disconnect() {
        use tecopt_serve::ShardHandle as _;
        let addr = refused_tcp_addr().unwrap();
        let shard = tecopt_serve::RemoteShard::new("refused", tecopt_serve::RemoteAddr::Tcp(addr));
        let t0 = std::time::Instant::now();
        match shard.ping(std::time::Duration::from_millis(100)) {
            Err(tecopt_serve::ServeError::Disconnected { detail }) => {
                assert!(detail.contains("connect"), "{detail}");
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // Refused, not black-holed: no multi-second connect timeout.
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn a_slow_accept_loop_times_a_ping_out_as_disconnected() {
        use tecopt_serve::ShardHandle as _;
        let slow = SlowAccept::bind(std::time::Duration::from_millis(300)).unwrap();
        let shard = tecopt_serve::RemoteShard::new(
            "slow-accept",
            tecopt_serve::RemoteAddr::Tcp(slow.addr().unwrap()),
        )
        .with_io_slice(std::time::Duration::from_millis(5));
        let (served, pinged) = tecopt::parallel::join(
            || slow.serve_one_pong(),
            || shard.ping(std::time::Duration::from_millis(50)),
        );
        // The ping gave up long before the accept loop woke up…
        match pinged {
            Err(tecopt_serve::ServeError::Disconnected { detail }) => {
                assert!(detail.contains("timed out"), "{detail}");
            }
            other => panic!("expected timeout Disconnected, got {other:?}"),
        }
        // …and the late server still served the connection it finally
        // accepted (the injector never wedges the test harness).
        assert!(served.is_ok());
    }

    #[test]
    fn a_black_hole_is_a_typed_timeout_never_a_hang() {
        use tecopt_serve::ShardHandle as _;
        let hole = BlackHole::bind().unwrap();
        let shard = tecopt_serve::RemoteShard::new(
            "black-hole",
            tecopt_serve::RemoteAddr::Tcp(hole.addr().unwrap()),
        )
        .with_io_slice(std::time::Duration::from_millis(5));
        let (_held, pinged) = tecopt::parallel::join(
            || hole.swallow_one(std::time::Duration::from_millis(200)),
            || shard.ping(std::time::Duration::from_millis(50)),
        );
        match pinged {
            Err(tecopt_serve::ServeError::Disconnected { detail }) => {
                assert!(detail.contains("timed out"), "{detail}");
            }
            other => panic!("expected timeout Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn tear_tail_truncates_and_disk_full_blocks_only_the_temp_path() {
        let dir = std::env::temp_dir().join(format!("tecopt-fi-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.txt");

        std::fs::write(&path, "keep this\nlose this\n").unwrap();
        tear_tail(&path, 10).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "keep this\n");

        let blockage = DiskFull::at(&path).unwrap();
        let denied = tecopt::supervise::atomic_replace(&path, "replacement\n");
        assert!(denied.is_err());
        // The final path — and its surviving records — are untouched.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "keep this\n");
        blockage.release().unwrap();
        tecopt::supervise::atomic_replace(&path, "replacement\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "replacement\n");
    }

    #[test]
    fn spike_trace_splices_an_elevated_segment() {
        use tecopt_units::Watts;
        let mut schedule = vec![
            (2.0, vec![Watts(0.1), Watts(0.2)]),
            (3.0, vec![Watts(0.3), Watts(0.4)]),
        ];
        SpikeTrace {
            after_segment: 0,
            duration: 0.5,
            extra: Watts(1.0),
        }
        .apply(&mut schedule);
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule[1].0, 0.5);
        assert_eq!(schedule[1].1, vec![Watts(1.1), Watts(1.2)]);
        // The surrounding segments are untouched.
        assert_eq!(schedule[0].1, vec![Watts(0.1), Watts(0.2)]);
        assert_eq!(schedule[2].1, vec![Watts(0.3), Watts(0.4)]);
    }

    #[test]
    fn nan_sample_poisons_exactly_one_tile() {
        use tecopt_units::Watts;
        let mut schedule = vec![(1.0, vec![Watts(0.1), Watts(0.2), Watts(0.3)])];
        NanSample {
            segment: 0,
            tile: 1,
        }
        .apply(&mut schedule);
        assert!(schedule[0].1[1].value().is_nan());
        assert_eq!(schedule[0].1[0], Watts(0.1));
        assert_eq!(schedule[0].1[2], Watts(0.3));
    }

    #[test]
    fn slow_evaluator_honors_cancellation() {
        use tecopt_serve::Evaluator as _;
        let eval = SlowEvaluator::new(EchoEval, std::time::Duration::from_secs(60));
        let req = tecopt_serve::Request::Steady {
            current: tecopt_units::Amperes(1.0),
        };
        let token = tecopt::CancelToken::new();
        token.cancel();
        let ctx = tecopt::RunContext::unbounded().cancel_token(token);
        // A raised token ends the 60 s spin immediately with a typed error.
        assert!(matches!(
            eval.evaluate(&req, &ctx),
            Err(tecopt::OptError::Cancelled { .. })
        ));
        // And an expired deadline does the same.
        let ctx = tecopt::RunContext::unbounded().deadline_in(std::time::Duration::ZERO);
        assert!(matches!(
            eval.evaluate(&req, &ctx),
            Err(tecopt::OptError::DeadlineExceeded { .. })
        ));
    }
}
