//! Property-based tests over the whole stack: physical invariants that must
//! hold for *any* power profile, deployment or feasible current, not just
//! the calibrated benchmarks.

use proptest::prelude::*;
use tecopt::{
    optimize_current, runaway_limit, CoolingSystem, CurrentSettings, PackageConfig, TecParams,
    TileIndex,
};
use tecopt_units::{Amperes, Watts};

fn small_config() -> PackageConfig {
    PackageConfig::hotspot41_like(4, 4).unwrap()
}

fn power_vec() -> impl Strategy<Value = Vec<Watts>> {
    proptest::collection::vec(0.0f64..0.6, 16).prop_map(|v| v.into_iter().map(Watts).collect())
}

fn tile_set() -> impl Strategy<Value = Vec<TileIndex>> {
    proptest::collection::btree_set(0usize..16, 1..5).prop_map(|s| {
        s.into_iter()
            .map(|k| TileIndex::new(k / 4, k % 4))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inverse positivity (Lemma 3): every steady-state temperature is at
    /// or above ambient when only heat sources are present.
    #[test]
    fn temperatures_never_drop_below_ambient_without_pumping(powers in power_vec()) {
        let config = small_config();
        let system = CoolingSystem::without_devices(
            &config,
            TecParams::superlattice_thin_film(),
            powers,
        ).unwrap();
        let state = system.solve(Amperes(0.0)).unwrap();
        let ambient = config.ambient().to_kelvin().value();
        for t in state.node_temperatures() {
            prop_assert!(t.value() >= ambient - 1e-9);
        }
    }

    /// Monotonicity of the passive network: adding power anywhere can only
    /// raise every temperature (H has nonnegative entries).
    #[test]
    fn more_power_is_never_cooler(powers in power_vec(), extra_tile in 0usize..16) {
        let config = small_config();
        let system = CoolingSystem::without_devices(
            &config,
            TecParams::superlattice_thin_film(),
            powers.clone(),
        ).unwrap();
        let before = system.solve(Amperes(0.0)).unwrap();
        let mut bumped = powers;
        bumped[extra_tile] += Watts(0.2);
        let system2 = system.with_tiles(&[]).unwrap();
        let system2 = CoolingSystem::without_devices(
            system2.config(),
            TecParams::superlattice_thin_film(),
            bumped,
        ).unwrap();
        let after = system2.solve(Amperes(0.0)).unwrap();
        for (a, b) in before.node_temperatures().iter().zip(after.node_temperatures()) {
            prop_assert!(b.value() >= a.value() - 1e-9);
        }
    }

    /// The runaway limit exists for every nonempty deployment, and the
    /// optimizer's current always stays inside it.
    #[test]
    fn optimum_is_always_inside_the_runaway_interval(
        powers in power_vec(),
        tiles in tile_set(),
    ) {
        let config = small_config();
        let system = CoolingSystem::new(
            &config,
            TecParams::superlattice_thin_film(),
            &tiles,
            powers,
        ).unwrap();
        let lim = runaway_limit(&system, 1e-9).unwrap();
        prop_assert!(lim.lambda().value() > 0.0);
        let opt = optimize_current(&system, CurrentSettings {
            max_evaluations: 60,
            ..CurrentSettings::default()
        }).unwrap();
        prop_assert!(opt.current().value() >= 0.0);
        prop_assert!(opt.current().value() < lim.lambda().value());
        // The optimum is no worse than doing nothing.
        let passive = system.solve(Amperes(0.0)).unwrap();
        prop_assert!(opt.state().peak().value() <= passive.peak().value() + 1e-9);
    }

    /// Tile powers rasterized from any scaling of the Alpha workload
    /// conserve total power.
    #[test]
    fn rasterization_conserves_power(scale in 0.1f64..3.0) {
        let model = tecopt_power::WorkloadModel::alpha_spec2000_like().unwrap();
        let envelope = model.worst_case_envelope(0.2).unwrap().scale(scale).unwrap();
        let config = PackageConfig::hotspot41_like(12, 12).unwrap();
        let tiles = envelope.rasterize(config.grid()).unwrap();
        let sum: f64 = tiles.iter().map(|w| w.value()).sum();
        prop_assert!((sum - envelope.total_power().value()).abs() < 1e-9);
    }

    /// Conjecture 1 on randomly generated PD Stieltjes matrices (the
    /// paper's randomized campaign as a property test).
    #[test]
    fn conjecture1_holds_on_random_stieltjes(seed in 0u64..10_000) {
        let mut rng = tecopt_linalg::stieltjes::seeded_rng(seed);
        let s = tecopt_linalg::stieltjes::random_stieltjes(
            tecopt_linalg::stieltjes::StieltjesSampler {
                dim: 6,
                ..Default::default()
            },
            &mut rng,
        );
        match tecopt::conjecture::check_conjecture1(&s, None).unwrap() {
            tecopt::conjecture::ConjectureVerdict::Holds { .. } => {}
            other => prop_assert!(false, "counterexample: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The golden-section optimum is at least as good as any point of a
    /// brute-force current grid (convexity means no hidden dip).
    #[test]
    fn optimizer_beats_brute_force_grid(seed in 0u64..64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = small_config();
        let mut powers = vec![Watts(0.05); 16];
        let hot = rng.gen_range(0..16usize);
        powers[hot] = Watts(rng.gen_range(0.3..0.7));
        let tile = TileIndex::new(hot / 4, hot % 4);
        let system = CoolingSystem::new(
            &config,
            TecParams::superlattice_thin_film(),
            &[tile],
            powers,
        ).unwrap();
        let opt = optimize_current(&system, CurrentSettings::default()).unwrap();
        let lam = runaway_limit(&system, 1e-9).unwrap().feasible().value();
        for k in 0..=20 {
            let i = Amperes(lam * 0.99 * k as f64 / 20.0);
            let grid_peak = system.solve(i).unwrap().peak();
            prop_assert!(
                opt.state().peak().value() <= grid_peak.value() + 2e-3,
                "grid point {i:?} ({grid_peak:?}) beats the optimizer ({:?})",
                opt.state().peak()
            );
        }
    }
}
