//! Exhaustive error-path coverage: every public error variant of the five
//! library crates (`tecopt-linalg`, `tecopt-thermal`, `tecopt-device`,
//! `tecopt-power`, `tecopt` core) is driven through public APIs, using the
//! `tecopt-faultinject` perturbation helpers for the matrix cases.
//!
//! The point is not to re-test each crate's internals — their unit tests do
//! that — but to prove the *reachability* claim of the hardened pipeline:
//! no declared failure mode is dead code, and every one surfaces as a typed
//! error instead of a panic or a hang.

use tecopt::{
    greedy_deploy, optimize_current, runaway_limit, CoolingSystem, CurrentSettings, DeploySettings,
    OptError, PackageConfig, TecParams, TileIndex,
};
use tecopt_device::{DeviceError, OperatingPoint, StampedSystem, TecArray};
use tecopt_faultinject as fi;
use tecopt_linalg::{
    conjugate_gradient, eigen, solve_robust, CgSettings, Cholesky, CsrMatrix, DenseMatrix,
    LinalgError, Lu, SolverPolicy, Triplet,
};
use tecopt_power::hotspot_io::{parse_ptrace, to_ptrace};
use tecopt_power::{Floorplan, PowerError, PowerProfile, Unit};
use tecopt_thermal::transient::BackwardEuler;
use tecopt_thermal::{CompactModel, Rect, ThermalError, TwoPortSpec};
use tecopt_units::{Amperes, Celsius, Kelvin, Meters, Watts, WattsPerKelvin};

// ---------------------------------------------------------------- linalg --

#[test]
fn every_linalg_error_variant_is_reachable() {
    // NotSquare: the Cholesky oracle refuses rectangular input.
    assert!(matches!(
        Cholesky::factor(&DenseMatrix::zeros(2, 3)),
        Err(LinalgError::NotSquare { rows: 2, cols: 3 })
    ));

    // DimensionMismatch: right-hand side shorter than the factored system.
    let chol = Cholesky::factor(&fi::spd_matrix(4, 1)).unwrap();
    assert!(matches!(
        chol.solve(&[1.0, 2.0]),
        Err(LinalgError::DimensionMismatch {
            expected: 4,
            actual: 2
        })
    ));

    // RaggedRows: constructor-level shape fault.
    assert!(matches!(
        DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]),
        Err(LinalgError::RaggedRows {
            row: 1,
            len: 1,
            expected: 2
        })
    ));

    // NotPositiveDefinite: lost definiteness (the runaway signature).
    let mut indefinite = fi::spd_matrix(5, 2);
    fi::break_definiteness(&mut indefinite);
    assert!(matches!(
        Cholesky::factor(&indefinite),
        Err(LinalgError::NotPositiveDefinite { .. })
    ));

    // Singular: exact rank deficiency defeats even pivoted LU.
    let mut deficient = fi::spd_matrix(5, 3);
    fi::make_rank_deficient(&mut deficient, 1, 3);
    assert!(matches!(
        Lu::factor(&deficient),
        Err(LinalgError::Singular { .. })
    ));

    // NoConvergence: a one-iteration cap cannot settle the power method.
    let a = fi::spd_matrix(6, 4);
    assert!(matches!(
        eigen::power_iteration(&a, 1, 1e-30),
        Err(LinalgError::NoConvergence { iterations: 1, .. })
    ));

    // NonFiniteEntry: NaN poisoning is caught before factorization.
    let mut poisoned = fi::spd_matrix(4, 5);
    fi::inject_nan(&mut poisoned, 2, 1);
    assert!(matches!(
        solve_robust(&poisoned, &[1.0; 4], &SolverPolicy::default()),
        Err(LinalgError::NonFiniteEntry { row: 2, col: 1 })
    ));

    // IllConditioned: factorable but numerically meaningless under a strict
    // policy that forbids fallbacks.
    let near = DenseMatrix::from_diagonal(&[1.0, 1e-18]);
    assert!(matches!(
        solve_robust(&near, &[1.0, 1.0], &SolverPolicy::strict()),
        Err(LinalgError::IllConditioned { estimate } ) if estimate > 1e15
    ));

    // BudgetExhausted: a zero probe budget terminates the λ_m search
    // immediately instead of hanging.
    let g = fi::spd_matrix(3, 6);
    assert!(matches!(
        eigen::generalized_pd_threshold_budgeted(&g, &[1.0, 1.0, 1.0], 1e-9, 0),
        Err(LinalgError::BudgetExhausted {
            spent: 0,
            budget: 0
        })
    ));

    // InvalidInput: out-of-bounds sparse triplet.
    assert!(matches!(
        CsrMatrix::from_triplets(2, 2, &[Triplet::new(5, 0, 1.0)]),
        Err(LinalgError::InvalidInput(_))
    ));
    // ... and a Jacobi preconditioner with a nonpositive diagonal.
    let csr = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 0, -1.0), Triplet::new(1, 1, 1.0)])
        .unwrap();
    assert!(matches!(
        conjugate_gradient(&csr, &[1.0, 1.0], CgSettings::default()),
        Err(LinalgError::InvalidInput(_))
    ));
}

// --------------------------------------------------------------- thermal --

#[test]
fn every_thermal_error_variant_is_reachable() {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();

    // InvalidConfig: a two-port spec with a non-physical conductance.
    let bad_spec = TwoPortSpec {
        lower_contact: WattsPerKelvin(-1.0),
        mid: WattsPerKelvin(1.0),
        upper_contact: WattsPerKelvin(1.0),
    };
    assert!(matches!(
        bad_spec.validate(),
        Err(ThermalError::InvalidConfig(_))
    ));

    let good_spec = TwoPortSpec {
        lower_contact: WattsPerKelvin(1.0),
        mid: WattsPerKelvin(1.0),
        upper_contact: WattsPerKelvin(1.0),
    };

    // TileOutOfBounds: splicing a device outside the 4x4 grid.
    assert!(matches!(
        CompactModel::with_two_ports(&config, &[(TileIndex::new(9, 9), good_spec)]),
        Err(ThermalError::TileOutOfBounds {
            row: 9,
            col: 9,
            rows: 4,
            cols: 4
        })
    ));

    // DuplicateTwoPort: the same tile spliced twice.
    let t = TileIndex::new(1, 1);
    assert!(matches!(
        CompactModel::with_two_ports(&config, &[(t, good_spec), (t, good_spec)]),
        Err(ThermalError::DuplicateTwoPort { row: 1, col: 1 })
    ));

    // PowerLengthMismatch: 3 powers for a 16-tile die.
    let model = CompactModel::new(&config).unwrap();
    assert!(matches!(
        model.solve_passive(&[Watts(0.1); 3]),
        Err(ThermalError::PowerLengthMismatch {
            expected: 16,
            actual: 3
        })
    ));

    // Linalg: a wrong-length state vector surfaces the underlying kernel
    // error through the transient stepper.
    let stepper = BackwardEuler::new(model.g_matrix(), &model.capacitance_vector(), 1e-3).unwrap();
    let n = stepper.dim();
    assert!(matches!(
        stepper.step(&vec![300.0; n - 1], &vec![0.0; n]),
        Err(ThermalError::Linalg(LinalgError::DimensionMismatch { .. }))
    ));
}

// ---------------------------------------------------------------- device --

#[test]
fn every_device_error_variant_is_reachable() {
    let params = TecParams::superlattice_thin_film();
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();

    // InvalidParameter: a nonpositive physical constant (via the shared
    // validation layer).
    assert!(matches!(
        TecParams::new(
            tecopt_units::VoltsPerKelvin(-1e-4),
            params.resistance(),
            params.conductance(),
            params.cold_contact(),
            params.hot_contact(),
            params.side(),
        ),
        Err(DeviceError::InvalidParameter { .. })
    ));

    // EmptyArray: zero devices.
    assert!(matches!(
        TecArray::new(params.clone(), 0),
        Err(DeviceError::EmptyArray)
    ));

    // OperatingPointCount: 2 operating points for a 3-device chain.
    let array = TecArray::new(params.clone(), 3).unwrap();
    let op = OperatingPoint {
        current: Amperes(1.0),
        cold: Kelvin(350.0),
        hot: Kelvin(360.0),
    };
    assert!(matches!(
        array.input_power(&[op; 2]),
        Err(DeviceError::OperatingPointCount {
            expected: 3,
            actual: 2
        })
    ));

    // MixedCurrents: series devices must share one supply current.
    let mut ops = [op; 3];
    ops[1].current = Amperes(2.0);
    assert!(matches!(
        array.input_power(&ops),
        Err(DeviceError::MixedCurrents)
    ));

    // NegativeCurrent: the devices are polarized for cooling.
    let stamped = StampedSystem::new(&config, params.clone(), &[TileIndex::new(0, 0)]).unwrap();
    assert!(matches!(
        stamped.system_matrix(Amperes(-2.0)),
        Err(DeviceError::NegativeCurrent { value }) if value == -2.0
    ));

    // Thermal: a foreign tile propagates the thermal-layer fault.
    assert!(matches!(
        StampedSystem::new(&config, params, &[TileIndex::new(7, 0)]),
        Err(DeviceError::Thermal(ThermalError::TileOutOfBounds { .. }))
    ));
}

// ----------------------------------------------------------------- power --

#[test]
fn every_power_error_variant_is_reachable() {
    let mm = 1e-3;
    let half = Unit::new("half", Rect::new(0.0, 0.0, mm, mm));

    // UnitOutOfBounds: a unit leaving the die.
    let escape = Unit::new("escape", Rect::new(mm, 0.0, 3.0 * mm, mm));
    assert!(matches!(
        Floorplan::new("die", Meters(2.0 * mm), Meters(mm), vec![half.clone(), escape]),
        Err(PowerError::UnitOutOfBounds { unit }) if unit == "escape"
    ));

    // UnitsOverlap: two units on the same rectangle.
    let overlap = Unit::new("overlap", Rect::new(0.0, 0.0, mm, mm));
    assert!(matches!(
        Floorplan::new("die", Meters(mm), Meters(mm), vec![half.clone(), overlap]),
        Err(PowerError::UnitsOverlap { .. })
    ));

    // IncompleteCoverage: half the die left bare.
    assert!(matches!(
        Floorplan::new("die", Meters(2.0 * mm), Meters(mm), vec![half.clone()]),
        Err(PowerError::IncompleteCoverage { covered_fraction }) if covered_fraction < 0.75
    ));

    // DuplicateUnit: the same name twice.
    let twin = Unit::new("half", Rect::new(mm, 0.0, 2.0 * mm, mm));
    assert!(matches!(
        Floorplan::new("die", Meters(2.0 * mm), Meters(mm), vec![half.clone(), twin]),
        Err(PowerError::DuplicateUnit { unit }) if unit == "half"
    ));

    // A valid two-unit plan for the profile-level faults.
    let right = Unit::new("right", Rect::new(mm, 0.0, 2.0 * mm, mm));
    let plan = Floorplan::new("die", Meters(2.0 * mm), Meters(mm), vec![half, right]).unwrap();

    // UnknownUnit: lookup of a unit that does not exist.
    assert!(matches!(
        plan.unit("nonesuch"),
        Err(PowerError::UnknownUnit { unit }) if unit == "nonesuch"
    ));

    // InvalidPower: negative dissipation.
    assert!(matches!(
        PowerProfile::new(&plan, vec![Watts(1.0), Watts(-0.5)]),
        Err(PowerError::InvalidPower { value, .. }) if value == -0.5
    ));

    // ProfileMismatch: one power for two units.
    assert!(matches!(
        PowerProfile::new(&plan, vec![Watts(1.0)]),
        Err(PowerError::ProfileMismatch {
            expected: 2,
            actual: 1
        })
    ));

    // InvalidParameter: NaN in a HotSpot power trace, and an empty trace
    // export.
    let err = parse_ptrace(&plan, "half right\nnan 1.0\n").unwrap_err();
    assert!(matches!(err, PowerError::InvalidParameter(_)), "{err:?}");
    assert!(matches!(
        to_ptrace(&[]),
        Err(PowerError::InvalidParameter(_))
    ));
}

// ------------------------------------------------------------------ core --

fn small_system() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.4);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1)],
        powers,
    )
    .unwrap()
}

#[test]
fn every_opt_error_variant_is_reachable() {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let params = TecParams::superlattice_thin_film();

    // PowerLengthMismatch: 3 tile powers for a 16-tile grid.
    assert!(matches!(
        CoolingSystem::new(&config, params.clone(), &[], vec![Watts(0.1); 3]),
        Err(OptError::PowerLengthMismatch {
            expected: 16,
            actual: 3
        })
    ));

    // InvalidParameter: NaN-poisoned power vector rejected by the shared
    // validation layer at the construction boundary.
    let mut raw = vec![0.1; 16];
    fi::inject_nan_slice(&mut raw, 7);
    let poisoned: Vec<Watts> = raw.into_iter().map(Watts).collect();
    assert!(matches!(
        CoolingSystem::new(&config, params, &[], poisoned),
        Err(OptError::InvalidParameter(_))
    ));

    let system = small_system();

    // NoDevicesDeployed: the runaway limit of a passive package is infinite.
    let passive = system.with_tiles(&[]).unwrap();
    assert!(matches!(
        runaway_limit(&passive, 1e-9),
        Err(OptError::NoDevicesDeployed)
    ));

    // BeyondRunaway: far past λ_m the system matrix is indefinite.
    assert!(matches!(
        system.solve(Amperes(1e5)),
        Err(OptError::BeyondRunaway { current }) if current == 1e5
    ));

    // Device: a negative supply current surfaces the device-layer fault.
    assert!(matches!(
        system.solve(Amperes(-1.0)),
        Err(OptError::Device(DeviceError::NegativeCurrent { .. }))
    ));

    // Thermal: a wrong-length tile-power vector fed to the transient
    // simulator.
    let mut sim = tecopt::transient::TransientSimulator::new(system.clone(), 1e-3).unwrap();
    assert!(matches!(
        sim.step(&[Watts(0.1); 2], Amperes(1.0)),
        Err(OptError::Thermal(ThermalError::PowerLengthMismatch {
            expected: 16,
            actual: 2
        }))
    ));

    // Linalg: an invalid solver policy is rejected before any factorization.
    let bad_policy = SolverPolicy {
        max_residual: -1.0,
        ..SolverPolicy::default()
    };
    assert!(matches!(
        system.solve_with_policy(Amperes(1.0), &bad_policy),
        Err(OptError::Linalg(LinalgError::InvalidInput(_)))
    ));

    // BudgetExhausted: an adversarial tolerance below the bracket's
    // floating-point resolution exhausts the evaluation cap instead of
    // spinning forever.
    let settings = CurrentSettings {
        tolerance: 1e-18,
        max_evaluations: 40,
        ..CurrentSettings::default()
    };
    assert!(matches!(
        optimize_current(&system, settings),
        Err(OptError::BudgetExhausted { budget: 40, .. })
    ));

    // Infeasible: no deployment can reach a sub-ambient temperature limit;
    // the outcome-to-result conversion reports it as a typed error.
    let outcome = greedy_deploy(&system, DeploySettings::with_limit(Celsius(-100.0))).unwrap();
    assert!(matches!(
        outcome.into_result(),
        Err(OptError::Infeasible { best_peak_celsius }) if best_peak_celsius > -100.0
    ));
}

#[test]
fn runaway_sweep_rejects_nan_fractions_with_typed_error() {
    // Regression: a NaN fraction used to clear the finiteness guard's
    // negativity half (NaN < 0.0 is false) and then panic inside the
    // `sort_by(partial_cmp().expect())` call. It must surface as
    // InvalidParameter from the shared validation layer, like every other
    // poisoned input.
    let system = small_system();
    let mut fractions = vec![0.2, 0.5, 0.8];
    fi::inject_nan_slice(&mut fractions, 1);
    assert!(matches!(
        tecopt::runaway::sweep_fractions(&system, &fractions, 1e-9),
        Err(OptError::InvalidParameter(_))
    ));
    assert!(matches!(
        tecopt::runaway::sweep_fractions(&system, &[0.1, f64::INFINITY], 1e-9),
        Err(OptError::InvalidParameter(_))
    ));
}
