//! Equivalence of the PR-7 rank-k update path against fresh factorization,
//! across the whole stack: random placement sequences must produce the
//! same temperatures (to solver accuracy) whether each current is solved
//! through a Sherman–Morrison–Woodbury correction of the cached `i = 0`
//! Cholesky factor or through a from-scratch refactorization, the
//! degraded-condition fallback must engage near runaway, and a raised
//! cancellation token must stop a supervised fast deployment cleanly.

use proptest::prelude::*;
use tecopt::{
    greedy_deploy_supervised, runaway_limit, CoolingSystem, DeploySettings, FactorStrategy,
    OptError, PackageConfig, RunContext, TecParams, TileIndex,
};
use tecopt_units::{Amperes, Celsius, Watts};

fn system(tiles: &[TileIndex], powers: &[f64]) -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let powers: Vec<Watts> = powers.iter().copied().map(Watts).collect();
    CoolingSystem::new(&config, TecParams::superlattice_thin_film(), tiles, powers).unwrap()
}

fn power_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.02f64..0.6, 16)
}

/// A random sequence of growing placements, mirroring how greedy deploy
/// walks the placement lattice: each element is a set of covered tiles.
fn placement_sequence() -> impl Strategy<Value = Vec<Vec<TileIndex>>> {
    proptest::collection::vec(proptest::collection::btree_set(0usize..16, 1..6), 1..4).prop_map(
        |sets| {
            sets.into_iter()
                .map(|s| {
                    s.into_iter()
                        .map(|k| TileIndex::new(k / 4, k % 4))
                        .collect()
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any placement sequence and any feasible current, the rank-k
    /// update path and a fresh factorization agree on the peak to 1e-8 at
    /// matched currents.
    #[test]
    fn updated_and_fresh_peaks_agree(
        powers in power_vec(),
        placements in placement_sequence(),
        fractions in proptest::collection::vec(0.05f64..0.9, 2..5),
    ) {
        for tiles in &placements {
            let s = system(tiles, &powers);
            let lim = runaway_limit(&s, 1e-9).unwrap();
            let feasible = lim.feasible().value();
            let mut fast = s.solver().unwrap().with_strategy(FactorStrategy::RankKUpdate);
            for &f in &fractions {
                let i = Amperes(feasible * f);
                let updated = fast.solve(i).unwrap();
                let fresh = s.with_tiles(tiles).unwrap().solve(i).unwrap();
                let dp = (updated.peak().value() - fresh.peak().value()).abs();
                prop_assert!(
                    dp <= 1e-8,
                    "peak drift {dp} at i={i:?} on {tiles:?}"
                );
                for (a, b) in updated
                    .node_temperatures()
                    .iter()
                    .zip(fresh.node_temperatures())
                {
                    let d = (a.value() - b.value()).abs();
                    prop_assert!(d <= 1e-8 * b.value().abs().max(1.0));
                }
            }
            // After the first solve every further current reuses the i=0
            // base factor through an update (or a counted fallback).
            prop_assert!(
                fast.rank_k_updates() + fast.refactor_fallbacks() >= fractions.len() - 1,
                "updates {} + fallbacks {} vs {} solves",
                fast.rank_k_updates(),
                fast.refactor_fallbacks(),
                fractions.len(),
            );
        }
    }
}

#[test]
fn degraded_condition_falls_back_to_refactorization() {
    let powers = vec![0.08; 16];
    let tiles = [TileIndex::new(1, 1)];
    let s = system(&tiles, &powers);
    // At the feasible bracket edge of a near-machine-precision λ search the
    // system is catastrophically ill-conditioned: the update path must
    // detect it and refactor instead of returning a corrupted correction.
    let lim = runaway_limit(&s, 1e-13).unwrap();
    let mut fast = s
        .solver()
        .unwrap()
        .with_strategy(FactorStrategy::RankKUpdate);
    let warm = fast.solve(Amperes(lim.feasible().value() * 0.5)).unwrap();
    assert!(warm.peak().value().is_finite());
    let edge = fast.solve(lim.feasible()).unwrap();
    assert!(
        fast.refactor_fallbacks() >= 1,
        "the near-runaway solve must trip the condition fallback"
    );
    let fresh = s.solve(lim.feasible()).unwrap();
    assert_eq!(
        edge.peak().value(),
        fresh.peak().value(),
        "a fallback refactorization is bit-identical to the shared path"
    );
}

#[test]
fn cancellation_stops_a_supervised_fast_deployment() {
    let mut powers = vec![0.08; 16];
    powers[5] = 0.5;
    powers[10] = 0.45;
    let base = system(&[], &powers);
    let uncooled = base.solve(Amperes(0.0)).unwrap().peak();
    let settings = DeploySettings::with_limit(Celsius(uncooled.value() - 0.8))
        .with_strategy(FactorStrategy::RankKUpdate);
    let ctx = RunContext::unbounded();
    ctx.token().cancel();
    let failure = greedy_deploy_supervised(&base, settings, &ctx).unwrap_err();
    assert!(
        matches!(failure.error, OptError::Cancelled { .. }),
        "unexpected error {:?}",
        failure.error
    );
    assert!(failure.partial.is_none());
}
