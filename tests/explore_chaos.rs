//! Chaos suite for the crash-safe design-space explorer (DESIGN.md §18).
//!
//! The invariants under test:
//!
//! - a kill at **every** ledger-record boundary (probe budgets of one
//!   admission per cycle) resumes with **zero duplicated** and **zero
//!   lost** evaluations, and the final Pareto front is **bit-identical**
//!   to an uninterrupted single-threaded run;
//! - pathological candidates (panics, non-finite results, envelope trips)
//!   are retried under the budget and then blacklisted with typed
//!   [`QuarantineRecord`]s — surfacing the last greedy partial prefix —
//!   and never abort the sweep;
//! - the atomic-persist protocol holds at every fixed writer site
//!   (sweep checkpoints, transient checkpoints, the explore ledger):
//!   a full "disk" under the temp sibling is a typed error with the
//!   final path untouched, and a torn tail costs exactly one re-run;
//! - a fleet shard killed mid-exploration hands its ledger to a failover
//!   successor, which resumes under the same key and answers
//!   bit-identically.
//!
//! The 10k-candidate soak is `#[ignore]`d; the explorer chaos pass in
//! `scripts/check.sh` runs this suite with `--test-threads=1
//! --include-ignored`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tecopt::supervise::fingerprint;
use tecopt::transient::{ConstantCurrent, TransientSimulator};
use tecopt::{
    runaway_limit, score_candidates, CancelToken, CoolingSystem, CurrentSettings, OptError,
    PackageConfig, RunContext, TecParams, TileIndex,
};
use tecopt_explore::{
    Candidate, CandidateEval, CandidateFailure, DesignSpace, ExploreReport, ExploreSettings,
    Explorer, Ledger, ParetoPoint, PartialPrefix, Placement, QuarantineReason,
};
use tecopt_faultinject::{tear_tail, DiskFull, ShardKill, SlowEvaluator};
use tecopt_serve::{
    Engine, EngineConfig, HealthPolicy, LocalShard, Request, RequestFrame, Response, Router,
    RouterConfig, ShardHandle, TecEvaluator,
};
use tecopt_units::{Amperes, Celsius, Watts};

fn small_system() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
    .unwrap()
}

/// A fresh path in a per-process scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tecopt-explore-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn front_bits(front: &[ParetoPoint]) -> Vec<[u64; 4]> {
    front
        .iter()
        .map(|p| {
            [
                p.id(),
                p.current().value().to_bits(),
                p.peak().value().to_bits(),
                p.tec_power().value().to_bits(),
            ]
        })
        .collect()
}

/// `(evaluated, pruned, feasible, quarantined)` — the ledger totals that
/// must be identical however the run was stitched together.
fn counts_of(report: &ExploreReport) -> (usize, usize, usize, usize) {
    (
        report.evaluated,
        report.pruned,
        report.feasible,
        report.quarantined.len(),
    )
}

fn assert_interrupt(err: &OptError) {
    assert!(
        matches!(
            err,
            OptError::Cancelled { .. }
                | OptError::DeadlineExceeded { .. }
                | OptError::BudgetExhausted { .. }
        ),
        "kill cycle must surface as a typed interruption, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Kill at every ledger boundary: real physics
// ---------------------------------------------------------------------------

fn physics_space() -> DesignSpace {
    DesignSpace::new(
        vec![0.9, 1.0],
        vec![0.9, 1.1],
        vec![
            Placement::Tiles(vec![TileIndex::new(1, 1), TileIndex::new(2, 2)]),
            Placement::Greedy,
        ],
        Celsius(70.0),
    )
    .unwrap()
}

#[test]
fn a_kill_at_every_ledger_boundary_resumes_with_no_duplicates_and_an_identical_front() {
    let system = small_system();
    let explorer = Explorer::new(&system, physics_space(), ExploreSettings::default());
    let reference = explorer.explore(&RunContext::unbounded()).unwrap();
    assert!(reference.quarantined.is_empty(), "physics run is clean");
    assert_eq!(reference.evaluated + reference.pruned, 8);

    // One admission per cycle: every cycle settles exactly one candidate
    // and is killed at the next ledger boundary, until the final cycle
    // finds nothing left to do.
    let path = scratch("boundary.ledger");
    let _ = std::fs::remove_file(&path);
    let mut cycles = 0usize;
    let report = loop {
        cycles += 1;
        assert!(cycles <= 32, "resume never converged");
        let ctx = RunContext::unbounded().probe_budget(1).checkpoint(&path);
        match explorer.explore(&ctx) {
            Ok(report) => break report,
            Err(e) => assert_interrupt(&e),
        }
    };
    assert!(
        cycles >= 8,
        "one admission per cycle cannot settle 8 units in {cycles} cycles"
    );
    assert!(report.resumed, "the final cycle recovered prior work");

    // Bit-identical front and identical ledger totals.
    assert_eq!(front_bits(&report.front), front_bits(&reference.front));
    assert_eq!(counts_of(&report), counts_of(&reference));

    // Zero duplicated evaluations: the durable trail shows exactly one
    // claim (at attempt 1) and one settlement per evaluated candidate.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut claims: HashMap<&str, usize> = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("claim ") {
            *claims.entry(rest).or_insert(0) += 1;
        }
    }
    assert_eq!(
        claims.len(),
        reference.evaluated,
        "one claim per evaluation"
    );
    for (claim, n) in claims {
        assert_eq!(n, 1, "claim `{claim}` duplicated");
        assert!(
            claim.ends_with(" 1"),
            "claim `{claim}` retried a clean eval"
        );
    }

    // A fully recovered run replays everything from the ledger: zero new
    // admissions, the same bits out.
    let ctx = RunContext::unbounded().probe_budget(0).checkpoint(&path);
    let replay = explorer.explore(&ctx).unwrap();
    assert_eq!(front_bits(&replay.front), front_bits(&reference.front));
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Quarantine under kill cycles: typed records, surfaced partials
// ---------------------------------------------------------------------------

/// Five single-tile placements — five candidates with deterministic ids.
fn synthetic_space(n: usize, theta: Celsius) -> DesignSpace {
    DesignSpace::new(
        vec![1.0],
        vec![1.0],
        (0..n)
            .map(|c| Placement::Tiles(vec![TileIndex::new(0, c)]))
            .collect(),
        theta,
    )
    .unwrap()
}

/// A well-formed finite evaluation derived from the candidate id alone.
fn clean_eval(cand: &Candidate) -> CandidateEval {
    let frac = |shift: u32| ((cand.id >> shift) & 0xffff) as f64 / 65536.0;
    let peak = 60.0 + 30.0 * frac(5);
    CandidateEval {
        feasible: peak <= 85.0,
        devices: 1 + (cand.id % 7) as usize,
        current: Amperes(0.5 + frac(13)),
        peak: Celsius(peak),
        tec_power: Watts(0.2 + 3.0 * frac(29)),
        evaluations: 10 + (cand.id % 50) as usize,
    }
}

type CallCounts = Arc<Mutex<HashMap<u64, u32>>>;

/// The hostile evaluator of the quarantine tests: index 0 succeeds, 1
/// trips the envelope (with a greedy partial on the first attempt only),
/// 2 panics, 3 returns a non-finite peak, 4 is typed-infeasible
/// (non-retryable).
fn hostile_eval(
    counts: &CallCounts,
) -> impl Fn(&Candidate) -> Result<CandidateEval, CandidateFailure> + Sync + '_ {
    move |cand: &Candidate| {
        let attempt = {
            let mut map = counts.lock().unwrap();
            let slot = map.entry(cand.id).or_insert(0);
            *slot += 1;
            *slot
        };
        match cand.index {
            1 => Err(CandidateFailure {
                error: OptError::BeyondRunaway { current: 9.0 },
                // The partial prefix shows up on the first attempt only;
                // the final quarantine record must surface it anyway.
                partial: (attempt == 1).then_some(PartialPrefix {
                    devices: 3,
                    peak: Celsius(91.25),
                }),
            }),
            2 => panic!("injected candidate panic"),
            3 => Ok(CandidateEval {
                peak: Celsius(f64::NAN),
                ..clean_eval(cand)
            }),
            4 => Err(CandidateFailure {
                error: OptError::Infeasible {
                    best_peak_celsius: 88.0,
                },
                partial: Some(PartialPrefix {
                    devices: 5,
                    peak: Celsius(88.0),
                }),
            }),
            _ => Ok(clean_eval(cand)),
        }
    }
}

#[test]
fn pathological_candidates_quarantine_with_typed_records_across_kill_cycles() {
    let system = small_system();
    let explorer = Explorer::new(
        &system,
        synthetic_space(5, Celsius(85.0)),
        ExploreSettings::default(),
    );

    // Uninterrupted in-memory reference.
    let ref_counts: CallCounts = Arc::default();
    let reference = explorer
        .explore_with(&RunContext::unbounded(), hostile_eval(&ref_counts), |_| {
            false
        })
        .unwrap();

    // Killed at every admission boundary, resuming through the ledger.
    let counts: CallCounts = Arc::default();
    let path = scratch("quarantine.ledger");
    let _ = std::fs::remove_file(&path);
    let mut cycles = 0usize;
    let report = loop {
        cycles += 1;
        assert!(cycles <= 64, "resume never converged");
        let ctx = RunContext::unbounded().probe_budget(1).checkpoint(&path);
        match explorer.explore_with(&ctx, hostile_eval(&counts), |_| false) {
            Ok(report) => break report,
            Err(e) => assert_interrupt(&e),
        }
    };

    // The sweep never aborted: every candidate settled, one way or the
    // other, and the totals match the uninterrupted run exactly.
    assert_eq!(counts_of(&report), counts_of(&reference));
    assert_eq!(report.evaluated, 1);
    assert_eq!(report.quarantined.len(), 4);
    assert_eq!(front_bits(&report.front), front_bits(&reference.front));

    // Typed quarantine records, ordered by id; find them back by index.
    let candidates = explorer.space().candidates();
    let quarantined = |from: &ExploreReport, i: usize| {
        let id = candidates[i].id;
        from.quarantined
            .iter()
            .find(|q| q.id == id)
            .cloned()
            .unwrap_or_else(|| panic!("candidate {i} not quarantined"))
    };
    for from in [&reference, &report] {
        let envelope = quarantined(from, 1);
        assert_eq!(envelope.reason, QuarantineReason::Envelope);
        assert_eq!(envelope.attempts, 2, "retried under the budget");
        assert_eq!(quarantined(from, 2).reason, QuarantineReason::Panicked);
        assert_eq!(quarantined(from, 2).attempts, 2);
        assert_eq!(quarantined(from, 3).reason, QuarantineReason::NonFinite);
        assert_eq!(quarantined(from, 3).attempts, 2);
        let infeasible = quarantined(from, 4);
        assert_eq!(infeasible.reason, QuarantineReason::Solver);
        assert_eq!(infeasible.attempts, 1, "typed infeasibility never retries");
        // Satellite: a non-retryable failure quarantines in one shot and
        // its greedy partial prefix lands in the durable record — in the
        // uninterrupted run AND across every kill cycle.
        assert_eq!(
            infeasible.partial,
            Some(PartialPrefix {
                devices: 5,
                peak: Celsius(88.0)
            })
        );
    }
    // Satellite: the greedy partial prefix from the *first* attempt is
    // surfaced in the record, not dropped when the retry returns none.
    // (The stash is per-process — an in-flight partial is diagnostic and
    // does not survive a crash between attempts, so this is asserted on
    // the uninterrupted run only.)
    assert_eq!(
        quarantined(&reference, 1).partial,
        Some(PartialPrefix {
            devices: 3,
            peak: Celsius(91.25)
        })
    );

    // Zero duplicated evaluations across every kill cycle: each candidate
    // was called exactly as many times as its settled attempt count —
    // identical to the uninterrupted run.
    assert_eq!(
        *counts.lock().unwrap(),
        *ref_counts.lock().unwrap(),
        "kill/resume changed the number of evaluation attempts"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_candidate_that_kills_every_attempt_is_quarantined_at_resume_not_relooped() {
    let system = small_system();
    let explorer = Explorer::new(
        &system,
        synthetic_space(4, Celsius(85.0)),
        ExploreSettings::default(),
    );
    let candidates = explorer.space().candidates();
    let killer = candidates[2].id;
    let grazed = candidates[0].id;

    // Simulate the failure shape panic isolation cannot contain — an
    // attempt that aborts/OOMs the whole process: claims go into the
    // ledger, the process dies, no terminal record ever lands. Two such
    // cycles spend the full default retry budget on `killer`; `grazed`
    // was in flight during one kill only.
    let path = scratch("hardcrash.ledger");
    let _ = std::fs::remove_file(&path);
    let fp = explorer.fingerprint();
    {
        let (ledger, _) = Ledger::open(&path, fp, candidates.len()).unwrap();
        ledger.claim(killer, 1).unwrap();
        ledger.claim(grazed, 1).unwrap();
    }
    {
        let (ledger, state) = Ledger::open(&path, fp, candidates.len()).unwrap();
        assert_eq!(state.claims.get(&killer), Some(&1));
        ledger.claim(killer, 2).unwrap();
    }

    // The next resume quarantines the budget-spent candidate at admission
    // — it is never evaluated again — while the singly-grazed one re-runs
    // normally and the sweep completes.
    let counts: CallCounts = Arc::default();
    let report = explorer
        .explore_with(
            &RunContext::unbounded().checkpoint(&path),
            |cand: &Candidate| -> Result<CandidateEval, CandidateFailure> {
                *counts.lock().unwrap().entry(cand.id).or_insert(0) += 1;
                Ok(clean_eval(cand))
            },
            |_| false,
        )
        .unwrap();
    assert_eq!(report.evaluated, 3);
    assert_eq!(report.quarantined.len(), 1);
    let quar = &report.quarantined[0];
    assert_eq!(quar.id, killer);
    assert_eq!(quar.reason, QuarantineReason::Panicked);
    assert_eq!(quar.attempts, 2, "the recorded claim trail is the count");
    assert!(
        quar.message.contains("killed in flight"),
        "got `{}`",
        quar.message
    );
    {
        let got = counts.lock().unwrap();
        assert_eq!(got.get(&killer), None, "budget-spent candidate re-admitted");
        assert_eq!(got.get(&grazed), Some(&1), "grazed candidate must re-run");
    }

    // The quarantine record is durable: a zero-admission replay settles
    // everything from the ledger and reports the same totals.
    let replay = explorer
        .explore_with(
            &RunContext::unbounded().probe_budget(0).checkpoint(&path),
            |_: &Candidate| -> Result<CandidateEval, CandidateFailure> {
                panic!("a fully settled ledger admits no evaluations")
            },
            |_| false,
        )
        .unwrap();
    assert_eq!(counts_of(&replay), counts_of(&report));
    assert_eq!(replay.quarantined, report.quarantined);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_torn_ledger_tail_costs_exactly_one_rerun_and_the_same_front() {
    let system = small_system();
    let explorer = Explorer::new(
        &system,
        synthetic_space(6, Celsius(85.0)),
        ExploreSettings::default(),
    );
    let ref_counts: CallCounts = Arc::default();
    let reference = explorer
        .explore_with(&RunContext::unbounded(), hostile_eval(&ref_counts), |_| {
            false
        })
        .unwrap();

    let counts: CallCounts = Arc::default();
    let path = scratch("torn.ledger");
    let _ = std::fs::remove_file(&path);
    // Settle one clean candidate (index 0), then die.
    let ctx = RunContext::unbounded().probe_budget(1).checkpoint(&path);
    let err = explorer
        .explore_with(&ctx, hostile_eval(&counts), |_| false)
        .unwrap_err();
    assert_interrupt(&err);

    // A kill mid-append: the last settlement line loses its tail. The
    // loader must skip the torn record and re-run only that candidate.
    let len = std::fs::metadata(&path).unwrap().len();
    tear_tail(&path, len - 9).unwrap();

    let report = explorer
        .explore_with(
            &RunContext::unbounded().checkpoint(&path),
            hostile_eval(&counts),
            |_| false,
        )
        .unwrap();
    assert_eq!(front_bits(&report.front), front_bits(&reference.front));
    assert_eq!(counts_of(&report), counts_of(&reference));

    // Exactly one extra call for the torn candidate, none anywhere else.
    let torn_id = explorer.space().candidates()[0].id;
    let got = counts.lock().unwrap().clone();
    let want = ref_counts.lock().unwrap().clone();
    for (id, n) in &got {
        let expected = want[id] + u32::from(*id == torn_id);
        assert_eq!(*n, expected, "candidate {id:016x} call count drifted");
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Atomic persist: DiskFull and torn tails at every fixed writer site
// ---------------------------------------------------------------------------

#[test]
fn a_full_disk_under_the_temp_sibling_is_typed_and_leaves_every_final_path_untouched() {
    let system = small_system();
    let candidates: Vec<Vec<TileIndex>> = (0..3)
        .map(|r| vec![TileIndex::new(r, 1), TileIndex::new(r, 2)])
        .collect();

    // Site 1: the supervised-sweep checkpoint header (supervise.rs).
    let path = scratch("diskfull-sweep.ckpt");
    let _ = std::fs::remove_file(&path);
    let block = DiskFull::at(&path).unwrap();
    let failure = score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded().checkpoint(&path),
    )
    .unwrap_err();
    assert!(
        matches!(&failure.error, OptError::InvalidParameter(m) if m.contains("checkpoint io")),
        "want a typed checkpoint-io error, got {:?}",
        failure.error
    );
    assert!(
        !path.exists(),
        "the final checkpoint path must be untouched"
    );
    block.release().unwrap();
    score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded().checkpoint(&path),
    )
    .expect("the freed disk serves the same request");
    let _ = std::fs::remove_file(&path);

    // Site 2: the transient playback checkpoint header (transient.rs).
    let path = scratch("diskfull-transient.ckpt");
    let _ = std::fs::remove_file(&path);
    let lambda = runaway_limit(&system, 1e-9).unwrap().lambda();
    let safe = Amperes(lambda.value() * 0.4);
    let schedule = vec![(2.0, system.tile_powers().to_vec())];
    let fp = fingerprint("explore-chaos transient diskfull");
    let block = DiskFull::at(&path).unwrap();
    let failure = TransientSimulator::new(system.clone(), 0.5)
        .unwrap()
        .run_schedule_checkpointed(
            &schedule,
            &mut ConstantCurrent(safe),
            fp,
            &RunContext::unbounded().checkpoint(&path),
        )
        .unwrap_err();
    assert!(
        matches!(failure.error, OptError::InvalidParameter(_)),
        "want a typed checkpoint-io error, got {:?}",
        failure.error
    );
    assert!(
        !path.exists(),
        "the final checkpoint path must be untouched"
    );
    block.release().unwrap();
    TransientSimulator::new(system.clone(), 0.5)
        .unwrap()
        .run_schedule_checkpointed(
            &schedule,
            &mut ConstantCurrent(safe),
            fp,
            &RunContext::unbounded().checkpoint(&path),
        )
        .expect("the freed disk serves the same request");
    let _ = std::fs::remove_file(&path);

    // Site 3: the explore ledger header (ledger.rs).
    let path = scratch("diskfull-explore.ledger");
    let _ = std::fs::remove_file(&path);
    let block = DiskFull::at(&path).unwrap();
    let err = Ledger::open(&path, 0xfeed, 4).unwrap_err();
    assert!(
        matches!(&err, OptError::InvalidParameter(m) if m.contains("ledger io")),
        "want a typed ledger-io error, got {err:?}"
    );
    assert!(!path.exists(), "the final ledger path must be untouched");
    block.release().unwrap();
    let (_, state) = Ledger::open(&path, 0xfeed, 4).unwrap();
    assert_eq!(state.settled_count(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_torn_sweep_checkpoint_tail_resumes_bit_identically() {
    let system = small_system();
    let candidates: Vec<Vec<TileIndex>> = (0..4)
        .map(|r| vec![TileIndex::new(r, 1), TileIndex::new(r, 2)])
        .collect();
    let reference = score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded(),
    )
    .unwrap();

    let path = scratch("torn-sweep.ckpt");
    let _ = std::fs::remove_file(&path);
    let failure = score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded().probe_budget(2).checkpoint(&path),
    )
    .unwrap_err();
    assert!(matches!(
        failure.error,
        OptError::DeadlineExceeded {
            completed: 2,
            remaining: 2
        }
    ));

    // Tear the second item record mid-line and resume.
    let len = std::fs::metadata(&path).unwrap().len();
    tear_tail(&path, len - 11).unwrap();
    let resumed = score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded().checkpoint(&path),
    )
    .unwrap();
    assert_eq!(resumed.len(), reference.len());
    for (got, want) in resumed.iter().zip(&reference) {
        assert_eq!(got.device_count, want.device_count);
        assert_eq!(
            got.current.value().to_bits(),
            want.current.value().to_bits()
        );
        assert_eq!(got.peak.value().to_bits(), want.peak.value().to_bits());
        assert_eq!(
            got.tec_power.value().to_bits(),
            want.tec_power.value().to_bits()
        );
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Fleet handoff: a shard dies mid-exploration, its successor resumes
// ---------------------------------------------------------------------------

fn quick_config() -> RouterConfig {
    RouterConfig {
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        health: HealthPolicy {
            ping_interval: Duration::from_millis(10),
            ping_timeout: Duration::from_millis(50),
            down_after: 3,
            up_after: 2,
        },
        ..RouterConfig::default()
    }
}

#[test]
fn an_exploration_killed_mid_flight_resumes_bit_identically_on_its_successor() {
    let system = small_system();
    let theta = Celsius(70.0);
    let thickness = vec![0.85, 1.0, 1.15];
    let contact = vec![0.9, 1.1];
    let placements = vec![
        Placement::Tiles(vec![TileIndex::new(1, 1), TileIndex::new(2, 2)]),
        Placement::Greedy,
    ];
    let space = DesignSpace::new(
        thickness.clone(),
        contact.clone(),
        placements.clone(),
        theta,
    )
    .unwrap();
    let reference = Explorer::new(&system, space, ExploreSettings::default())
        .explore(&RunContext::unbounded())
        .unwrap();

    // Two shards over ONE checkpoint directory (shared storage hand-off).
    let ckpt = scratch("explore-handoff-dir");
    std::fs::create_dir_all(&ckpt).unwrap();
    let build_engine = |delay: Duration| {
        Arc::new(Engine::new(
            SlowEvaluator::new(
                TecEvaluator::new(system.clone(), CurrentSettings::default()),
                delay,
            ),
            EngineConfig {
                checkpoint_dir: Some(ckpt.clone()),
                ..EngineConfig::default()
            },
        ))
    };
    let doomed = build_engine(Duration::from_millis(150));
    let successor = build_engine(Duration::ZERO);
    let mut workers = Vec::new();
    for engine in [&doomed, &successor] {
        let e = Arc::clone(engine);
        workers.push(std::thread::spawn(move || e.worker_loop(0)));
    }
    let kill_a = Arc::new(ShardKill::wrap(Arc::new(LocalShard::new(
        "doomed",
        Arc::clone(&doomed),
    ))));
    let shard_b: Arc<dyn ShardHandle> =
        Arc::new(LocalShard::new("successor", Arc::clone(&successor)));
    let router = Arc::new(Router::new(
        vec![Arc::clone(&kill_a) as Arc<dyn ShardHandle>, shard_b],
        quick_config(),
    ));
    let key = (0..4096)
        .map(|i| format!("explore-{i}"))
        .find(|k| router.shards()[router.replica_order(k)[0]].id() == "doomed")
        .expect("some key lands on the doomed shard");

    let frame = RequestFrame {
        key: Some(key.clone()),
        deadline_ms: None,
        request: Request::Explore {
            theta_limit: theta,
            thickness_scales: thickness,
            contact_scales: contact,
            placements,
        },
    };
    let submit_router = Arc::clone(&router);
    let call = std::thread::spawn(move || submit_router.submit(frame, &CancelToken::new()));
    // Let the exploration start on the doomed shard, then kill it: the
    // cancelled sweep leaves its settled candidates in the shared ledger
    // and the router fails over under the SAME key.
    std::thread::sleep(Duration::from_millis(200));
    kill_a.kill();
    doomed.begin_drain();
    doomed.cancel_outstanding();

    let resumed = call.join().unwrap().expect("failover completes the sweep");
    match resumed {
        Response::Explore {
            evaluated,
            pruned,
            feasible,
            quarantined,
            front_total,
            front,
        } => {
            assert_eq!(
                (evaluated, pruned, feasible, quarantined),
                counts_of(&reference),
                "ledger totals must match the uninterrupted run"
            );
            assert_eq!(front_total, reference.front.len(), "nothing truncated");
            assert_eq!(front_bits(&front), front_bits(&reference.front));
        }
        other => panic!("expected an explore report, got {other:?}"),
    }

    successor.begin_drain();
    successor.cancel_outstanding();
    for w in workers {
        w.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Soak: 10k candidates, kills every few hundred admissions
// ---------------------------------------------------------------------------

#[test]
#[ignore = "10k-candidate kill/resume soak; run via scripts/check.sh explore chaos pass"]
fn soak_10k_candidates_with_kills_prunes_and_quarantines_bit_identically() {
    const TOTAL: usize = 10_000;
    let system = small_system();
    let space = DesignSpace::new(
        (0..100).map(|i| 0.5 + i as f64 * 0.015).collect(),
        (0..25).map(|i| 0.8 + i as f64 * 0.02).collect(),
        (0..4)
            .map(|c| Placement::Tiles(vec![TileIndex::new(0, c)]))
            .collect(),
        Celsius(85.0),
    )
    .unwrap();
    assert_eq!(space.len(), TOTAL);
    let explorer = Explorer::new(&system, space, ExploreSettings::default());

    // Pure-by-candidate synthetic physics: a deterministic result for
    // most, a panic or a NaN for a sparse scatter, and an analytical
    // prune for every 13th index.
    let synthetic = |counts: &CallCounts| {
        let counts = Arc::clone(counts);
        move |cand: &Candidate| -> Result<CandidateEval, CandidateFailure> {
            *counts.lock().unwrap().entry(cand.id).or_insert(0) += 1;
            if cand.index % 997 == 3 {
                panic!("soak panic at index {}", cand.index);
            }
            if cand.index % 991 == 5 {
                return Ok(CandidateEval {
                    peak: Celsius(f64::NAN),
                    ..clean_eval(cand)
                });
            }
            Ok(clean_eval(cand))
        }
    };
    let prune = |cand: &Candidate| cand.index.is_multiple_of(13);

    let ref_counts: CallCounts = Arc::default();
    let reference = explorer
        .explore_with(&RunContext::unbounded(), synthetic(&ref_counts), prune)
        .unwrap();
    assert_eq!(
        reference.evaluated + reference.pruned + reference.quarantined.len(),
        TOTAL,
        "every candidate settles exactly once"
    );
    assert!(!reference.front.is_empty());
    assert!(!reference.quarantined.is_empty());

    // Kill every 617 admissions until the sweep completes.
    let counts: CallCounts = Arc::default();
    let path = scratch("soak.ledger");
    let _ = std::fs::remove_file(&path);
    let mut cycles = 0usize;
    let report = loop {
        cycles += 1;
        assert!(cycles <= 64, "resume never converged");
        let ctx = RunContext::unbounded().probe_budget(617).checkpoint(&path);
        match explorer.explore_with(&ctx, synthetic(&counts), prune) {
            Ok(report) => break report,
            Err(e) => assert_interrupt(&e),
        }
    };
    assert!(cycles > 10, "the kills actually landed ({cycles} cycles)");
    assert!(report.resumed);

    // Bit-identical Pareto front, identical ledger totals, and typed
    // quarantine records identical to the uninterrupted run.
    assert_eq!(front_bits(&report.front), front_bits(&reference.front));
    assert_eq!(counts_of(&report), counts_of(&reference));
    assert_eq!(report.quarantined, reference.quarantined);
    for q in &report.quarantined {
        assert!(
            q.reason == QuarantineReason::Panicked || q.reason == QuarantineReason::NonFinite,
            "unexpected quarantine class: {q:?}"
        );
        assert_eq!(
            q.attempts, 2,
            "retried under the budget before blacklisting"
        );
    }

    // ZERO duplicated evaluations fleet-wide: the per-candidate call
    // counts match the uninterrupted run exactly.
    assert_eq!(*counts.lock().unwrap(), *ref_counts.lock().unwrap());

    // A final fully-recovered pass replays the ledger without a single
    // new evaluation.
    let replay = explorer
        .explore_with(
            &RunContext::unbounded().probe_budget(0).checkpoint(&path),
            synthetic(&counts),
            prune,
        )
        .unwrap();
    assert_eq!(front_bits(&replay.front), front_bits(&reference.front));
    assert_eq!(*counts.lock().unwrap(), *ref_counts.lock().unwrap());
    let _ = std::fs::remove_file(&path);
}
