//! Chaos suite for the safety-enveloped transient runtime: hostile and
//! panicking controllers, mid-trace power spikes, NaN-poisoned samples,
//! cancellation, deadlines, and kill/resume at every timestep boundary.
//!
//! The load-bearing invariant, checked by the solve-site guard counters:
//! **no implicit solve is ever issued at a current at or beyond the
//! runaway limit λ_m**, no matter what the controller or the workload
//! does. Every failure is a typed [`OptError`] carrying the partial trace
//! recorded before the fault.
//!
//! The kill-at-every-step playback test is `#[ignore]`d so ordinary test
//! passes stay fast — the dedicated chaos pass in `scripts/check.sh` runs
//! this suite with `--test-threads=1 --include-ignored`.

use std::path::PathBuf;

use tecopt::supervise::fingerprint;
use tecopt::transient::{
    ConstantCurrent, ControllerSpec, TecController, TransientSimulator, TransientTrace,
};
use tecopt::{
    runaway_limit, CoolingSystem, CurrentSettings, EnvelopeSettings, EnvelopedController, OptError,
    PackageConfig, RunContext, SafetyEnvelope, TecParams, TileIndex,
};
use tecopt_faultinject::{MidRequestPanic, NanSample, SpikeTrace};
use tecopt_serve::{
    Engine, EngineConfig, Request, RequestFrame, Response, ServeError, TecEvaluator,
};
use tecopt_units::{Amperes, Celsius, Watts};

const DT: f64 = 0.5;

fn small_system() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
    .unwrap()
}

fn lambda(system: &CoolingSystem) -> Amperes {
    runaway_limit(system, 1e-9).unwrap().lambda()
}

/// A 25-step piecewise-constant workload: calm, hot burst, calm.
fn schedule() -> Vec<(f64, Vec<Watts>)> {
    let mut low = vec![Watts(0.05); 16];
    low[5] = Watts(0.7);
    let mut high = low.clone();
    for p in &mut high {
        *p = Watts(p.value() + 0.4);
    }
    vec![(5.0, low.clone()), (2.5, high), (5.0, low)]
}

fn total_steps(sched: &[(f64, Vec<Watts>)]) -> usize {
    sched.iter().map(|(d, _)| (d / DT).ceil() as usize).sum()
}

/// A fresh path in a per-process scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tecopt-transient-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_bits(trace: &TransientTrace) -> Vec<[u64; 4]> {
    trace
        .samples()
        .iter()
        .map(|s| {
            [
                s.time.to_bits(),
                s.peak.value().to_bits(),
                s.current.value().to_bits(),
                s.tec_power.value().to_bits(),
            ]
        })
        .collect()
}

/// A controller that cycles through every class of unsafe command:
/// absurdly large, negative, NaN, infinite.
struct Hostile {
    calls: usize,
}

impl TecController for Hostile {
    fn next_current(&mut self, _peak: Celsius) -> Amperes {
        self.calls += 1;
        match self.calls % 4 {
            0 => Amperes(f64::NAN),
            1 => Amperes(1e6),
            2 => Amperes(-3.0),
            _ => Amperes(f64::INFINITY),
        }
    }
}

/// A controller that panics on its `n`-th decision (1-based).
struct PanicAt {
    n: usize,
    calls: usize,
    current: Amperes,
}

impl TecController for PanicAt {
    fn next_current(&mut self, _peak: Celsius) -> Amperes {
        self.calls += 1;
        assert!(self.calls != self.n, "injected controller panic");
        self.current
    }
}

// ---------------------------------------------------------------------------
// The solve-site invariant: no solve at or beyond λ_m
// ---------------------------------------------------------------------------

#[test]
fn enveloped_hostile_controller_never_reaches_the_guard() {
    let system = small_system();
    let lm = lambda(&system);
    let mut ctl = EnvelopedController::new(
        Hostile { calls: 0 },
        SafetyEnvelope::new(lm, EnvelopeSettings::default()).unwrap(),
    );
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let sched = schedule();
    let trace = sim
        .run_schedule_supervised(&sched, &mut ctl, &RunContext::unbounded())
        .unwrap();

    let stats = sim.guard_stats().unwrap();
    assert_eq!(
        stats.refused, 0,
        "the envelope must stop every unsafe command"
    );
    assert_eq!(stats.solves_issued as usize, total_steps(&sched));
    assert_eq!(trace.samples().len(), total_steps(&sched));
    // Every command was a violation; the envelope latched and tripped.
    assert_eq!(ctl.envelope().violations_total(), total_steps(&sched));
    assert!(ctl.envelope().is_tripped());
    for s in trace.samples() {
        assert!(
            s.current.value() < lm.value(),
            "solved at {:?} >= λ_m",
            s.current
        );
        assert!(s.current.value() >= 0.0);
    }
}

#[test]
fn unguarded_hostile_command_is_refused_at_the_solve_site() {
    // Defense in depth: with the envelope removed, the guard itself
    // refuses the very first unsafe command before any solve is issued.
    let system = small_system();
    let lm = lambda(&system);
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let failure = sim
        .run_schedule_supervised(
            &schedule(),
            &mut Hostile { calls: 0 },
            &RunContext::unbounded(),
        )
        .unwrap_err();
    assert!(
        matches!(failure.error, OptError::BeyondRunaway { current } if current == 1e6),
        "got {:?}",
        failure.error
    );
    assert!(failure.partial.samples().is_empty());
    let stats = sim.guard_stats().unwrap();
    assert_eq!((stats.solves_issued, stats.refused), (0, 1));
}

#[test]
fn mid_trace_power_spike_cannot_push_a_solve_past_lambda() {
    let system = small_system();
    let lm = lambda(&system);
    // An aggressive proportional policy that would love to overdrive the
    // array once the spike hits, enveloped.
    let spec = ControllerSpec::Proportional {
        target: Celsius(40.0),
        gain: 50.0,
        max_current: Amperes(1e9),
    };
    let mut ctl = EnvelopedController::new(
        spec.build().unwrap(),
        SafetyEnvelope::new(lm, EnvelopeSettings::default()).unwrap(),
    );
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let mut sched = schedule();
    SpikeTrace {
        after_segment: 0,
        duration: 2.0,
        extra: Watts(5.0),
    }
    .apply(&mut sched);
    let trace = sim
        .run_schedule_supervised(&sched, &mut ctl, &RunContext::unbounded())
        .unwrap();
    let stats = sim.guard_stats().unwrap();
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.solves_issued as usize, trace.samples().len());
    assert_eq!(trace.samples().len(), total_steps(&sched));
    for s in trace.samples() {
        assert!(s.current.value() < lm.value());
    }
}

// ---------------------------------------------------------------------------
// Typed failures with partial traces
// ---------------------------------------------------------------------------

#[test]
fn nan_poisoned_sample_is_refused_before_the_solver_with_partial_trace() {
    let system = small_system();
    let lm = lambda(&system);
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let mut sched = schedule();
    NanSample {
        segment: 1,
        tile: 7,
    }
    .apply(&mut sched);
    let seg0_steps = (sched[0].0 / DT).ceil() as usize;
    let failure = sim
        .run_schedule_supervised(
            &sched,
            &mut ConstantCurrent(Amperes(lm.value() * 0.4)),
            &RunContext::unbounded(),
        )
        .unwrap_err();
    assert_eq!(
        failure.error,
        OptError::NonFinitePower {
            step: seg0_steps,
            tile: 7
        }
    );
    // The whole calm prefix survived; the poisoned segment never solved.
    assert_eq!(failure.partial.samples().len(), seg0_steps);
    let stats = sim.guard_stats().unwrap();
    assert_eq!(stats.solves_issued as usize, seg0_steps);
}

#[test]
fn controller_panic_is_caught_at_its_step_and_the_simulator_survives() {
    let system = small_system();
    let lm = lambda(&system);
    let safe = Amperes(lm.value() * 0.4);
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let mut ctl = PanicAt {
        n: 4,
        calls: 0,
        current: safe,
    };
    let failure = sim
        .run_schedule_supervised(&schedule(), &mut ctl, &RunContext::unbounded())
        .unwrap_err();
    match &failure.error {
        OptError::ControllerPanicked { step, payload } => {
            assert_eq!(*step, 3);
            assert!(payload.contains("injected controller panic"), "{payload}");
        }
        other => panic!("expected ControllerPanicked, got {other:?}"),
    }
    assert_eq!(failure.partial.samples().len(), 3);
    // The simulator state is still valid: a sane controller finishes a
    // fresh schedule on the same instance.
    let trace = sim
        .run_schedule_supervised(
            &schedule(),
            &mut ConstantCurrent(safe),
            &RunContext::unbounded(),
        )
        .unwrap();
    assert_eq!(trace.samples().len(), total_steps(&schedule()));
}

#[test]
fn cancellation_and_budget_exhaustion_yield_bit_identical_prefixes() {
    let sched = schedule();
    let total = total_steps(&sched);
    let system = small_system();
    let lm = lambda(&system);
    let safe = Amperes(lm.value() * 0.4);

    let mut reference_sim = TransientSimulator::new(system.clone(), DT).unwrap();
    let reference = reference_sim
        .run_schedule_supervised(&sched, &mut ConstantCurrent(safe), &RunContext::unbounded())
        .unwrap();

    // Probe budget: exactly 7 steps admitted, the 8th denied with a typed
    // error, the partial trace bitwise equal to the reference prefix.
    let mut sim = TransientSimulator::new(system.clone(), DT).unwrap();
    let ctx = RunContext::unbounded().probe_budget(7);
    let failure = sim
        .run_schedule_supervised(&sched, &mut ConstantCurrent(safe), &ctx)
        .unwrap_err();
    assert_eq!(
        failure.error,
        OptError::DeadlineExceeded {
            completed: 7,
            remaining: total - 7
        }
    );
    assert_eq!(sample_bits(&failure.partial), sample_bits(&reference)[..7]);

    // Pre-raised cancel token: refused before the first solve.
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    let ctx = RunContext::unbounded();
    ctx.token().cancel();
    let failure = sim
        .run_schedule_supervised(&sched, &mut ConstantCurrent(safe), &ctx)
        .unwrap_err();
    assert_eq!(failure.error, OptError::Cancelled { completed: 0 });
    assert!(failure.partial.samples().is_empty());
}

// ---------------------------------------------------------------------------
// Kill/resume playback
// ---------------------------------------------------------------------------

fn playback_params() -> (ControllerSpec, EnvelopeSettings) {
    (
        ControllerSpec::Proportional {
            target: Celsius(60.0),
            gain: 2.0,
            max_current: Amperes(1e3),
        },
        EnvelopeSettings::default(),
    )
}

fn build_enveloped(lm: Amperes) -> EnvelopedController<Box<dyn TecController + Send>> {
    let (spec, env) = playback_params();
    EnvelopedController::new(spec.build().unwrap(), SafetyEnvelope::new(lm, env).unwrap())
}

fn playback_fp() -> u64 {
    let (spec, env) = playback_params();
    fingerprint(&format!(
        "chaos-playback {} {} {} {} {}",
        spec.digest(),
        env.margin,
        env.trip_after,
        env.fallback.value(),
        env.recovery_steps
    ))
}

#[test]
#[ignore = "kill-at-every-step playback chain; run via the scripts/check.sh chaos pass (--include-ignored)"]
fn killed_and_resumed_playback_is_bit_identical_at_every_step() {
    let sched = schedule();
    let total = total_steps(&sched);
    let system = small_system();
    let lm = lambda(&system);
    let fp = playback_fp();

    let mut reference_sim = TransientSimulator::new(system.clone(), DT).unwrap();
    reference_sim.set_guard(lm).unwrap();
    let reference = reference_sim
        .run_schedule_supervised(&sched, &mut build_enveloped(lm), &RunContext::unbounded())
        .unwrap();
    let reference_bits = sample_bits(&reference);
    assert_eq!(reference_bits.len(), total);

    let path = scratch("kill-every-step.ckpt");
    let _ = std::fs::remove_file(&path);

    // One admitted step per run: run k resumes k recorded steps, solves
    // exactly one more, and is killed at the next admission gate. The
    // final run completes the trace instead of failing.
    for k in 0..total {
        let mut sim = TransientSimulator::new(system.clone(), DT).unwrap();
        sim.set_guard(lm).unwrap();
        let mut ctl = build_enveloped(lm);
        let ctx = RunContext::unbounded().probe_budget(1).checkpoint(&path);
        let outcome = sim.run_schedule_checkpointed(&sched, &mut ctl, fp, &ctx);
        let partial = if k + 1 == total {
            outcome.unwrap_or_else(|f| panic!("final run failed: {f}"))
        } else {
            let failure = outcome.expect_err("run must be killed at the admission gate");
            assert_eq!(
                failure.error,
                OptError::DeadlineExceeded {
                    completed: k + 1,
                    remaining: total - k - 1
                }
            );
            failure.partial
        };
        assert_eq!(
            sample_bits(&partial),
            reference_bits[..k + 1],
            "divergence after kill at step {k}"
        );
        // Exactly one new solve per run: recovered steps are replayed
        // from the checkpoint, never re-solved.
        assert_eq!(sim.guard_stats().unwrap().solves_issued, 1);

        if k == total / 2 {
            // Simulate a kill mid-append: a torn, unterminated item line.
            // The loader must ignore it and the next writer must terminate
            // it defensively before appending.
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "item {} 3ff0", k + 1).unwrap();
        }
    }

    // A final fully-recovered run: everything replays from the checkpoint,
    // zero admissions spent, zero solves issued, bit-identical trace.
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let mut ctl = build_enveloped(lm);
    let ctx = RunContext::unbounded().checkpoint(&path);
    let trace = sim
        .run_schedule_checkpointed(&sched, &mut ctl, fp, &ctx)
        .unwrap();
    assert_eq!(sample_bits(&trace), reference_bits);
    assert_eq!(ctx.probes_recorded(), 0);
    assert_eq!(sim.guard_stats().unwrap().solves_issued, 0);
    // The fast-forward replay reconstructed the envelope's state too.
    assert_eq!(
        ctl.envelope().violations_total() > 0,
        build_enveloped_reference_violations(&reference) > 0
    );
    let _ = std::fs::remove_file(&path);
}

/// Violations the reference run's envelope would have seen — recomputed
/// by replaying the spec over the recorded peaks, exactly as resume does.
fn build_enveloped_reference_violations(reference: &TransientTrace) -> usize {
    let system = small_system();
    let lm = lambda(&system);
    let mut ctl = build_enveloped(lm);
    let mut peak = {
        let sim = TransientSimulator::new(system, DT).unwrap();
        sim.peak()
    };
    for s in reference.samples() {
        let _ = ctl.next_current(peak);
        peak = s.peak;
    }
    ctl.envelope().violations_total()
}

#[test]
fn stale_checkpoint_is_rejected_not_silently_resumed() {
    let sched = schedule();
    let system = small_system();
    let lm = lambda(&system);
    let fp = playback_fp();
    let path = scratch("stale-playback.ckpt");
    let _ = std::fs::remove_file(&path);

    // Record a couple of steps.
    let mut sim = TransientSimulator::new(system.clone(), DT).unwrap();
    sim.set_guard(lm).unwrap();
    let ctx = RunContext::unbounded().probe_budget(2).checkpoint(&path);
    let failure = sim
        .run_schedule_checkpointed(&sched, &mut build_enveloped(lm), fp, &ctx)
        .unwrap_err();
    assert_eq!(failure.completed(), 2);

    // Same path, different workload: the fingerprint disagrees and the
    // checkpoint must be rejected with a typed error, not resumed.
    let mut tampered = sched.clone();
    tampered[0].1[3] = Watts(9.9);
    let mut sim = TransientSimulator::new(system, DT).unwrap();
    sim.set_guard(lm).unwrap();
    let ctx = RunContext::unbounded().checkpoint(&path);
    let failure = sim
        .run_schedule_checkpointed(&tampered, &mut build_enveloped(lm), fp, &ctx)
        .unwrap_err();
    match &failure.error {
        OptError::InvalidParameter(msg) => {
            assert!(msg.contains("stale checkpoint"), "{msg}");
        }
        other => panic!("expected a stale-checkpoint error, got {other:?}"),
    }
    assert!(failure.partial.samples().is_empty());
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// The serve tier: Transient requests under the engine
// ---------------------------------------------------------------------------

fn drive<E: tecopt_serve::Evaluator, R>(
    engine: &Engine<E>,
    workers: usize,
    f: impl Fn() -> R + Sync,
) {
    tecopt::parallel::service_workers(workers + 1, |w| {
        if w == 0 {
            f();
            engine.begin_drain();
        } else {
            engine.worker_loop(w);
        }
    });
}

fn transient_frame(
    key: Option<&str>,
    deadline_ms: Option<u64>,
    current: Amperes,
    sched: Vec<(f64, Vec<Watts>)>,
) -> RequestFrame {
    RequestFrame {
        key: key.map(String::from),
        deadline_ms,
        request: Request::Transient {
            dt: DT,
            limit: Celsius(85.0),
            envelope: EnvelopeSettings::default(),
            controller: ControllerSpec::Constant { current },
            schedule: sched,
        },
    }
}

#[test]
fn serve_transient_requests_evaluate_and_replay_deterministically() {
    let system = small_system();
    let lm = lambda(&system);
    let safe = Amperes(lm.value() * 0.4);
    let engine = Engine::new(
        TecEvaluator::new(system, CurrentSettings::default()),
        EngineConfig::default(),
    );
    let sched = schedule();
    let total = total_steps(&sched);
    drive(&engine, 2, || {
        let t = engine
            .submit(transient_frame(None, None, safe, sched.clone()))
            .unwrap();
        let r = t.wait().unwrap();
        match &r {
            Response::Transient {
                steps,
                tripped,
                solves,
                violation_fraction,
                ..
            } => {
                assert_eq!(*steps, total);
                assert!(!tripped);
                assert_eq!(*solves as usize, total);
                assert!((0.0..=1.0).contains(violation_fraction));
            }
            other => panic!("expected a transient response, got {other:?}"),
        }
        // An identical body replays from the deterministic result cache
        // (no idempotency key needed) — bitwise the same response.
        let t = engine
            .submit(transient_frame(None, None, safe, sched.clone()))
            .unwrap();
        assert_eq!(t.wait().unwrap(), r);
    });
    assert_eq!(engine.metrics().completed_ok, 2);
}

#[test]
fn serve_transient_deadline_maps_to_a_typed_step_budget_error() {
    let system = small_system();
    let lm = lambda(&system);
    let safe = Amperes(lm.value() * 0.4);
    let engine = Engine::new(
        TecEvaluator::new(system, CurrentSettings::default()),
        EngineConfig::default(),
    );
    // A workload far too long for a 1 ms budget: the playback must stop at
    // an admission gate with the typed supervision error, never run away.
    let long: Vec<(f64, Vec<Watts>)> = vec![(5_000.0, vec![Watts(0.05); 16])];
    drive(&engine, 1, || {
        let t = engine
            .submit(transient_frame(None, Some(1), safe, long.clone()))
            .unwrap();
        match t.wait() {
            Err(ServeError::Eval(OptError::DeadlineExceeded {
                completed,
                remaining,
            })) => {
                assert!(completed + remaining > 0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    });
}

#[test]
fn serve_transient_panics_are_contained_per_request() {
    let system = small_system();
    let lm = lambda(&system);
    let safe = Amperes(lm.value() * 0.4);
    let engine = Engine::new(
        MidRequestPanic::every(TecEvaluator::new(system, CurrentSettings::default()), 2),
        EngineConfig::default(),
    );
    let sched = schedule();
    drive(&engine, 1, || {
        // Call 1 delegates; call 2 panics mid-request. Different bodies so
        // the second cannot be served from the first's result cache.
        let ok = engine
            .submit(transient_frame(None, None, safe, sched.clone()))
            .unwrap();
        assert!(matches!(ok.wait(), Ok(Response::Transient { .. })));
        let boom = engine
            .submit(transient_frame(
                None,
                None,
                Amperes(safe.value() * 0.5),
                sched.clone(),
            ))
            .unwrap();
        match boom.wait() {
            Err(ServeError::Eval(OptError::WorkerPanicked { payload, .. })) => {
                assert!(payload.contains("injected mid-request panic"), "{payload}");
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
    });
    let m = engine.metrics();
    assert_eq!(m.panics_contained, 1);
    assert_eq!(m.completed_ok, 1);
}

#[test]
#[ignore = "timing-dependent serve-tier resume; run via the scripts/check.sh chaos pass (--include-ignored)"]
fn serve_keyed_transient_retry_resumes_from_its_checkpoint() {
    let system = small_system();
    let lm = lambda(&system);
    let safe = Amperes(lm.value() * 0.4);
    let ckpt_dir = scratch("serve-transient-resume");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let engine = Engine::new(
        TecEvaluator::new(system.clone(), CurrentSettings::default()),
        EngineConfig {
            checkpoint_dir: Some(ckpt_dir.clone()),
            ..EngineConfig::default()
        },
    );
    // Long enough that a 40 ms budget dies mid-playback on any machine:
    // keyed transient runs flush a checkpoint record per step.
    let long: Vec<(f64, Vec<Watts>)> = vec![(10_000.0, vec![Watts(0.05); 16])];
    let total = total_steps(&long);
    drive(&engine, 1, || {
        // Warm the evaluator's lazily computed runaway limit so the
        // deadlined attempt spends its whole budget inside the playback.
        let warm = engine
            .submit(transient_frame(
                None,
                None,
                safe,
                vec![(1.0, vec![Watts(0.05); 16])],
            ))
            .unwrap();
        assert!(matches!(warm.wait(), Ok(Response::Transient { .. })));
        let t = engine
            .submit(transient_frame(
                Some("resume-me"),
                Some(40),
                safe,
                long.clone(),
            ))
            .unwrap();
        assert!(matches!(
            t.wait(),
            Err(ServeError::Eval(OptError::DeadlineExceeded { .. }))
        ));
        // The failure is transient, not cached: the keyed retry re-runs,
        // resuming from the checkpoint instead of starting over.
        let t = engine
            .submit(transient_frame(Some("resume-me"), None, safe, long.clone()))
            .unwrap();
        match t.wait() {
            Ok(Response::Transient { steps, solves, .. }) => {
                assert_eq!(steps, total);
                // Resumed: strictly fewer fresh solves than timesteps.
                assert!(
                    (solves as usize) < total,
                    "retry did not resume ({solves} solves)"
                );
            }
            other => panic!("expected a completed transient, got {other:?}"),
        }
    });
    let ckpt = ckpt_dir.join("resume-me.ckpt");
    assert!(ckpt.exists(), "keyed transient runs must checkpoint");
    let _ = std::fs::remove_file(&ckpt);
}
