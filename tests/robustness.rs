//! Property-based robustness sweeps over the full pipeline: degenerate
//! floorplans, extreme power vectors, and operating points pushed against
//! the runaway limit must produce typed errors (or valid solutions), never
//! panics and never unbounded loops.

use proptest::prelude::*;
use tecopt::transient::{TransientSample, TransientTrace};
use tecopt::{runaway_limit, CoolingSystem, OptError, PackageConfig, TecParams, TileIndex};
use tecopt_linalg::SolverPolicy;
use tecopt_power::{Floorplan, Unit};
use tecopt_thermal::Rect;
use tecopt_units::{Amperes, Celsius, Meters, Watts};

fn base_system(tile_power: f64) -> Result<CoolingSystem, OptError> {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(tile_power);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(1, 2)],
        powers,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn degenerate_floorplans_never_panic(
        w0 in -1.0f64..2.0,
        h0 in -1.0f64..2.0,
        w1 in -1.0f64..2.0,
        gap in -0.5f64..0.5,
    ) {
        // Randomly mis-sized and mis-placed unit rectangles: the constructor
        // must classify each case instead of panicking, and acceptance must
        // imply an exact tiling.
        let mm = 1e-3;
        let units = vec![
            Unit::new("a", Rect::new(0.0, 0.0, w0 * mm, h0 * mm)),
            Unit::new("b", Rect::new((w0 + gap) * mm, 0.0, (w0 + gap + w1) * mm, h0 * mm)),
        ];
        let die_w = (w0 + gap + w1) * mm;
        match Floorplan::new("fuzz", Meters(die_w), Meters(h0 * mm), units) {
            Ok(plan) => {
                let covered: f64 = plan.units().iter().map(|u| u.area().value()).sum();
                prop_assert!((covered - plan.die_area().value()).abs()
                    <= 1e-6 * plan.die_area().value().abs());
            }
            Err(e) => {
                // Any documented construction failure is acceptable; what is
                // not acceptable is reaching here via unwind.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn extreme_power_vectors_are_classified_not_propagated(
        log_mag in -30f64..30.0,
        poison in 0usize..4,
    ) {
        // Powers spanning sixty decades, with occasional NaN/∞/negative
        // poisoning, either build a solvable system or fail with a typed
        // error at the construction boundary.
        let mag = 10f64.powf(log_mag);
        let mut raw = vec![mag; 16];
        match poison {
            1 => raw[3] = f64::NAN,
            2 => raw[3] = f64::INFINITY,
            3 => raw[3] = -mag,
            _ => {}
        }
        let config = PackageConfig::hotspot41_like(4, 4).unwrap();
        let built = CoolingSystem::new(
            &config,
            TecParams::superlattice_thin_film(),
            &[TileIndex::new(0, 0)],
            raw.into_iter().map(Watts).collect(),
        );
        match built {
            Ok(system) => {
                prop_assert!(poison == 0);
                let state = system.solve(Amperes(0.0)).unwrap();
                prop_assert!(state.peak().value().is_finite());
            }
            Err(e) => {
                prop_assert!(matches!(e, OptError::InvalidParameter(_)), "got {e:?}");
                prop_assert!(poison != 0);
            }
        }
    }

    #[test]
    fn near_runaway_currents_error_cleanly(frac in 0.90f64..1.10) {
        // Operating points straddling λ_m: below it the hardened solver must
        // succeed, past it the failure must be the typed runaway signal (or
        // an ill-conditioning report) — and the search itself must have
        // terminated within its probe budget to get here at all.
        let system = base_system(0.4).unwrap();
        let lim = runaway_limit(&system, 1e-9).unwrap();
        let i = Amperes(lim.lambda().value() * frac);
        match system.solve_with_policy(i, &SolverPolicy::default()) {
            Ok(state) => {
                prop_assert!(state.peak().value().is_finite());
                prop_assert!(state.condition_estimate() >= 1.0);
            }
            Err(OptError::BeyondRunaway { current }) => {
                prop_assert!((current - i.value()).abs() <= 1e-12 * i.value().abs());
                // The oracle may conservatively reject slightly-below-λ_m
                // points, but never clearly-feasible ones.
                prop_assert!(frac > 0.99, "rejected clearly feasible {frac}");
            }
            Err(OptError::Linalg(e)) => {
                prop_assert!(matches!(
                    e,
                    tecopt_linalg::LinalgError::IllConditioned { .. }
                ), "got {e:?}");
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}

/// A trace of `(peak °C, TEC power W)` pairs with bounded finite values —
/// the raw material for the summary-statistic properties below.
fn trace_samples() -> impl Strategy<Value = Vec<TransientSample>> {
    collection::vec((-50.0f64..200.0, 0.0f64..10.0), 0..64).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (peak, power))| TransientSample {
                time: (i + 1) as f64 * 0.25,
                peak: Celsius(peak),
                current: Amperes(1.0),
                tec_power: Watts(power),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn violation_fraction_is_a_nan_free_monotone_fraction(
        samples in trace_samples(),
        limit in -100.0f64..250.0,
        slack in 0.0f64..50.0,
    ) {
        let trace = TransientTrace::from_samples(samples.clone());
        let f = trace.violation_fraction(Celsius(limit));
        // Always a well-defined fraction — an empty trace included (0.0,
        // not 0/0), and never NaN for any finite limit.
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        // It is exactly the count of strictly-over samples.
        let over = samples.iter().filter(|s| s.peak.value() > limit).count();
        if samples.is_empty() {
            prop_assert!(f == 0.0);
        } else {
            prop_assert!(f == over as f64 / samples.len() as f64);
        }
        // Loosening the limit can only shrink the fraction.
        let looser = trace.violation_fraction(Celsius(limit + slack));
        prop_assert!(looser <= f, "loosening {limit} by {slack} grew {f} to {looser}");
    }

    #[test]
    fn tec_energy_is_the_finite_rectangle_sum(
        samples in trace_samples(),
        dt in 1e-6f64..10.0,
    ) {
        let trace = TransientTrace::from_samples(samples.clone());
        let e = trace.tec_energy_joules(dt);
        // Nonnegative powers integrate to a finite, nonnegative energy;
        // the empty trace integrates to exactly zero.
        prop_assert!(e.is_finite() && e >= 0.0, "energy {e}");
        if samples.is_empty() {
            prop_assert!(e == 0.0);
        }
        let expected: f64 = samples.iter().map(|s| s.tec_power.value() * dt).sum();
        prop_assert!(e == expected, "{e} != rectangle sum {expected}");
        // Doubling the timestep doubles the energy bit-exactly: scaling
        // every term and every partial sum by 2 is lossless in binary.
        prop_assert!(trace.tec_energy_joules(2.0 * dt) == 2.0 * e);
    }

    #[test]
    fn single_sample_statistics_are_exact(
        peak in -50.0f64..200.0,
        power in 0.0f64..10.0,
        dt in 1e-6f64..10.0,
    ) {
        let trace = TransientTrace::from_samples(vec![TransientSample {
            time: dt,
            peak: Celsius(peak),
            current: Amperes(0.5),
            tec_power: Watts(power),
        }]);
        prop_assert!(trace.tec_energy_joules(dt) == power * dt);
        // A one-sample fraction is exactly 0 or 1, decided strictly.
        prop_assert!(trace.violation_fraction(Celsius(peak)) == 0.0);
        prop_assert!(trace.violation_fraction(Celsius(peak - 1.0)) == 1.0);
        prop_assert_eq!(trace.peak(), Some(Celsius(peak)));
    }
}
