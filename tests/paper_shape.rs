//! Integration tests asserting the paper's headline *shape* on the
//! calibrated benchmarks (see `EXPERIMENTS.md` for the full numbers):
//! deployment + current setting bring hotspots down by several degrees at
//! watt-level TEC power, covering every tile is worse than covering few,
//! the runaway limit is finite and explains the current ceiling, and the
//! convexity machinery certifies the optimizer's assumptions.

use tecopt::{
    certify_convexity, full_cover, greedy_deploy, optimize_current, runaway_limit,
    ConvexitySettings, CoolingSystem, CurrentSettings, DeploySettings, PackageConfig, TecParams,
};
use tecopt_power::{HypotheticalChip, WorkloadModel};
use tecopt_units::{Amperes, Celsius};

fn alpha_base() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let envelope = WorkloadModel::alpha_spec2000_like()
        .unwrap()
        .worst_case_envelope(0.2)
        .unwrap();
    let powers = envelope.rasterize(config.grid()).unwrap();
    CoolingSystem::without_devices(&config, TecParams::superlattice_thin_film(), powers).unwrap()
}

#[test]
fn alpha_uncooled_peak_matches_paper_band() {
    let base = alpha_base();
    let peak = base.solve(Amperes(0.0)).unwrap().peak();
    // Paper: 91.8 degC. Accept the calibrated band.
    assert!(
        (90.0..=96.0).contains(&peak.value()),
        "alpha uncooled peak {peak:?}"
    );
    // Total power ~20.6 W.
    let total = base.total_chip_power().value();
    assert!((19.0..=22.0).contains(&total), "total {total} W");
}

#[test]
fn alpha_greedy_cools_hotspot_by_several_degrees() {
    let base = alpha_base();
    let uncooled = base.solve(Amperes(0.0)).unwrap().peak();
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(Celsius(85.0))).unwrap();
    let d = outcome.deployment();
    // A handful of devices on the integer-cluster hotspot.
    assert!(
        (3..=24).contains(&d.device_count()),
        "{} devices",
        d.device_count()
    );
    // Cooling swing of several degrees (paper: up to 7.5 degC).
    let swing = uncooled.value() - d.optimum().state().peak().value();
    assert!((3.0..=12.0).contains(&swing), "swing {swing}");
    // Optimal current and TEC power in the paper's ranges.
    let i = d.optimum().current().value();
    assert!((2.0..=12.0).contains(&i), "I_opt {i}");
    let p = d.optimum().state().tec_power().value();
    assert!((0.2..=6.0).contains(&p), "P_TEC {p}");
    // The deployment covers the IntReg hotspot (row 10, cols 2-5 of the
    // floorplan).
    assert!(
        d.tiles().iter().any(|t| t.row == 10),
        "deployment misses the integer cluster: {:?}",
        d.tiles()
    );
}

#[test]
fn full_cover_loses_to_greedy_on_alpha() {
    // The headline of Table I: excessive deployment reduces efficiency.
    let base = alpha_base();
    let greedy = greedy_deploy(&base, DeploySettings::with_limit(Celsius(85.0))).unwrap();
    let full = full_cover(&base, CurrentSettings::default()).unwrap();
    assert_eq!(full.device_count(), 144);
    let swing_loss = full.optimum().state().peak().value()
        - greedy.deployment().optimum().state().peak().value();
    assert!(
        swing_loss > 0.0,
        "full cover should lose: swing loss {swing_loss}"
    );
    // And it burns far more electrical power doing worse.
    assert!(
        full.optimum().state().tec_power().value()
            > 2.0 * greedy.deployment().optimum().state().tec_power().value()
    );
}

#[test]
fn full_cover_loses_on_hypothetical_chips() {
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    // Two representative chips from the HC suite (the full eleven-benchmark
    // sweep is the `table1` harness).
    for chip in HypotheticalChip::standard_suite().into_iter().take(2) {
        let base = CoolingSystem::without_devices(
            &config,
            TecParams::superlattice_thin_film(),
            chip.tile_powers(),
        )
        .unwrap();
        let greedy = greedy_deploy(&base, DeploySettings::with_limit(Celsius(85.0))).unwrap();
        let full = full_cover(&base, CurrentSettings::default()).unwrap();
        let loss = full.optimum().state().peak().value()
            - greedy.deployment().optimum().state().peak().value();
        assert!(loss > -0.5, "{}: swing loss {loss}", chip.name());
    }
}

#[test]
fn runaway_limit_is_finite_and_binding() {
    let base = alpha_base();
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(Celsius(85.0))).unwrap();
    let system = outcome.deployment().system().clone();
    let lim = runaway_limit(&system, 1e-10).unwrap();
    let lam = lim.lambda().value();
    assert!((15.0..=80.0).contains(&lam), "lambda_m {lam}");
    // Feasible below, infeasible above.
    assert!(system.solve(Amperes(lam * 0.99)).is_ok());
    assert!(system.solve(Amperes(lam * 1.01)).is_err());
    // The optimum sits well inside the feasible interval.
    let opt = optimize_current(&system, CurrentSettings::default()).unwrap();
    assert!(opt.current().value() < 0.5 * lam);
}

#[test]
fn convexity_certificate_holds_on_the_deployed_system() {
    let base = alpha_base();
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(Celsius(85.0))).unwrap();
    let cert = certify_convexity(
        outcome.deployment().system(),
        ConvexitySettings {
            subranges: 4,
            ..ConvexitySettings::default()
        },
    )
    .unwrap();
    assert!(cert.is_certified(), "{:?}", cert.outcome);
}

#[test]
fn golden_section_and_gradient_descent_agree_on_alpha() {
    let base = alpha_base();
    let outcome = greedy_deploy(&base, DeploySettings::with_limit(Celsius(85.0))).unwrap();
    let system = outcome.deployment().system().clone();
    let gold = optimize_current(&system, CurrentSettings::default()).unwrap();
    let grad = optimize_current(
        &system,
        CurrentSettings {
            method: tecopt::CurrentMethod::GradientDescent,
            max_evaluations: 400,
            ..CurrentSettings::default()
        },
    )
    .unwrap();
    assert!(
        (gold.state().peak().value() - grad.state().peak().value()).abs() < 0.1,
        "golden {:?} vs gradient {:?}",
        gold.state().peak(),
        grad.state().peak()
    );
}
