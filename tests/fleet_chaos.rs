//! Chaos suite for the `tecopt-serve` fleet tier: shard kills and
//! restarts, failover, health-state recovery, cache replication, and
//! checkpointed sweep handoff (DESIGN.md §17).
//!
//! The invariants under test:
//!
//! - killing and restarting shards — one at a time and two at once —
//!   mid-sweep under load produces **zero process aborts**, **zero
//!   duplicate successful evaluations** of any request fingerprint
//!   (hedging off), and **typed errors only**;
//! - a replica-served answer is bit-identical to the locally evaluated
//!   one, and a poisoned replica is never served (fingerprint gate);
//! - a keyed designer sweep killed mid-flight on one shard resumes on
//!   its failover successor **bit-identically** via the shared
//!   checkpoint directory;
//! - the server's wire surface answers `ping` frames and ignores
//!   unknown `#` extension tags without dropping the connection
//!   (forward compatibility with newer peers).
//!
//! The heavyweight soak is `#[ignore]`d; the dedicated fleet chaos pass
//! in `scripts/check.sh` runs this suite with `--test-threads=1
//! --include-ignored`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tecopt::{
    score_candidates, CancelToken, CoolingSystem, CurrentSettings, OptError, PackageConfig,
    RunContext, TecParams, TileIndex,
};
use tecopt_faultinject::{ShardKill, SlowEvaluator};
use tecopt_serve::wire::{encode_repl, encode_request, request_fingerprint, ReplFrame};
use tecopt_serve::{
    Engine, EngineConfig, Evaluator, HealthPolicy, HealthState, Listener, LocalShard, RemoteAddr,
    RemoteShard, ReplEntry, Replicator, Request, RequestFrame, Response, Router, RouterConfig,
    ServeError, Server, ServerConfig, ShardHandle,
};
use tecopt_units::{Amperes, Celsius, Watts};

// ---------------------------------------------------------------------------
// Rig: killable local shards with per-fingerprint evaluation accounting
// ---------------------------------------------------------------------------

/// Counts *successful* evaluations per request fingerprint, shared across
/// every engine generation of every shard — the fleet-wide duplicate
/// detector.
type EvalCounts = Arc<Mutex<HashMap<u64, u64>>>;

struct CountingEval<E> {
    inner: E,
    counts: EvalCounts,
}

impl<E: Evaluator> Evaluator for CountingEval<E> {
    fn evaluate(&self, request: &Request, ctx: &RunContext) -> Result<Response, OptError> {
        let result = self.inner.evaluate(request, ctx);
        if result.is_ok() {
            *self
                .counts
                .lock()
                .unwrap()
                .entry(request_fingerprint(request))
                .or_insert(0) += 1;
        }
        result
    }
}

/// A cheap deterministic evaluator for steady requests.
struct EchoEval;

impl Evaluator for EchoEval {
    fn evaluate(&self, request: &Request, _ctx: &RunContext) -> Result<Response, OptError> {
        match request {
            Request::Steady { current } => Ok(Response::Steady {
                peak: Celsius(current.value() * 10.0),
                tec_power: Watts(current.value()),
            }),
            _ => Err(OptError::InvalidParameter(
                "echo evaluator only answers steady requests".into(),
            )),
        }
    }
}

type CountingEcho = CountingEval<SlowEvaluator<EchoEval>>;

/// One killable shard slot: the `ShardKill` wrapper stays on the ring
/// across restarts while the engine behind it is torn down and rebuilt.
struct ShardRig {
    name: String,
    kill: Arc<ShardKill>,
    counts: EvalCounts,
    eval_delay: Duration,
    engine: Mutex<Option<Arc<Engine<CountingEcho>>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Metric snapshots of every *retired* engine generation.
    retired: Mutex<Vec<tecopt_serve::MetricsSnapshot>>,
}

impl ShardRig {
    fn start(name: &str, counts: &EvalCounts, eval_delay: Duration) -> Arc<ShardRig> {
        let rig = Arc::new(ShardRig {
            name: name.to_string(),
            // Placeholder inner; replaced by the first `boot` below.
            kill: Arc::new(ShardKill::wrap(Arc::new(NullShard(name.to_string())))),
            counts: Arc::clone(counts),
            eval_delay,
            engine: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
        });
        rig.boot();
        rig
    }

    fn fresh_engine(&self) -> Arc<Engine<CountingEcho>> {
        Arc::new(Engine::new(
            CountingEval {
                inner: SlowEvaluator::new(EchoEval, self.eval_delay),
                counts: Arc::clone(&self.counts),
            },
            EngineConfig::default(),
        ))
    }

    /// Builds a fresh engine generation and swaps it into the kill shell.
    fn boot(&self) {
        let engine = self.fresh_engine();
        let mut workers = self.workers.lock().unwrap();
        for w in 0..2 {
            let e = Arc::clone(&engine);
            workers.push(std::thread::spawn(move || e.worker_loop(w)));
        }
        self.kill.restart_with(Arc::new(
            LocalShard::new(self.name.clone(), Arc::clone(&engine))
                .with_poll_interval(Duration::from_millis(1)),
        ));
        *self.engine.lock().unwrap() = Some(engine);
    }

    /// Kills the shard: refuse new work, cancel in-flight work, join the
    /// worker threads, retire the engine generation.
    fn crash(&self) {
        self.kill.kill();
        if let Some(engine) = self.engine.lock().unwrap().take() {
            engine.begin_drain();
            engine.cancel_outstanding();
            for w in self.workers.lock().unwrap().drain(..) {
                w.join().unwrap();
            }
            self.retired.lock().unwrap().push(engine.metrics());
        }
    }

    /// Engine metric snapshots across every generation, retired and live.
    fn all_metrics(&self) -> Vec<tecopt_serve::MetricsSnapshot> {
        let mut all = self.retired.lock().unwrap().clone();
        if let Some(engine) = self.engine.lock().unwrap().as_ref() {
            all.push(engine.metrics());
        }
        all
    }

    fn shutdown(&self) {
        self.crash();
    }
}

/// The placeholder behind a rig before its first boot; never routed to.
struct NullShard(String);

impl ShardHandle for NullShard {
    fn id(&self) -> &str {
        &self.0
    }
    fn submit(&self, _f: &RequestFrame, _c: &CancelToken) -> Result<Response, ServeError> {
        Err(ServeError::NoShards)
    }
    fn ping(&self, _t: Duration) -> Result<(), ServeError> {
        Err(ServeError::NoShards)
    }
    fn replicate(&self, _e: &ReplEntry) -> Result<(), ServeError> {
        Err(ServeError::NoShards)
    }
}

fn fleet_router(rigs: &[Arc<ShardRig>], config: RouterConfig) -> Router {
    Router::new(
        rigs.iter()
            .map(|r| Arc::clone(&r.kill) as Arc<dyn ShardHandle>)
            .collect(),
        config,
    )
}

fn quick_config() -> RouterConfig {
    RouterConfig {
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        health: HealthPolicy {
            ping_interval: Duration::from_millis(10),
            ping_timeout: Duration::from_millis(50),
            down_after: 3,
            up_after: 2,
        },
        ..RouterConfig::default()
    }
}

fn steady_frame(key: &str, current: f64) -> RequestFrame {
    RequestFrame {
        key: Some(key.to_string()),
        deadline_ms: None,
        request: Request::Steady {
            current: Amperes(current),
        },
    }
}

/// A key whose primary replica (in `router`'s ring) is shard `index`.
fn key_on_primary(router: &Router, index: usize) -> String {
    (0..4096)
        .map(|i| format!("pinned-{i}"))
        .find(|k| router.replica_order(k)[0] == index)
        .expect("some key lands on the requested shard")
}

// ---------------------------------------------------------------------------
// Routing, dedup, failover, health
// ---------------------------------------------------------------------------

#[test]
fn the_router_dedupes_repeat_keys_onto_one_evaluation() {
    let counts: EvalCounts = Arc::default();
    let rigs: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|n| ShardRig::start(n, &counts, Duration::ZERO))
        .collect();
    let router = fleet_router(&rigs, quick_config());
    let cancel = CancelToken::new();

    let first = router.submit(steady_frame("job-1", 2.0), &cancel).unwrap();
    let second = router.submit(steady_frame("job-1", 2.0), &cancel).unwrap();
    assert_eq!(first, second);
    let fp = request_fingerprint(&Request::Steady {
        current: Amperes(2.0),
    });
    assert_eq!(
        counts.lock().unwrap()[&fp],
        1,
        "one evaluation, two answers"
    );
    assert_eq!(router.metrics().routed, 2);
    for r in &rigs {
        r.shutdown();
    }
}

#[test]
fn a_killed_primary_fails_over_and_a_restarted_one_serves_again() {
    let counts: EvalCounts = Arc::default();
    let rigs: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|n| ShardRig::start(n, &counts, Duration::ZERO))
        .collect();
    let router = fleet_router(&rigs, quick_config());
    let cancel = CancelToken::new();
    let key = key_on_primary(&router, 0);

    rigs[0].crash();
    let r = router.submit(steady_frame(&key, 3.0), &cancel).unwrap();
    assert_eq!(
        r,
        Response::Steady {
            peak: Celsius(30.0),
            tec_power: Watts(3.0)
        }
    );
    assert!(router.metrics().failovers >= 1);

    // The restarted shard serves its own keys again (fresh cache, fresh
    // evaluation — a different key so dedup does not mask it). The
    // failover marked it Suspect, so `replica_order` demotes it until
    // two clean ping rounds restore it (hysteresis).
    rigs[0].boot();
    router.ping_all_once();
    router.ping_all_once();
    assert_eq!(router.health().state(0), HealthState::Healthy);
    let key2 = {
        let k = key_on_primary(&router, 0);
        format!("{k}-second")
    };
    let r2 = router.submit(steady_frame(&key2, 4.0), &cancel);
    assert!(r2.is_ok(), "restarted fleet refused work: {r2:?}");
    for r in &rigs {
        r.shutdown();
    }
}

#[test]
fn ping_rounds_walk_the_health_machine_down_and_back_up() {
    let counts: EvalCounts = Arc::default();
    let rigs: Vec<_> = ["a", "b"]
        .iter()
        .map(|n| ShardRig::start(n, &counts, Duration::ZERO))
        .collect();
    let router = fleet_router(&rigs, quick_config());

    router.ping_all_once();
    assert_eq!(router.health().state(0), HealthState::Healthy);

    rigs[0].crash();
    router.ping_all_once();
    assert_eq!(router.health().state(0), HealthState::Suspect);
    router.ping_all_once();
    router.ping_all_once();
    assert_eq!(router.health().state(0), HealthState::Down);
    assert_eq!(router.health().state(1), HealthState::Healthy);

    // Hysteretic recovery: the restarted shard needs two clean rounds.
    rigs[0].boot();
    router.ping_all_once();
    assert_eq!(router.health().state(0), HealthState::Down);
    router.ping_all_once();
    assert_eq!(router.health().state(0), HealthState::Healthy);
    for r in &rigs {
        r.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

#[test]
fn replicated_results_survive_their_origin_shard() {
    let counts: EvalCounts = Arc::default();
    let rigs: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|n| ShardRig::start(n, &counts, Duration::ZERO))
        .collect();
    let router = fleet_router(&rigs, quick_config());
    let cancel = CancelToken::new();

    // Wire the replication fan-out between the live engines.
    let replicator = Arc::new(Replicator::new(
        rigs.iter()
            .map(|r| Arc::clone(&r.kill) as Arc<dyn ShardHandle>)
            .collect(),
        64,
    ));
    for r in &rigs {
        let engine = r.engine.lock().unwrap().as_ref().unwrap().clone();
        engine.set_replication_sink(replicator.sink_for(&r.name));
    }

    let key = key_on_primary(&router, 0);
    let first = router.submit(steady_frame(&key, 5.0), &cancel).unwrap();
    replicator.pump_once();
    assert!(replicator.stats().sent >= 2, "replicas reached the peers");

    // The origin dies; the same keyed request fails over and is served
    // from the replica — bit-identical, with no second evaluation.
    rigs[0].crash();
    let replayed = router.submit(steady_frame(&key, 5.0), &cancel).unwrap();
    assert_eq!(first, replayed);
    let fp = request_fingerprint(&Request::Steady {
        current: Amperes(5.0),
    });
    assert_eq!(
        counts.lock().unwrap()[&fp],
        1,
        "the replica answered; nothing re-evaluated"
    );
    for r in &rigs {
        r.shutdown();
    }
}

#[test]
fn a_poisoned_replica_is_refused_and_reevaluated_not_served() {
    let counts: EvalCounts = Arc::default();
    let rigs: Vec<_> = ["a", "b"]
        .iter()
        .map(|n| ShardRig::start(n, &counts, Duration::ZERO))
        .collect();
    let router = fleet_router(&rigs, quick_config());
    let cancel = CancelToken::new();
    let key = key_on_primary(&router, 0);

    // Poison shard a's cache: an entry under the right key whose
    // fingerprint belongs to a *different* request (a corrupted or
    // malicious replica that slipped past transport checks).
    let wrong = Request::Steady {
        current: Amperes(99.0),
    };
    let engine = rigs[0].engine.lock().unwrap().as_ref().unwrap().clone();
    engine.insert_replicated(
        request_fingerprint(&wrong),
        &key,
        Response::Steady {
            peak: Celsius(-273.0),
            tec_power: Watts(-1.0),
        },
    );

    let r = router.submit(steady_frame(&key, 1.5), &cancel).unwrap();
    assert_eq!(
        r,
        Response::Steady {
            peak: Celsius(15.0),
            tec_power: Watts(1.5)
        },
        "the poisoned answer never surfaced"
    );
    assert_eq!(engine.metrics().replicated_rejects, 1);
    let fp = request_fingerprint(&Request::Steady {
        current: Amperes(1.5),
    });
    assert_eq!(
        counts.lock().unwrap()[&fp],
        1,
        "refusal forced a re-evaluation"
    );
    for r in &rigs {
        r.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Checkpointed sweep handoff
// ---------------------------------------------------------------------------

fn small_system() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
    .unwrap()
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tecopt-fleet-chaos-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn a_keyed_sweep_killed_mid_flight_resumes_bit_identically_on_its_successor() {
    let system = small_system();
    let candidates: Vec<Vec<TileIndex>> = (0..4)
        .map(|r| vec![TileIndex::new(r, 1), TileIndex::new(r, 2)])
        .collect();
    let reference = score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded(),
    )
    .unwrap();

    // Two shards over ONE checkpoint directory (shared storage hand-off).
    let ckpt = scratch_dir("sweep-handoff");
    let build_engine = |delay: Duration| {
        Arc::new(Engine::new(
            SlowEvaluator::new(
                tecopt_serve::TecEvaluator::new(system.clone(), CurrentSettings::default()),
                delay,
            ),
            EngineConfig {
                checkpoint_dir: Some(ckpt.clone()),
                ..EngineConfig::default()
            },
        ))
    };
    // The doomed primary is slow (so the kill lands mid-sweep); the
    // successor runs at full speed.
    let doomed = build_engine(Duration::from_millis(150));
    let successor = build_engine(Duration::ZERO);
    let mut workers = Vec::new();
    for engine in [&doomed, &successor] {
        let e = Arc::clone(engine);
        workers.push(std::thread::spawn(move || e.worker_loop(0)));
    }
    let kill_a = Arc::new(ShardKill::wrap(Arc::new(LocalShard::new(
        "doomed",
        Arc::clone(&doomed),
    ))));
    let shard_b: Arc<dyn ShardHandle> =
        Arc::new(LocalShard::new("successor", Arc::clone(&successor)));
    let router = Arc::new(Router::new(
        vec![Arc::clone(&kill_a) as Arc<dyn ShardHandle>, shard_b],
        quick_config(),
    ));
    let key = {
        // Whatever key routes to the doomed shard first.
        (0..4096)
            .map(|i| format!("sweep-{i}"))
            .find(|k| router.shards()[router.replica_order(k)[0]].id() == "doomed")
            .expect("some key lands on the doomed shard")
    };

    let frame = RequestFrame {
        key: Some(key.clone()),
        deadline_ms: None,
        request: Request::Designer {
            candidates: candidates.clone(),
        },
    };
    let submit_router = Arc::clone(&router);
    let submit_frame = frame.clone();
    let call = std::thread::spawn(move || submit_router.submit(submit_frame, &CancelToken::new()));
    // Let the sweep start on the doomed shard, then kill it mid-flight:
    // refuse new work, cancel the running sweep (it checkpoints its
    // completed probes), and let the router fail over under the SAME key.
    std::thread::sleep(Duration::from_millis(200));
    kill_a.kill();
    doomed.begin_drain();
    doomed.cancel_outstanding();

    let resumed = call.join().unwrap().expect("failover completes the sweep");
    match resumed {
        Response::Designer { scores } => {
            assert_eq!(scores.len(), reference.len());
            for (got, want) in scores.iter().zip(&reference) {
                assert_eq!(got.device_count, want.device_count);
                assert_eq!(
                    got.current.value().to_bits(),
                    want.current.value().to_bits()
                );
                assert_eq!(got.peak.value().to_bits(), want.peak.value().to_bits());
                assert_eq!(
                    got.tec_power.value().to_bits(),
                    want.tec_power.value().to_bits()
                );
            }
        }
        other => panic!("expected designer scores, got {other:?}"),
    }

    successor.begin_drain();
    successor.cancel_outstanding();
    for w in workers {
        w.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Wire surface: ping frames and extension-tag forward compatibility
// ---------------------------------------------------------------------------

/// Reads one `\n`-terminated line from a raw socket.
fn read_line(s: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => panic!("read_line failed: {e}"),
        }
    }
    String::from_utf8(buf).unwrap()
}

struct ServerHarness {
    addr: String,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<tecopt_serve::ServerReport>,
}

impl ServerHarness {
    fn start<E: Evaluator + 'static>(eval: E) -> ServerHarness {
        let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let engine = Arc::new(Engine::new(eval, EngineConfig::default()));
        let server = Arc::new(Server::new(
            listener,
            engine,
            ServerConfig {
                // One handler serves one connection at a time; a
                // RemoteShard alone holds up to three (submit/ping/repl).
                handlers: 4,
                eval_workers: 2,
                poll_interval: Duration::from_millis(5),
                drain_timeout: Duration::from_secs(10),
            },
        ));
        let shutdown = server.shutdown_token();
        let handle = std::thread::spawn(move || server.run());
        ServerHarness {
            addr,
            shutdown,
            handle,
        }
    }

    fn stop(self) -> tecopt_serve::ServerReport {
        self.shutdown.cancel();
        self.handle.join().expect("server thread never panics")
    }
}

#[test]
fn the_server_answers_ping_frames_before_admission() {
    let h = ServerHarness::start(EchoEval);
    let mut s = TcpStream::connect(&h.addr).unwrap();
    s.write_all(b"ping 00000000000000ab\n").unwrap();
    assert_eq!(read_line(&mut s), "pong 00000000000000ab");
    drop(s);
    let report = h.stop();
    assert_eq!(report.engine.submitted, 0, "pings never enter admission");
}

#[test]
fn unknown_extension_tags_are_ignored_and_the_connection_survives() {
    let h = ServerHarness::start(EchoEval);
    let mut s = TcpStream::connect(&h.addr).unwrap();
    // A newer peer's extension frame: no reply, no disconnect…
    s.write_all(b"#future-tag with fields an old server never saw\n")
        .unwrap();
    // …and a torn/malformed KNOWN extension frame: counted, not fatal.
    s.write_all(b"#repl deadbeef\n").unwrap();
    // The same connection still serves a real request afterwards.
    let frame = encode_request(&steady_frame("fc-1", 1.0));
    s.write_all(format!("{frame}\n").as_bytes()).unwrap();
    let reply = read_line(&mut s);
    assert!(reply.starts_with("ok fc-1 steady "), "got `{reply}`");
    drop(s);
    let report = h.stop();
    assert_eq!(report.decode_errors, 1, "only the malformed #repl counted");
    assert_eq!(report.engine.completed_ok, 1);
}

#[test]
fn replication_frames_file_entries_a_remote_shard_then_serves() {
    let h = ServerHarness::start(EchoEval);
    // Push a replica over the wire, exactly as a peer's Replicator would.
    let request = Request::Steady {
        current: Amperes(7.0),
    };
    let canned = Response::Steady {
        peak: Celsius(70.0),
        tec_power: Watts(7.0),
    };
    let shard = RemoteShard::new("srv", RemoteAddr::Tcp(h.addr.clone()))
        .with_io_slice(Duration::from_millis(5));
    shard
        .replicate(&ReplEntry {
            request_fp: request_fingerprint(&request),
            key: "repl-key".into(),
            response: canned.clone(),
        })
        .unwrap();
    // A ping round-trips through the same server.
    shard.ping(Duration::from_secs(2)).unwrap();
    // The matching keyed request is answered from the replica.
    let got = shard
        .submit(&steady_frame("repl-key", 7.0), &CancelToken::new())
        .unwrap();
    assert_eq!(got, canned);
    let report = h.stop();
    assert_eq!(report.engine.replicated_hits, 1);
    assert_eq!(report.engine.completed_ok, 0, "nothing was evaluated");
}

#[test]
fn torn_replication_frames_over_tcp_never_poison_the_receiver() {
    let h = ServerHarness::start(EchoEval);
    let request = Request::Steady {
        current: Amperes(2.5),
    };
    let frame = encode_repl(&ReplFrame {
        request_fp: request_fingerprint(&request),
        key: "torn".into(),
        response: Response::Steady {
            peak: Celsius(25.0),
            tec_power: Watts(2.5),
        },
    });
    // Corrupt the tail (body no longer matches its digest) and send it.
    let mut corrupted = frame.clone();
    corrupted.truncate(frame.len() - 3);
    corrupted.push_str("fff");
    let mut s = TcpStream::connect(&h.addr).unwrap();
    s.write_all(format!("{corrupted}\n").as_bytes()).unwrap();
    // The matching request must be EVALUATED (the corrupt replica was
    // refused), not served from a poisoned cache.
    let req_frame = encode_request(&steady_frame("torn", 2.5));
    s.write_all(format!("{req_frame}\n").as_bytes()).unwrap();
    let reply = read_line(&mut s);
    assert!(reply.starts_with("ok torn steady "), "got `{reply}`");
    drop(s);
    let report = h.stop();
    assert_eq!(report.engine.completed_ok, 1, "the request was evaluated");
    assert_eq!(report.engine.replicated_hits, 0);
    assert_eq!(report.decode_errors, 1);
}

// ---------------------------------------------------------------------------
// Soak: kill and restart every shard mid-sweep under load
// ---------------------------------------------------------------------------

#[test]
#[ignore = "multi-second soak; run via scripts/check.sh fleet chaos pass"]
fn soak_kill_and_restart_every_shard_under_load() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 24;

    let counts: EvalCounts = Arc::default();
    let rigs: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|n| ShardRig::start(n, &counts, Duration::from_millis(3)))
        .collect();
    // Hedging OFF: the zero-duplicate ledger below is exact.
    let router = Arc::new(fleet_router(
        &rigs,
        RouterConfig {
            max_attempts: 6,
            ..quick_config()
        },
    ));

    // Background health loop, as a deployment would run it.
    let health_router = Arc::clone(&router);
    let health_stop = CancelToken::new();
    let health_token = health_stop.clone();
    let health = std::thread::spawn(move || health_router.run_health_loop(&health_token));

    let ok = Arc::new(AtomicUsize::new(0));
    let typed_err = Arc::new(AtomicUsize::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|who| {
            let router = Arc::clone(&router);
            let ok = Arc::clone(&ok);
            let typed_err = Arc::clone(&typed_err);
            std::thread::spawn(move || {
                let cancel = CancelToken::new();
                for i in 0..REQUESTS_PER_CLIENT {
                    let key = format!("soak-{who}-{i}");
                    // Distinct current per key: distinct fingerprints, so
                    // the duplicate ledger is per-request.
                    let current = 0.5 + (who * REQUESTS_PER_CLIENT + i) as f64 * 0.001;
                    match router.submit(steady_frame(&key, current), &cancel) {
                        Ok(r) => {
                            assert_eq!(
                                r,
                                Response::Steady {
                                    peak: Celsius(current * 10.0),
                                    tec_power: Watts(current)
                                },
                                "a wrong answer is worse than any failure"
                            );
                            ok.fetch_add(1, Ordering::SeqCst);
                        }
                        // Every failure must be typed; the router's own
                        // taxonomy guarantees it, the ledger records it.
                        Err(
                            ServeError::FailoverExhausted { .. }
                            | ServeError::Overloaded { .. }
                            | ServeError::Disconnected { .. }
                            | ServeError::ShuttingDown
                            | ServeError::Eval(_),
                        ) => {
                            typed_err.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("unexpected error class: {other:?}"),
                    }
                }
            })
        })
        .collect();

    // The killer: every shard dies and comes back, one at a time, then
    // two at once — all while the clients are submitting.
    let t0 = Instant::now();
    for rig in &rigs {
        std::thread::sleep(Duration::from_millis(60));
        rig.crash();
        std::thread::sleep(Duration::from_millis(60));
        rig.boot();
    }
    std::thread::sleep(Duration::from_millis(40));
    rigs[0].crash();
    rigs[1].crash();
    std::thread::sleep(Duration::from_millis(80));
    rigs[0].boot();
    rigs[1].boot();

    for c in clients {
        c.join().expect("no client thread may panic");
    }
    health_stop.cancel();
    health.join().unwrap();
    assert!(t0.elapsed() < Duration::from_secs(120), "soak wedged");

    // Every request resolved, and resolved typed.
    assert_eq!(
        ok.load(Ordering::SeqCst) + typed_err.load(Ordering::SeqCst),
        CLIENTS * REQUESTS_PER_CLIENT
    );
    assert!(
        ok.load(Ordering::SeqCst) > CLIENTS * REQUESTS_PER_CLIENT / 2,
        "a 1-of-3 / 2-of-3 outage must not fail most requests: {} ok",
        ok.load(Ordering::SeqCst)
    );

    // ZERO duplicate successful evaluations, fleet-wide, across every
    // engine generation: at-most-once per fingerprint.
    for (fp, n) in counts.lock().unwrap().iter() {
        assert!(*n <= 1, "fingerprint {fp:016x} evaluated {n} times");
    }

    // The engine accounting identity holds for every generation of every
    // shard: nothing was lost across kills and restarts.
    for rig in &rigs {
        for m in rig.all_metrics() {
            assert_eq!(
                m.submitted,
                m.completed_ok
                    + m.completed_err
                    + m.shed_overload
                    + m.shed_shutdown
                    + m.deduplicated,
                "metrics identity broken on {}: {m:?}",
                rig.name
            );
        }
    }
    for r in &rigs {
        r.shutdown();
    }
}
