//! Cross-backend and parallel-determinism guarantees of the PR-2 solver
//! stack: the sparse CG backend must agree with dense Cholesky on real
//! paper systems to the documented 1e-8 relative tolerance, the `Auto`
//! heuristic must pick sparse only where it is safe, and every
//! parallelized sweep must be bit-identical to its sequential semantics.

use tecopt::runaway::sweep_fractions;
use tecopt::{
    certify_convexity, evaluate_deployments, optimize_current, ConvexitySettings, CoolingSystem,
    CurrentSettings, OptError, PackageConfig, TecParams, TileIndex,
};
use tecopt_linalg::{CgSettings, SolverBackend, SPARSE_MIN_DIM};
use tecopt_units::{Amperes, Watts};

fn paper_system(rows: usize, cols: usize) -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(rows, cols).unwrap();
    let mut powers = vec![Watts(0.05); rows * cols];
    powers[cols + 1] = Watts(0.6);
    powers[rows * cols / 2] = Watts(0.4);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1)],
        powers,
    )
    .unwrap()
}

#[test]
fn sparse_backend_matches_dense_on_paper_systems() {
    for (rows, cols) in [(4, 4), (8, 8)] {
        let dense = paper_system(rows, cols).with_backend(SolverBackend::DenseCholesky);
        let sparse =
            paper_system(rows, cols).with_backend(SolverBackend::SparseCg(CgSettings::default()));
        for i in [0.0, 1.0, 2.5] {
            let a = dense.solve(Amperes(i)).unwrap();
            let b = sparse.solve(Amperes(i)).unwrap();
            let scale = a
                .node_temperatures()
                .iter()
                .map(|t| t.value().abs())
                .fold(1.0, f64::max);
            for (x, y) in a.node_temperatures().iter().zip(b.node_temperatures()) {
                assert!(
                    (x.value() - y.value()).abs() <= 1e-8 * scale,
                    "{rows}x{cols} at i={i}: dense {} vs sparse {}",
                    x.value(),
                    y.value()
                );
            }
            assert!((a.peak().value() - b.peak().value()).abs() <= 1e-8 * scale);
        }
    }
}

#[test]
fn auto_heuristic_goes_sparse_only_past_the_size_floor() {
    // 4x4 -> n = 277 nodes: below SPARSE_MIN_DIM, Auto must stay dense so
    // the small unit-test systems keep their exact Cholesky semantics.
    let small = paper_system(4, 4);
    assert!(small.stamped().model().node_count() < SPARSE_MIN_DIM);
    let a = small.solve(Amperes(1.0)).unwrap();
    assert_eq!(a.solve_method(), tecopt_linalg::SolveMethod::Cholesky);

    // 12x12 -> n > 512 and density well under 2%: Auto flips to CG, and
    // the answer still matches a forced dense solve.
    let big = paper_system(12, 12);
    assert!(big.stamped().model().node_count() >= SPARSE_MIN_DIM);
    let sparse_state = big.solve(Amperes(1.0)).unwrap();
    assert_eq!(
        sparse_state.solve_method(),
        tecopt_linalg::SolveMethod::SparseCg
    );
    let forced = paper_system(12, 12).with_backend(SolverBackend::DenseCholesky);
    let dense_state = forced.solve(Amperes(1.0)).unwrap();
    let scale = dense_state
        .node_temperatures()
        .iter()
        .map(|t| t.value().abs())
        .fold(1.0, f64::max);
    assert!(
        (sparse_state.peak().value() - dense_state.peak().value()).abs() <= 1e-8 * scale,
        "auto-sparse {} vs dense {}",
        sparse_state.peak().value(),
        dense_state.peak().value()
    );
}

#[test]
fn parallel_runaway_sweep_is_deterministic_and_matches_shared_solves() {
    let system = paper_system(4, 4);
    let fractions = [0.8, 0.05, 0.55, 0.3, 1.1, 0.95];
    let first = sweep_fractions(&system, &fractions, 1e-9).unwrap();
    let second = sweep_fractions(&system, &fractions, 1e-9).unwrap();
    assert_eq!(first.points, second.points, "sweep must be deterministic");
    for point in &first.points {
        match system.solve(point.current) {
            Ok(state) => {
                assert_eq!(point.peak.unwrap(), state.peak());
                assert_eq!(point.tec_power.unwrap(), state.tec_power());
            }
            Err(OptError::BeyondRunaway { .. }) => assert!(point.peak.is_none()),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}

#[test]
fn parallel_candidate_evaluation_is_deterministic() {
    let base = paper_system(4, 4).with_tiles(&[]).unwrap();
    let candidates: Vec<Vec<TileIndex>> = vec![
        vec![TileIndex::new(1, 1)],
        vec![TileIndex::new(2, 2)],
        vec![TileIndex::new(1, 1), TileIndex::new(2, 2)],
        vec![TileIndex::new(0, 0), TileIndex::new(3, 3)],
    ];
    let settings = CurrentSettings::default();
    let first = evaluate_deployments(&base, &candidates, settings).unwrap();
    let second = evaluate_deployments(&base, &candidates, settings).unwrap();
    for ((a, b), tiles) in first.iter().zip(&second).zip(&candidates) {
        assert_eq!(a.tiles(), &tiles[..]);
        assert_eq!(
            a.optimum().current().value(),
            b.optimum().current().value(),
            "evaluation of {tiles:?} must be bit-deterministic"
        );
        assert_eq!(
            a.optimum().state().peak().value(),
            b.optimum().state().peak().value()
        );
        let seq = optimize_current(&base.with_tiles(tiles).unwrap(), settings).unwrap();
        assert_eq!(
            a.optimum().state().peak().value(),
            seq.state().peak().value()
        );
    }
}

#[test]
fn parallel_convexity_certificate_is_deterministic() {
    let system = paper_system(4, 4);
    let settings = ConvexitySettings {
        subranges: 6,
        ..ConvexitySettings::default()
    };
    let first = certify_convexity(&system, settings).unwrap();
    let second = certify_convexity(&system, settings).unwrap();
    assert_eq!(first, second);
    assert!(first.is_certified());
    assert_eq!(first.probes, 6 * (settings.probes_per_subrange + 1));
}
