//! End-to-end adoption path: export the Alpha floorplan and synthetic
//! traces to the HotSpot file formats, read them back, and run the
//! optimizer on the file-derived inputs — the workflow a user with an
//! existing HotSpot toolchain would follow.

use tecopt::designer::CoolingDesigner;
use tecopt::{PackageConfig, TecParams};
use tecopt_power::hotspot_io::{parse_flp, parse_ptrace, to_flp, to_ptrace, worst_case_of};
use tecopt_power::WorkloadModel;
use tecopt_units::Celsius;

#[test]
fn file_round_trip_preserves_the_design_outcome() {
    // Build the reference inputs in memory.
    let model = WorkloadModel::alpha_spec2000_like().unwrap();
    let plan = model.plan().clone();
    let traces: Vec<_> = model
        .benchmark_names()
        .into_iter()
        .map(|name| model.benchmark_profile(name).unwrap())
        .collect();

    // Serialize to the HotSpot formats and parse back.
    let flp_text = to_flp(&plan);
    let ptrace_text = to_ptrace(&traces).unwrap();
    let plan_back = parse_flp("alpha21364-like", &flp_text).unwrap();
    let traces_back = parse_ptrace(&plan_back, &ptrace_text).unwrap();
    assert_eq!(traces_back.len(), traces.len());

    // The paper's procedure on file traces: per-unit max + 20 % margin.
    let envelope_file = worst_case_of(&traces_back, 0.2).unwrap();
    let envelope_mem = model.worst_case_envelope(0.2).unwrap();
    for (a, b) in envelope_file
        .unit_powers()
        .iter()
        .zip(envelope_mem.unit_powers())
    {
        assert!(
            (a.value() - b.value()).abs() < 1e-4,
            "file envelope diverged: {a:?} vs {b:?}"
        );
    }

    // Run the full design from the file-derived inputs and check it matches
    // the in-memory pipeline's shape.
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let powers = envelope_file.rasterize(config.grid()).unwrap();
    let report = CoolingDesigner::new(config, TecParams::superlattice_thin_film())
        .tile_powers(powers)
        .temperature_limit(Celsius(85.0))
        .compare_full_cover(false)
        .convexity_settings(None)
        .design()
        .unwrap();
    assert!(
        (90.0..=96.0).contains(&report.uncooled_peak().value()),
        "uncooled peak {:?}",
        report.uncooled_peak()
    );
    assert!(report.deployment().device_count() > 0);
    assert!(report.deployment().cooling_swing().value() > 2.0);
}
