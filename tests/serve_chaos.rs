//! Chaos suite for the `tecopt-serve` evaluation service: torn frames,
//! half-closed connections, clients that die mid-request, mid-request
//! evaluation panics, deadline storms, overload, and graceful drain.
//!
//! The invariants under test, from DESIGN.md §13:
//!
//! - every failure surfaces as a *typed* error (`overloaded`, `decode`,
//!   `disconnected`, `deadline`, `panic`, ...), never a hang, never a
//!   process abort;
//! - a shed request is refused *before* work is spent on it, with
//!   `overloaded` — not by timing out;
//! - a dead client frees its handler slot and cancels its evaluation;
//! - graceful shutdown drains admitted work, and keyed designer sweeps
//!   checkpoint so a retry after restart resumes bit-identically.
//!
//! The heavyweight soak test is `#[ignore]`d; the dedicated serve chaos
//! pass in `scripts/check.sh` runs this suite with `--test-threads=1
//! --include-ignored`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tecopt::{
    score_candidates, CancelToken, CoolingSystem, CurrentSettings, PackageConfig, RunContext,
    TecParams, TileIndex,
};
use tecopt_faultinject::{torn_frame, MidRequestPanic, SlowEvaluator};
use tecopt_serve::{
    Client, ClientError, Engine, EngineConfig, Evaluator, Listener, Request, RetryPolicy, Server,
    ServerConfig, ServerReport,
};
use tecopt_units::{Amperes, Watts};

fn small_system() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
    .unwrap()
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tecopt-serve-chaos-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running server on an ephemeral TCP port plus the means to stop it.
struct Harness {
    addr: String,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<ServerReport>,
}

impl Harness {
    fn start<E: Evaluator + 'static>(
        eval: E,
        engine: EngineConfig,
        server: ServerConfig,
    ) -> Harness {
        let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let engine = Arc::new(Engine::new(eval, engine));
        let server = Arc::new(Server::new(listener, engine, server));
        let shutdown = server.shutdown_token();
        let handle = std::thread::spawn(move || server.run());
        Harness {
            addr,
            shutdown,
            handle,
        }
    }

    fn stop(self) -> ServerReport {
        self.shutdown.cancel();
        self.handle.join().expect("server thread never panics")
    }
}

fn fast_server_config() -> ServerConfig {
    ServerConfig {
        handlers: 4,
        eval_workers: 2,
        poll_interval: Duration::from_millis(5),
        drain_timeout: Duration::from_secs(10),
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        response_timeout: Duration::from_secs(30),
    }
}

fn steady(current: f64) -> Request {
    Request::Steady {
        current: Amperes(current),
    }
}

/// Reads one `\n`-terminated line from a raw socket.
fn read_line(s: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => panic!("read_line failed: {e}"),
        }
    }
    String::from_utf8(buf).unwrap()
}

// ---------------------------------------------------------------------------
// Wire-level failure containment
// ---------------------------------------------------------------------------

#[test]
fn garbage_frames_get_typed_decode_errors_and_the_connection_survives() {
    let h = Harness::start(
        tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
        EngineConfig::default(),
        fast_server_config(),
    );

    let mut s = TcpStream::connect(&h.addr).unwrap();
    // Three malformed frames on one connection, each answered typed.
    for bad in [
        "not a frame",
        "req toolong!! - steady 00",
        "req - - steady nothex",
    ] {
        s.write_all(format!("{bad}\n").as_bytes()).unwrap();
        let reply = read_line(&mut s);
        assert!(reply.starts_with("err - decode "), "got `{reply}`");
    }
    // The same connection still serves a well-formed request afterwards.
    let frame = tecopt_serve::wire::encode_request(&tecopt_serve::RequestFrame {
        key: None,
        deadline_ms: None,
        request: steady(1.0),
    });
    s.write_all(format!("{frame}\n").as_bytes()).unwrap();
    let reply = read_line(&mut s);
    assert!(reply.starts_with("ok - steady "), "got `{reply}`");
    drop(s);

    let report = h.stop();
    assert_eq!(report.decode_errors, 3);
    assert_eq!(report.engine.completed_ok, 1);
}

#[test]
fn a_torn_frame_then_death_is_a_counted_disconnect_and_frees_the_slot() {
    let h = Harness::start(
        tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
        EngineConfig::default(),
        ServerConfig {
            handlers: 1, // a leaked slot would wedge the follow-up client
            ..fast_server_config()
        },
    );

    let frame = tecopt_serve::wire::encode_request(&tecopt_serve::RequestFrame {
        key: None,
        deadline_ms: None,
        request: steady(1.0),
    });
    let full = format!("{frame}\n");
    {
        // The client dies halfway through writing its request.
        let mut s = TcpStream::connect(&h.addr).unwrap();
        s.write_all(&torn_frame(&full, full.len() / 2)).unwrap();
        s.flush().unwrap();
        // Give the server a beat to buffer the partial frame, then die.
        std::thread::sleep(Duration::from_millis(30));
    }

    // With the single handler slot freed, a healthy client is served.
    let mut c = Client::tcp(h.addr.clone()).with_policy(fast_policy());
    let resp = c.request(steady(1.0), None).expect("follow-up succeeds");
    assert!(matches!(resp, tecopt_serve::Response::Steady { .. }));

    let report = h.stop();
    assert_eq!(report.disconnects, 1);
    assert_eq!(
        report.engine.submitted, 1,
        "torn frame never reached admission"
    );
}

#[test]
fn a_client_dying_mid_request_cancels_its_evaluation() {
    // Evaluations take ≥2 s unless cancelled — if disconnect-cancellation
    // failed, this test would visibly stall and the drain would not be
    // clean.
    let h = Harness::start(
        SlowEvaluator::new(
            tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
            Duration::from_secs(2),
        ),
        EngineConfig::default(),
        ServerConfig {
            handlers: 1,
            eval_workers: 1,
            ..fast_server_config()
        },
    );

    let frame = tecopt_serve::wire::encode_request(&tecopt_serve::RequestFrame {
        key: Some("doomed".into()),
        deadline_ms: None,
        request: steady(1.0),
    });
    let t0 = Instant::now();
    {
        let mut s = TcpStream::connect(&h.addr).unwrap();
        s.write_all(format!("{frame}\n").as_bytes()).unwrap();
        // Let the request reach the worker, then die without reading.
        std::thread::sleep(Duration::from_millis(50));
    }

    // The sole worker must come free long before the 2 s spin would end.
    let mut c = Client::tcp(h.addr.clone()).with_policy(fast_policy());
    let resp = c.request(steady(1.0), Some(30_000));
    // The follow-up rides a healthy slot; its own evaluation still takes
    // 2 s of spin, so only the *total* bound proves cancellation: without
    // it, serving both sequentially needs >4 s of evaluation time.
    assert!(resp.is_ok(), "follow-up failed: {resp:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "disconnect did not cancel the abandoned evaluation"
    );

    let report = h.stop();
    assert!(report.disconnects >= 1);
    assert!(report.drained_cleanly);
}

// ---------------------------------------------------------------------------
// Admission control and deadlines
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_with_typed_overloaded_not_timeouts() {
    // One slow worker, a queue of 2: most of a 12-request burst must shed.
    let h = Harness::start(
        SlowEvaluator::new(
            tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
            Duration::from_millis(150),
        ),
        EngineConfig {
            queue_capacity: 2,
            ..EngineConfig::default()
        },
        ServerConfig {
            handlers: 6,
            eval_workers: 1,
            ..fast_server_config()
        },
    );

    let shed = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..12)
        .map(|i| {
            let addr = h.addr.clone();
            let shed = Arc::clone(&shed);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                // No retries: each request reports its first outcome.
                let mut c = Client::tcp(addr).with_policy(RetryPolicy {
                    max_attempts: 1,
                    ..fast_policy()
                });
                match c.request(steady(0.5 + i as f64 * 0.01), None) {
                    Ok(_) => served.fetch_add(1, Ordering::SeqCst),
                    Err(ClientError::RetriesExhausted { last, .. }) => match *last {
                        ClientError::Server { ref code, .. } if code == "overloaded" => {
                            shed.fetch_add(1, Ordering::SeqCst)
                        }
                        ref other => panic!("expected overloaded, got {other:?}"),
                    },
                    Err(other) => panic!("expected overloaded or ok, got {other:?}"),
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let report = h.stop();
    assert!(shed.load(Ordering::SeqCst) > 0, "nothing was shed");
    assert!(served.load(Ordering::SeqCst) > 0, "nothing was served");
    assert_eq!(
        shed.load(Ordering::SeqCst) as u64,
        report.engine.shed_overload
    );
    // Shedding is immediate refusal: nothing may fail by timing out.
    assert_eq!(
        report.engine.completed_ok,
        served.load(Ordering::SeqCst) as u64
    );
}

#[test]
fn deadline_storms_produce_typed_deadline_errors() {
    let h = Harness::start(
        SlowEvaluator::new(
            tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
            Duration::from_millis(100),
        ),
        EngineConfig::default(),
        fast_server_config(),
    );

    let mut c = Client::tcp(h.addr.clone()).with_policy(fast_policy());
    // A 1 ms budget against a 100 ms evaluation: typed deadline error
    // (non-retryable — the identical budget would fail identically).
    match c.request(steady(1.0), Some(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "deadline"),
        other => panic!("expected a deadline error, got {other:?}"),
    }
    // An adequate budget on the same connection succeeds.
    assert!(c.request(steady(1.0), Some(20_000)).is_ok());

    let report = h.stop();
    assert!(report.drained_cleanly);
}

// ---------------------------------------------------------------------------
// Panic containment and idempotent retries
// ---------------------------------------------------------------------------

#[test]
fn mid_request_panics_are_contained_and_retries_recover() {
    // Every 2nd evaluation panics (calls 2, 4, 6: request 1 succeeds on
    // call 1; requests 2–4 each lose their first attempt and win the
    // retry under the same idempotency key).
    let h = Harness::start(
        MidRequestPanic::every(
            tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
            2,
        ),
        EngineConfig::default(),
        ServerConfig {
            eval_workers: 1,
            ..fast_server_config()
        },
    );

    let mut c = Client::tcp(h.addr.clone()).with_policy(fast_policy());
    for i in 0..4 {
        let resp = c.request(steady(1.0 + f64::from(i) * 0.1), None);
        assert!(resp.is_ok(), "request {i} failed: {resp:?}");
    }

    let report = h.stop();
    assert_eq!(report.engine.panics_contained, 3);
    assert_eq!(report.engine.completed_ok, 4);
}

// ---------------------------------------------------------------------------
// Graceful drain and checkpointed resume
// ---------------------------------------------------------------------------

#[test]
fn graceful_drain_finishes_in_flight_work_and_refuses_new_work() {
    let h = Harness::start(
        SlowEvaluator::new(
            tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
            Duration::from_millis(300),
        ),
        EngineConfig::default(),
        fast_server_config(),
    );

    // Launch a request, then raise shutdown while it is in flight.
    let addr = h.addr.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = Client::tcp(addr).with_policy(RetryPolicy {
            max_attempts: 1,
            ..fast_policy()
        });
        c.request(steady(1.0), None)
    });
    std::thread::sleep(Duration::from_millis(100));
    h.shutdown.cancel();

    // The in-flight request completes normally despite the shutdown.
    let resp = inflight.join().unwrap();
    assert!(resp.is_ok(), "drain dropped in-flight work: {resp:?}");

    let report = h.handle.join().unwrap();
    assert!(report.drained_cleanly);
    assert_eq!(report.engine.completed_ok, 1);
}

#[test]
fn cancelled_designer_sweep_checkpoints_and_resumes_bit_identically() {
    let system = small_system();
    let candidates: Vec<Vec<TileIndex>> = (0..4)
        .map(|r| vec![TileIndex::new(r, 1), TileIndex::new(r, 2)])
        .collect();
    let reference = score_candidates(
        &system,
        &candidates,
        CurrentSettings::default(),
        &RunContext::unbounded(),
    )
    .unwrap();

    let ckpt_dir = scratch_dir("designer-resume");
    let engine_cfg = || EngineConfig {
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..EngineConfig::default()
    };
    let request = Request::Designer {
        candidates: candidates.clone(),
    };

    // Round 1: submit keyed, then kill the server with a zero-length
    // drain window so the sweep is cancelled mid-flight.
    let h = Harness::start(
        SlowEvaluator::new(
            tecopt_serve::TecEvaluator::new(system.clone(), CurrentSettings::default()),
            Duration::from_millis(200),
        ),
        engine_cfg(),
        ServerConfig {
            drain_timeout: Duration::ZERO,
            ..fast_server_config()
        },
    );
    let addr = h.addr.clone();
    let req = request.clone();
    let round1 = std::thread::spawn(move || {
        let mut c = Client::tcp(addr).with_policy(RetryPolicy {
            max_attempts: 1,
            ..fast_policy()
        });
        c.request_keyed("sweep-A", req, None)
    });
    std::thread::sleep(Duration::from_millis(80));
    let report = h.stop();
    let outcome = round1.join().unwrap();
    match outcome {
        Err(ClientError::RetriesExhausted { .. })
        | Err(ClientError::Server { .. })
        | Err(ClientError::Io(_)) => {}
        other => panic!("round 1 should have been interrupted, got {other:?}"),
    }
    assert!(!report.drained_cleanly, "zero drain window cannot be clean");

    // Round 2: a fresh server over the same checkpoint directory; the
    // same key resumes the sweep and completes it.
    let h = Harness::start(
        tecopt_serve::TecEvaluator::new(system.clone(), CurrentSettings::default()),
        engine_cfg(),
        fast_server_config(),
    );
    let mut c = Client::tcp(h.addr.clone()).with_policy(fast_policy());
    let resumed = c
        .request_keyed("sweep-A", request, None)
        .expect("resumed sweep completes");
    let report = h.stop();
    assert!(report.drained_cleanly);

    match resumed {
        tecopt_serve::Response::Designer { scores } => {
            assert_eq!(scores.len(), reference.len());
            for (got, want) in scores.iter().zip(&reference) {
                assert_eq!(got.device_count, want.device_count);
                assert_eq!(
                    got.current.value().to_bits(),
                    want.current.value().to_bits()
                );
                assert_eq!(got.peak.value().to_bits(), want.peak.value().to_bits());
                assert_eq!(
                    got.tec_power.value().to_bits(),
                    want.tec_power.value().to_bits()
                );
            }
        }
        other => panic!("expected designer scores, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Soak: sustained mixed chaos (run by the dedicated serve chaos pass)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "multi-second soak; run via scripts/check.sh serve chaos pass"]
fn soak_concurrent_clients_panics_deadline_storms_and_disconnects() {
    const CLIENTS: usize = 8;
    const KILLERS: usize = 2;
    const REQUESTS_PER_CLIENT: usize = 10;

    let h = Harness::start(
        SlowEvaluator::new(
            MidRequestPanic::every(
                tecopt_serve::TecEvaluator::new(small_system(), CurrentSettings::default()),
                7,
            ),
            Duration::from_millis(20),
        ),
        EngineConfig {
            queue_capacity: 8,
            ..EngineConfig::default()
        },
        ServerConfig {
            handlers: CLIENTS + KILLERS,
            eval_workers: 3,
            poll_interval: Duration::from_millis(5),
            drain_timeout: Duration::from_secs(20),
        },
    );

    let ok = Arc::new(AtomicUsize::new(0));
    let typed_err = Arc::new(AtomicUsize::new(0));

    // 8 well-behaved (but demanding) clients: steady solves, runaway
    // sweeps, periodic 1 ms deadline storms, full retry policy.
    let mut threads: Vec<std::thread::JoinHandle<()>> = (0..CLIENTS)
        .map(|who| {
            let addr = h.addr.clone();
            let ok = Arc::clone(&ok);
            let typed_err = Arc::clone(&typed_err);
            std::thread::spawn(move || {
                let mut c = Client::tcp(addr).with_policy(RetryPolicy {
                    max_attempts: 6,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(80),
                    response_timeout: Duration::from_secs(30),
                });
                for i in 0..REQUESTS_PER_CLIENT {
                    let deadline = if i % 4 == 3 { Some(1) } else { Some(30_000) };
                    let request = if i % 5 == 4 {
                        Request::Runaway {
                            lambda_tolerance: 1e-9,
                            fractions: vec![0.2, 0.6, 0.9],
                        }
                    } else {
                        steady(0.5 + (who * REQUESTS_PER_CLIENT + i) as f64 * 0.003)
                    };
                    match c.request(request, deadline) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::SeqCst);
                        }
                        // Every failure must be TYPED: a server-reported
                        // code, or retries exhausted on typed shed codes.
                        Err(ClientError::Server { .. })
                        | Err(ClientError::RetriesExhausted { .. }) => {
                            typed_err.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("untyped failure reached a client: {other:?}"),
                    }
                }
            })
        })
        .collect();

    // 2 hostile clients: torn frames and mid-request deaths, repeatedly.
    for k in 0..KILLERS {
        let addr = h.addr.clone();
        threads.push(std::thread::spawn(move || {
            let frame = tecopt_serve::wire::encode_request(&tecopt_serve::RequestFrame {
                key: None,
                deadline_ms: None,
                request: steady(1.0),
            });
            let full = format!("{frame}\n");
            for round in 0..6 {
                let Ok(mut s) = TcpStream::connect(&addr) else {
                    continue;
                };
                if (round + k) % 2 == 0 {
                    // Die mid-frame.
                    let _ = s.write_all(&torn_frame(&full, full.len() / 2));
                } else {
                    // Die mid-request, after the frame is accepted.
                    let _ = s.write_all(full.as_bytes());
                }
                let _ = s.flush();
                std::thread::sleep(Duration::from_millis(25));
                drop(s);
            }
        }));
    }

    for t in threads {
        t.join().expect("no client thread may panic");
    }
    let report = h.stop();

    // Everything client-visible resolved, and resolved typed.
    assert_eq!(
        ok.load(Ordering::SeqCst) + typed_err.load(Ordering::SeqCst),
        CLIENTS * REQUESTS_PER_CLIENT
    );
    assert!(ok.load(Ordering::SeqCst) > 0, "soak served nothing");
    // The injected chaos actually happened and was contained.
    assert!(report.engine.panics_contained > 0, "no panic was injected");
    assert!(report.disconnects > 0, "no disconnect was seen");
    // The storm produced typed deadline errors, not hangs: every
    // submitted request is accounted for by the engine counters.
    assert_eq!(
        report.engine.submitted,
        report.engine.completed_ok
            + report.engine.completed_err
            + report.engine.shed_overload
            + report.engine.shed_shutdown
            + report.engine.deduplicated
    );
    // Graceful shutdown drained every in-flight request.
    assert!(report.drained_cleanly, "drain was forced: {report:?}");
}
