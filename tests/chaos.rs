//! Chaos suite for the supervised sweep runtime: inject NaNs, lost
//! definiteness, worker panics, cancellations, deadlines and mid-sweep
//! kills, and verify that the supervisor always comes back with a typed
//! error carrying usable partial results — never a deadlock, never an
//! abort, and never a poisoned factorization cache (extending the stale-
//! cache guarantee of the solver-probe fix).
//!
//! The kill/resume tests share checkpoint files in a per-process temp
//! directory; the heavyweight 32×32 kill-at-every-probe-boundary sweep is
//! `#[ignore]`d so ordinary test passes stay fast — the dedicated chaos
//! pass in `scripts/check.sh` runs the suite with `--test-threads=1
//! --include-ignored`.

use std::path::PathBuf;
use tecopt::supervise::{supervised_map, RunContext};
use tecopt::{
    certify_convexity, certify_convexity_supervised, evaluate_deployments,
    evaluate_deployments_supervised, optimize_current, score_candidates, CancelToken,
    ConvexitySettings, CoolingSystem, CurrentSettings, OptError, PackageConfig, TecParams,
    TileIndex,
};
use tecopt_faultinject::{break_definiteness, inject_nan, spd_matrix};
use tecopt_linalg::{conjugate_gradient_cancellable, CgSettings, Cholesky, LinalgError};
use tecopt_units::{Amperes, Watts};

fn small_system() -> CoolingSystem {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(1, 1), TileIndex::new(2, 2)],
        powers,
    )
    .unwrap()
}

/// A fresh path in a per-process scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tecopt-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn state_bits(state: &tecopt::SolvedState) -> Vec<u64> {
    let mut bits: Vec<u64> = state
        .node_temperatures()
        .iter()
        .map(|k| k.value().to_bits())
        .collect();
    bits.push(state.peak().value().to_bits());
    bits.push(state.tec_power().value().to_bits());
    bits
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

#[test]
fn pre_cancelled_token_stops_a_sweep_before_any_probe() {
    let system = small_system();
    let ctx = RunContext::unbounded();
    ctx.token().cancel();
    let failure =
        tecopt::runaway::sweep_fractions_supervised(&system, &[0.1, 0.5, 0.9], 1e-9, &ctx)
            .unwrap_err();
    assert_eq!(failure.error, OptError::Cancelled { completed: 0 });
    assert_eq!(failure.completed(), 0);
    assert_eq!(failure.partial.len(), 3);
}

#[test]
fn cancelled_cg_kernel_reports_iterations_and_does_not_fall_back() {
    let a = tecopt_linalg::CsrMatrix::from_dense(&spd_matrix(24, 7));
    let b = vec![1.0; 24];
    let token = CancelToken::new();
    token.cancel();
    let err =
        conjugate_gradient_cancellable(&a, &b, CgSettings::default(), Some(&token)).unwrap_err();
    assert_eq!(err, LinalgError::Cancelled { iterations: 0 });
}

#[test]
fn cancellation_does_not_poison_the_factorization_cache() {
    // Cancel a supervised sweep on a shared system, then verify a clean
    // solve on that same system is bit-identical to a fresh system's.
    let system = small_system();
    let ctx = RunContext::unbounded();
    ctx.token().cancel();
    let _ = tecopt::runaway::sweep_fractions_supervised(&system, &[0.2, 0.4], 1e-9, &ctx);
    let after = system.solve(Amperes(2.0)).unwrap();
    let fresh = small_system().solve(Amperes(2.0)).unwrap();
    assert_eq!(state_bits(&after), state_bits(&fresh));
}

#[test]
fn cancelled_designer_pipeline_reports_a_typed_error() {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.7);
    let token = CancelToken::new();
    token.cancel();
    let err = tecopt::designer::CoolingDesigner::new(config, TecParams::superlattice_thin_film())
        .tile_powers(powers)
        .run_context(RunContext::unbounded().cancel_token(token))
        .design()
        .unwrap_err();
    assert!(matches!(err, OptError::Cancelled { .. }), "{err:?}");
}

// ---------------------------------------------------------------------------
// Deadlines and budgets
// ---------------------------------------------------------------------------

#[test]
fn expired_deadline_is_a_typed_error_with_empty_partials() {
    let system = small_system();
    let ctx = RunContext::unbounded().deadline_in(std::time::Duration::from_secs(0));
    let failure =
        tecopt::runaway::sweep_fractions_supervised(&system, &[0.1, 0.5, 0.9], 1e-9, &ctx)
            .unwrap_err();
    match &failure.error {
        OptError::DeadlineExceeded {
            completed,
            remaining,
        } => {
            assert_eq!(*completed, 0);
            assert_eq!(*remaining, 3);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn probe_budget_yields_a_usable_prefix_of_partials() {
    let system = small_system();
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8];
    let ctx = RunContext::unbounded().probe_budget(3);
    let failure =
        tecopt::runaway::sweep_fractions_supervised(&system, &fractions, 1e-9, &ctx).unwrap_err();
    match &failure.error {
        OptError::DeadlineExceeded {
            completed,
            remaining,
        } => {
            assert_eq!(*completed, 3);
            assert_eq!(*remaining, 2);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Budget admission happens at claim time, so exactly the first three
    // (sorted) fractions completed — and their values are bit-identical to
    // the same samples from an unsupervised run.
    let full = tecopt::runaway::sweep_fractions(&system, &fractions, 1e-9).unwrap();
    for (idx, partial) in failure.partial.iter().enumerate() {
        match partial {
            Some(point) => assert_eq!(point, &full.points[idx]),
            None => assert!(idx >= 3, "item {idx} should have completed"),
        }
    }
    assert_eq!(failure.completed(), 3);
}

#[test]
fn budgeted_multipin_descent_stops_at_a_probe_boundary() {
    let config = PackageConfig::hotspot41_like(4, 4).unwrap();
    let mut powers = vec![Watts(0.05); 16];
    powers[5] = Watts(0.6);
    powers[10] = Watts(0.25);
    let mp = tecopt::multipin::MultiPinSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[vec![TileIndex::new(1, 1)], vec![TileIndex::new(2, 2)]],
        powers,
    )
    .unwrap();
    let ctx = RunContext::unbounded().probe_budget(4);
    let err = mp.optimize_supervised(6, 1e-3, &ctx).unwrap_err();
    assert!(matches!(err, OptError::DeadlineExceeded { .. }), "{err:?}");
    // An unbounded context reproduces the plain optimizer bit-for-bit.
    let plain = mp.optimize(4, 1e-3).unwrap();
    let supervised = mp
        .optimize_supervised(4, 1e-3, &RunContext::unbounded())
        .unwrap();
    assert_eq!(
        plain.peak().value().to_bits(),
        supervised.peak().value().to_bits()
    );
    assert_eq!(plain.currents(), supervised.currents());
}

// ---------------------------------------------------------------------------
// Worker panics and injected numerical faults
// ---------------------------------------------------------------------------

#[test]
fn worker_panic_mid_sweep_is_contained_with_lowest_index_reported() {
    let ctx = RunContext::unbounded();
    let failure = supervised_map(
        &ctx,
        (0..16usize).collect(),
        || (),
        |(), i| {
            assert!(i != 4 && i != 11, "injected worker panic at {i}");
            Ok::<usize, OptError>(i)
        },
    )
    .unwrap_err();
    match &failure.error {
        OptError::WorkerPanicked { index, payload } => {
            assert_eq!(*index, 4, "lowest panicking index wins");
            assert!(payload.contains("injected worker panic"));
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_eq!(failure.completed(), 14);
}

#[test]
fn nan_poisoned_probe_is_a_typed_error_with_partials() {
    // Each item factors its own matrix; item 2's is NaN-poisoned. The
    // supervisor must surface the kernel's typed error and keep the other
    // items' results.
    let ctx = RunContext::unbounded();
    let failure = supervised_map(
        &ctx,
        (0..6usize).collect(),
        || (),
        |(), i| {
            let mut a = spd_matrix(12, 100 + i as u64);
            if i == 2 {
                inject_nan(&mut a, 3, 3);
            }
            let chol = Cholesky::factor(&a)?;
            let x = chol.solve(&[1.0; 12])?;
            Ok::<f64, OptError>(x.iter().sum())
        },
    )
    .unwrap_err();
    assert!(
        matches!(failure.error, OptError::Linalg(_)),
        "{:?}",
        failure.error
    );
    assert_eq!(failure.completed(), 5);
    assert!(failure.partial[2].is_none());
}

#[test]
fn lost_definiteness_mid_sweep_is_a_typed_error_with_partials() {
    let ctx = RunContext::unbounded();
    let failure = supervised_map(
        &ctx,
        (0..6usize).collect(),
        || (),
        |(), i| {
            let mut a = spd_matrix(12, 200 + i as u64);
            if i == 3 {
                break_definiteness(&mut a);
            }
            let chol = Cholesky::factor(&a)?;
            let x = chol.solve(&[1.0; 12])?;
            Ok::<f64, OptError>(x.iter().sum())
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            failure.error,
            OptError::Linalg(LinalgError::NotPositiveDefinite { .. })
        ),
        "{:?}",
        failure.error
    );
    assert_eq!(failure.completed(), 5);
}

#[test]
fn failed_supervised_sweep_leaves_clean_solves_bit_identical() {
    // A panicking candidate inside a supervised deployment sweep must not
    // leave any residue in the base system's shared factorization cache.
    let system = small_system();
    let ctx = RunContext::unbounded();
    let candidates = vec![
        vec![TileIndex::new(1, 1)],
        vec![TileIndex::new(0, 0), TileIndex::new(0, 0)], // duplicate tile: typed error
        vec![TileIndex::new(2, 2)],
    ];
    let failure =
        evaluate_deployments_supervised(&system, &candidates, CurrentSettings::default(), &ctx)
            .unwrap_err();
    assert!(failure.completed() >= 1);
    let after = system.solve(Amperes(1.5)).unwrap();
    let fresh = small_system().solve(Amperes(1.5)).unwrap();
    assert_eq!(state_bits(&after), state_bits(&fresh));
}

// ---------------------------------------------------------------------------
// Supervised vs unsupervised equivalence
// ---------------------------------------------------------------------------

#[test]
fn supervised_sweep_is_bit_identical_to_unsupervised() {
    let system = small_system();
    let fractions = [0.9, 0.1, 0.5, 0.75, 1.05];
    let plain = tecopt::runaway::sweep_fractions(&system, &fractions, 1e-9).unwrap();
    let supervised = tecopt::runaway::sweep_fractions_supervised(
        &system,
        &fractions,
        1e-9,
        &RunContext::unbounded(),
    )
    .unwrap();
    assert_eq!(plain.points, supervised.points);
}

#[test]
fn supervised_certificate_matches_unsupervised() {
    let system = small_system();
    let settings = ConvexitySettings {
        subranges: 4,
        ..ConvexitySettings::default()
    };
    let plain = certify_convexity(&system, settings).unwrap();
    let supervised =
        certify_convexity_supervised(&system, settings, &RunContext::unbounded()).unwrap();
    assert_eq!(plain, supervised);
}

#[test]
fn score_candidates_matches_evaluate_deployments() {
    let system = small_system();
    let candidates = vec![
        vec![TileIndex::new(1, 1)],
        vec![TileIndex::new(1, 1), TileIndex::new(2, 2)],
    ];
    let settings = CurrentSettings::default();
    let deployments = evaluate_deployments(&system, &candidates, settings).unwrap();
    let scores =
        score_candidates(&system, &candidates, settings, &RunContext::unbounded()).unwrap();
    assert_eq!(scores.len(), deployments.len());
    for (score, dep) in scores.iter().zip(&deployments) {
        assert_eq!(score.device_count, dep.device_count());
        assert_eq!(
            score.current.value().to_bits(),
            dep.optimum().current().value().to_bits()
        );
        assert_eq!(
            score.peak.value().to_bits(),
            dep.optimum().state().peak().value().to_bits()
        );
        assert_eq!(
            score.tec_power.value().to_bits(),
            dep.optimum().state().tec_power().value().to_bits()
        );
        assert_eq!(score.evaluations, dep.optimum().evaluations());
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

/// The 32×32 designer-alternatives sweep used by the kill/resume tests:
/// a strong hotspot grid with four candidate prefix deployments.
fn designer_sweep_inputs() -> (CoolingSystem, Vec<Vec<TileIndex>>, CurrentSettings) {
    let config = PackageConfig::hotspot41_like(32, 32).unwrap();
    let mut powers = vec![Watts(0.02); 32 * 32];
    powers[10 * 32 + 10] = Watts(0.8);
    powers[20 * 32 + 21] = Watts(0.6);
    let base = CoolingSystem::without_devices(&config, TecParams::superlattice_thin_film(), powers)
        .unwrap();
    let order = [
        TileIndex::new(10, 10),
        TileIndex::new(20, 21),
        TileIndex::new(10, 11),
        TileIndex::new(20, 22),
    ];
    let candidates: Vec<Vec<TileIndex>> = (1..=order.len()).map(|k| order[..k].to_vec()).collect();
    // Loose search settings keep each candidate's current optimization to a
    // handful of probes — the test exercises supervision, not accuracy. The
    // λ_m bisection (a dense Cholesky probe per step, ~n³ each at 32×32)
    // dominates per-candidate cost, so its tolerance is the loosest.
    let settings = CurrentSettings {
        tolerance: 5e-2,
        max_evaluations: 40,
        lambda_tolerance: 0.25,
        ..CurrentSettings::default()
    };
    (base, candidates, settings)
}

#[test]
#[ignore = "heavyweight 32x32 sweep; run via the scripts/check.sh chaos pass (--include-ignored)"]
fn killed_designer_sweep_resumes_bit_identically_at_every_probe_boundary() {
    let (base, candidates, settings) = designer_sweep_inputs();
    let total = candidates.len();
    let reference =
        score_candidates(&base, &candidates, settings, &RunContext::unbounded()).unwrap();
    let path = scratch("designer-kill-chain.ckpt");
    let _ = std::fs::remove_file(&path);

    // Kill before the very first probe: a zero budget admits nothing and
    // leaves a header-only checkpoint behind.
    let ctx = RunContext::unbounded().probe_budget(0).checkpoint(&path);
    let failure = score_candidates(&base, &candidates, settings, &ctx).unwrap_err();
    match &failure.error {
        OptError::DeadlineExceeded {
            completed,
            remaining,
        } => {
            assert_eq!(*completed, 0);
            assert_eq!(*remaining, total);
        }
        other => panic!("kill before start: expected DeadlineExceeded, got {other:?}"),
    }

    // Walk the sweep one probe boundary at a time: each iteration resumes
    // from the previous kill's checkpoint, completes exactly one more
    // probe, and is killed again at the next boundary. Every boundary in
    // 0..total is therefore both a kill point and a resume point, and each
    // candidate is optimized exactly once across the whole chain.
    for kill_at in 0..total {
        let ctx = RunContext::unbounded().probe_budget(1).checkpoint(&path);
        match score_candidates(&base, &candidates, settings, &ctx) {
            Err(failure) => {
                assert!(kill_at < total - 1, "final resume must complete");
                match &failure.error {
                    OptError::DeadlineExceeded {
                        completed,
                        remaining,
                    } => {
                        assert_eq!(*completed, kill_at + 1);
                        assert_eq!(*remaining, total - kill_at - 1);
                    }
                    other => {
                        panic!("kill at {kill_at}: expected DeadlineExceeded, got {other:?}")
                    }
                }
                // The recorded prefix is bit-identical to the
                // uninterrupted sweep's.
                for (i, slot) in failure.partial.iter().enumerate() {
                    if i <= kill_at {
                        assert_eq!(slot.as_ref(), Some(&reference[i]), "kill at {kill_at}");
                    } else {
                        assert!(slot.is_none(), "kill at {kill_at}");
                    }
                }
            }
            Ok(resumed) => {
                // The last boundary's single admitted probe finishes the
                // sweep: the chained result matches the uninterrupted run
                // exactly.
                assert_eq!(kill_at, total - 1, "completed early at {kill_at}");
                assert_eq!(resumed, reference);
            }
        }
    }

    // A final unbounded resume replays everything from the checkpoint
    // without re-running a single probe.
    let ctx = RunContext::unbounded().checkpoint(&path);
    let replayed = score_candidates(&base, &candidates, settings, &ctx).unwrap();
    assert_eq!(replayed, reference);
    assert_eq!(ctx.probes_recorded(), 0, "replay must not re-run probes");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_written_under_different_settings_is_rejected() {
    let system = small_system();
    let candidates = vec![vec![TileIndex::new(1, 1)]];
    let path = scratch("stale-settings.ckpt");
    let _ = std::fs::remove_file(&path);

    let ctx = RunContext::unbounded().checkpoint(&path);
    score_candidates(&system, &candidates, CurrentSettings::default(), &ctx).unwrap();

    let changed = CurrentSettings {
        tolerance: 1e-2,
        ..CurrentSettings::default()
    };
    let ctx = RunContext::unbounded().checkpoint(&path);
    let failure = score_candidates(&system, &candidates, changed, &ctx).unwrap_err();
    assert!(
        matches!(failure.error, OptError::InvalidParameter(_)),
        "{:?}",
        failure.error
    );
    assert!(failure.error.to_string().contains("stale checkpoint"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpointed_runaway_sweep_resumes_bit_identically() {
    let system = small_system();
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9, 1.05];
    let reference = tecopt::runaway::sweep_fractions(&system, &fractions, 1e-9).unwrap();

    let path = scratch("runaway-resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let ctx = RunContext::unbounded().probe_budget(2).checkpoint(&path);
    let failure =
        tecopt::runaway::sweep_fractions_supervised(&system, &fractions, 1e-9, &ctx).unwrap_err();
    assert_eq!(failure.completed(), 2);

    let ctx = RunContext::unbounded().checkpoint(&path);
    let resumed =
        tecopt::runaway::sweep_fractions_supervised(&system, &fractions, 1e-9, &ctx).unwrap();
    assert_eq!(resumed.points, reference.points);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpointed_certificate_resumes_to_the_same_verdict() {
    let system = small_system();
    let settings = ConvexitySettings {
        subranges: 6,
        ..ConvexitySettings::default()
    };
    let reference = certify_convexity(&system, settings).unwrap();

    let path = scratch("certificate-resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let ctx = RunContext::unbounded().probe_budget(3).checkpoint(&path);
    let failure = certify_convexity_supervised(&system, settings, &ctx).unwrap_err();
    assert_eq!(failure.completed(), 3);

    let ctx = RunContext::unbounded().checkpoint(&path);
    let resumed = certify_convexity_supervised(&system, settings, &ctx).unwrap();
    assert_eq!(resumed, reference);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn optimize_current_beyond_budget_still_restores_cache_consistency() {
    // Stack supervision on top of the PR 2 regression: exhaust a sweep's
    // budget mid-run against a system whose cache saw a failed probe, then
    // confirm optimize_current still works and clean solves stay exact.
    let system = small_system();
    let near = tecopt_faultinject::near_runaway_current(
        tecopt::runaway_limit(&system, 1e-9)
            .unwrap()
            .feasible()
            .value(),
        tecopt::runaway_limit(&system, 1e-9)
            .unwrap()
            .infeasible()
            .value(),
        0.999,
    );
    let _ = system.solve(Amperes(near * 2.0)); // likely BeyondRunaway; must not poison
    let ctx = RunContext::unbounded().probe_budget(1);
    let _ = tecopt::runaway::sweep_fractions_supervised(&system, &[0.2, 0.5, 0.8], 1e-9, &ctx);
    let optimum = optimize_current(&system, CurrentSettings::default()).unwrap();
    assert!(optimum.state().peak().value() > 0.0);
    let after = system.solve(Amperes(1.0)).unwrap();
    let fresh = small_system().solve(Amperes(1.0)).unwrap();
    assert_eq!(state_bits(&after), state_bits(&fresh));
}
