//! Integration tests spanning the substrate crates: power modeling →
//! rasterization → thermal assembly → device stamping → optimization, plus
//! the compact-vs-reference validation experiment (E1).

use tecopt::{CoolingSystem, PackageConfig, TecParams, TileIndex};
use tecopt_power::{alpha21364_like, HypotheticalChip, PowerProfile, WorkloadModel};
use tecopt_thermal::refined::{ReferenceModel, RefinementSettings};
use tecopt_thermal::CompactModel;
use tecopt_units::{Amperes, Watts};

#[test]
fn workload_to_tiles_conserves_power() {
    let model = WorkloadModel::alpha_spec2000_like().unwrap();
    let envelope = model.worst_case_envelope(0.2).unwrap();
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let tiles = envelope.rasterize(config.grid()).unwrap();
    let sum: f64 = tiles.iter().map(|w| w.value()).sum();
    assert!((sum - envelope.total_power().value()).abs() < 1e-9);
    // The hottest tile belongs to IntReg (282.4 W/cm2 -> ~0.706 W).
    let max = tiles.iter().map(|w| w.value()).fold(0.0_f64, f64::max);
    assert!((max - 0.706).abs() < 1e-6, "hottest tile {max} W");
}

#[test]
fn steady_state_energy_balance_through_the_full_stack() {
    // Everything dissipated in silicon plus everything injected by the TEC
    // devices must exit through convection.
    let config = PackageConfig::hotspot41_like(8, 8).unwrap();
    let mut powers = vec![Watts(0.1); 64];
    powers[27] = Watts(0.5);
    let system = CoolingSystem::new(
        &config,
        TecParams::superlattice_thin_film(),
        &[TileIndex::new(3, 3), TileIndex::new(3, 4)],
        powers.clone(),
    )
    .unwrap();
    let i = Amperes(4.0);
    let state = system.solve(i).unwrap();
    let ambient = config.ambient().to_kelvin().value();
    let mut convected = 0.0;
    for &(node, g) in system.stamped().model().network().ambient_legs() {
        convected += g * (state.node_temperatures()[node].value() - ambient);
    }
    let dissipated: f64 = powers.iter().map(|w| w.value()).sum();
    let tec = state.tec_power().value();
    assert!(
        (convected - dissipated - tec).abs() < 1e-6,
        "energy balance: convected {convected}, dissipated {dissipated}, tec {tec}"
    );
}

#[test]
fn compact_model_matches_reference_within_budget() {
    // Experiment E1 in miniature (the binary runs the finer settings): the
    // compact model and the independent fine-grid solver agree on the
    // paper-scale Alpha case.
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let envelope = WorkloadModel::alpha_spec2000_like()
        .unwrap()
        .worst_case_envelope(0.2)
        .unwrap();
    let powers = envelope.rasterize(config.grid()).unwrap();
    let compact = CompactModel::new(&config).unwrap();
    let temps = compact.solve_passive(&powers).unwrap();
    let compact_tiles = compact.silicon_temperatures(&temps);

    let reference = ReferenceModel::new(&config, RefinementSettings::default()).unwrap();
    let solution = reference.solve(&powers).unwrap();
    let mut worst: f64 = 0.0;
    let mut worst_signed = 0.0;
    let mut mean = 0.0;
    for (c, r) in compact_tiles.iter().zip(solution.tile_temperatures()) {
        let d = (c.value() - r.value()).abs();
        if d > worst {
            worst = d;
            worst_signed = c.value() - r.value();
        }
        mean += d;
    }
    mean /= compact_tiles.len() as f64;
    // The paper's HotSpot comparison reported < 1.5 degC worst case on
    // power traces; the worst-case *envelope* puts a 282 W/cm2 hotspot on a
    // single tile, at the resolution limit of the 0.5 mm tiling, where the
    // compact model is a few degrees conservative (hotter). Assert that
    // shape: small mean error, bounded worst error, conservative sign.
    assert!(mean < 1.0, "mean tile difference {mean} degC");
    assert!(worst < 3.5, "worst-case tile difference {worst} degC");
    assert!(
        worst_signed > 0.0,
        "compact model must err on the conservative (hot) side, got {worst_signed}"
    );
}

#[test]
fn compact_model_matches_reference_on_power_traces() {
    // The direct analogue of the paper's validation run: per-benchmark
    // power traces, worst-case tile difference below 1.5 degC.
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let model = WorkloadModel::alpha_spec2000_like().unwrap();
    let compact = CompactModel::new(&config).unwrap();
    let reference = ReferenceModel::new(&config, RefinementSettings::default()).unwrap();
    // One integer-heavy and one fp-heavy trace keep the test quick; the
    // full ten-trace sweep is the `validation` binary. The fp trace meets
    // the paper's 1.5 degC criterion outright; the integer trace drives the
    // single IntReg tile to 282 W/cm2, the tiling's resolution limit, where
    // the compact model stays conservative within 2.5 degC.
    for (name, budget) in [("gcc", 2.5), ("swim", 1.5)] {
        let profile = model.benchmark_profile(name).unwrap();
        let powers = profile.rasterize(config.grid()).unwrap();
        let temps = compact.solve_passive(&powers).unwrap();
        let compact_tiles = compact.silicon_temperatures(&temps);
        let solution = reference.solve(&powers).unwrap();
        let mut worst: f64 = 0.0;
        for (c, r) in compact_tiles.iter().zip(solution.tile_temperatures()) {
            worst = worst.max((c.value() - r.value()).abs());
        }
        assert!(
            worst < budget,
            "{name}: worst tile difference {worst} degC (budget {budget})"
        );
    }
}

#[test]
fn hypothetical_chip_flows_through_the_optimizer() {
    let chip = HypotheticalChip::standard_suite()
        .into_iter()
        .next()
        .unwrap();
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let base = CoolingSystem::without_devices(
        &config,
        TecParams::superlattice_thin_film(),
        chip.tile_powers(),
    )
    .unwrap();
    let state = base.solve(Amperes(0.0)).unwrap();
    // Hot tiles belong to the chip's hot units.
    let hottest_tile = state
        .silicon_temperatures()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let unit = chip.unit_of_tile()[hottest_tile];
    assert!(
        chip.hot_units().contains(&unit),
        "hottest tile {hottest_tile} belongs to unit {unit}, hot units {:?}",
        chip.hot_units()
    );
}

#[test]
fn per_benchmark_profiles_are_cooler_than_the_envelope() {
    // End-to-end: each individual SPEC-like benchmark run produces lower
    // temperatures than the worst-case envelope the optimizer designs for.
    let model = WorkloadModel::alpha_spec2000_like().unwrap();
    let config = PackageConfig::hotspot41_like(12, 12).unwrap();
    let compact = CompactModel::new(&config).unwrap();
    let envelope = model.worst_case_envelope(0.2).unwrap();
    let env_peak = compact
        .peak_silicon_temperature(
            &compact
                .solve_passive(&envelope.rasterize(config.grid()).unwrap())
                .unwrap(),
        )
        .value();
    for name in model.benchmark_names() {
        let profile = model.benchmark_profile(name).unwrap();
        let peak = compact
            .peak_silicon_temperature(
                &compact
                    .solve_passive(&profile.rasterize(config.grid()).unwrap())
                    .unwrap(),
            )
            .value();
        assert!(peak < env_peak, "{name}: {peak} !< envelope {env_peak}");
    }
}

#[test]
fn floorplan_and_profile_apis_compose() {
    let plan = alpha21364_like().unwrap();
    let powers: Vec<Watts> = plan
        .units()
        .iter()
        .map(|u| Watts(u.area().value() * 1e5))
        .collect();
    let profile = PowerProfile::new(&plan, powers).unwrap();
    // Uniform density -> every unit reports the same density.
    let d0 = profile.unit_density("L2").unwrap().value();
    let d1 = profile.unit_density("IntReg").unwrap().value();
    assert!((d0 - d1).abs() < 1e-9);
}
